//! Hybrid relationship census: the workload motivating the paper's
//! introduction. Detects dual-stack AS links whose business relationship
//! differs between the IPv4 and IPv6 planes, classifies them, checks the
//! detections against the simulator's ground truth, and lists the most
//! visible ones.
//!
//! ```sh
//! cargo run --release --example hybrid_census -- --scale small
//! ```

use hybrid_as_rel::prelude::*;
use hybrid_as_rel::topology::HybridClass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "small".to_string());
    let topology = match scale.as_str() {
        "default" => TopologyConfig::default(),
        "tiny" => TopologyConfig::tiny(),
        _ => TopologyConfig::small(),
    };

    eprintln!("building scenario with {} ASes ...", topology.total_as_count());
    let scenario = Scenario::build(&topology, &SimConfig::default());
    let report = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
    let hybrids = &report.hybrids;

    println!("== Hybrid IPv4/IPv6 relationship census ==");
    println!(
        "classified dual-stack links: {} (coverage {:.1}%)",
        hybrids.dual_stack_classified,
        100.0 * report.dataset.dual_stack_coverage()
    );
    println!(
        "hybrid links detected:       {} ({:.1}% of classified dual-stack links; paper: 13%)",
        hybrids.findings.len(),
        100.0 * hybrids.hybrid_fraction()
    );
    println!(
        "  p2p(v4)/transit(v6):       {} ({:.0}%; paper: 67%)",
        hybrids.peering_v4_transit_v6,
        100.0 * hybrids.peering_v4_transit_v6_share()
    );
    println!("  transit(v4)/p2p(v6):       {}", hybrids.transit_v4_peering_v6);
    println!("  opposite transit:          {} (paper: 1)", hybrids.opposite_transit);
    println!(
        "IPv6 paths crossing a hybrid link: {:.1}% (paper: >28%)",
        100.0 * hybrids.path_visibility_fraction()
    );

    // Validate against ground truth: how many injected hybrids did we find,
    // and were any detections wrong?
    let mut correct = 0usize;
    let mut wrong = 0usize;
    for finding in &hybrids.findings {
        match scenario.truth.relationship_pair(finding.a, finding.b) {
            Some(pair)
                if pair.is_hybrid() && HybridClass::classify(pair) == Some(finding.class) =>
            {
                correct += 1
            }
            _ => wrong += 1,
        }
    }
    println!(
        "\nground truth check: {} injected hybrids, {} detected correctly, {} false detections, recall {:.1}%",
        scenario.truth.hybrid_links.len(),
        correct,
        wrong,
        100.0 * correct as f64 / scenario.truth.hybrid_links.len().max(1) as f64
    );

    println!("\nmost visible hybrid links:");
    println!("{:<10} {:<10} {:<22} {:>10}", "AS a", "AS b", "class", "v6 paths");
    for f in hybrids.top_by_visibility(10) {
        println!(
            "{:<10} {:<10} {:<22} {:>10}",
            f.a.to_string(),
            f.b.to_string(),
            f.class.label(),
            f.v6_path_visibility
        );
    }
}
