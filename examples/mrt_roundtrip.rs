//! MRT round trip: write the simulated collectors' RIBs as real MRT
//! TABLE_DUMP_V2 files, read them back with the `mrt` crate, and run the
//! measurement pipeline from disk — the exact shape a measurement against
//! real RouteViews/RIPE RIS archives would take.
//!
//! ```sh
//! cargo run --release --example mrt_roundtrip -- /tmp/hybrid-as-rel-data
//! ```

use hybrid_as_rel::prelude::*;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| std::env::temp_dir().join("hybrid-as-rel-mrt").display().to_string());

    let topology = TopologyConfig::tiny();
    eprintln!("building scenario with {} ASes ...", topology.total_as_count());
    let scenario = Scenario::build(&topology, &SimConfig::small());

    // Write the MRT dumps and the IRR registry to disk.
    let mrt_paths = scenario.write_mrt_files(&out_dir).expect("write MRT files");
    let registry_path = std::path::Path::new(&out_dir).join("irr-registry.txt");
    scenario.registry.save(&registry_path).expect("write IRR dump");
    println!("wrote {} MRT files and an IRR dump under {out_dir}:", mrt_paths.len());
    for path in &mrt_paths {
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!("  {} ({} bytes)", path.display(), bytes);
    }

    // Inspect one file record by record.
    let first = &mrt_paths[0];
    let reader = hybrid_as_rel::mrt::MrtReader::new(std::fs::File::open(first).unwrap());
    let mut rib_records = 0usize;
    let mut peer_tables = 0usize;
    for record in reader.records() {
        match record.expect("valid MRT record").body {
            hybrid_as_rel::mrt::MrtRecordBody::PeerIndexTable(_) => peer_tables += 1,
            hybrid_as_rel::mrt::MrtRecordBody::RibEntries(_) => rib_records += 1,
            _ => {}
        }
    }
    println!(
        "{}: {} PEER_INDEX_TABLE record(s), {} RIB records",
        first.display(),
        peer_tables,
        rib_records
    );

    // Run the pipeline purely from the on-disk artifacts.
    let input = PipelineInput::from_files(&mrt_paths, &registry_path).expect("load from disk");
    let report = Pipeline::default().run(input);
    println!("\npipeline over the decoded MRT files:");
    println!(
        "  IPv6 links {} | coverage {:.1}% | hybrids {} | valley paths {:.1}%",
        report.dataset.ipv6_links,
        100.0 * report.dataset.ipv6_coverage(),
        report.hybrids.findings.len(),
        100.0 * report.valleys.valley_fraction()
    );

    // And confirm it agrees with the in-memory run.
    let in_memory = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
    assert_eq!(report.dataset.ipv6_links, in_memory.dataset.ipv6_links);
    assert_eq!(report.hybrids.findings.len(), in_memory.hybrids.findings.len());
    println!("  matches the in-memory pipeline exactly");
}
