//! Customer-tree impact of misinferred hybrid relationships — the Figure 1
//! example and a Figure 2 style correction sweep on a simulated topology.
//!
//! ```sh
//! cargo run --release --example customer_tree_impact
//! ```

use hybrid_as_rel::graph::customer_tree::customer_tree;
use hybrid_as_rel::prelude::*;
use hybrid_as_rel::topology::fixtures::figure1_topology;

fn main() {
    // ---- Figure 1: the five-AS illustration --------------------------------
    println!("== Figure 1: customer tree of AS1 ==");
    let transit = figure1_topology(true);
    let peering = figure1_topology(false);
    println!(
        "link 1-2 inferred as p2c -> tree = {:?}",
        customer_tree(&transit, Asn(1), IpVersion::V6)
    );
    println!(
        "link 1-2 inferred as p2p -> tree = {:?}",
        customer_tree(&peering, Asn(1), IpVersion::V6)
    );

    // ---- Figure 2: correction sweep on a simulated topology ----------------
    println!("\n== Figure 2: correcting the most-visible hybrid links ==");
    let topology = TopologyConfig::small();
    eprintln!("building scenario with {} ASes ...", topology.total_as_count());
    let scenario = Scenario::build(&topology, &SimConfig::default());
    let report = Pipeline::with_impact(20, Some(200)).run(PipelineInput::from_scenario(&scenario));
    let curve = report.impact.expect("impact sweep requested");

    println!(
        "{:>10} {:>22} {:>10} {:>14}",
        "corrected", "avg valley-free path", "diameter", "reachability"
    );
    for step in &curve.steps {
        println!(
            "{:>10} {:>22.3} {:>10} {:>13.1}%",
            step.corrected,
            step.avg_path_length,
            step.diameter,
            100.0 * step.reachability
        );
    }
    println!(
        "\npaper reports 3.8 -> 2.23 hops and diameter 11 -> 7 over the 20 corrections;\n\
         the direction of change (shorter, better-connected trees) is the reproduced result."
    );
}
