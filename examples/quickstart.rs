//! Quickstart: simulate a small Internet, run the paper's measurement
//! pipeline, and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart            # human-readable report
//! cargo run --release --example quickstart -- --json  # JSON report
//! cargo run --release --example quickstart -- --seed 7 --scale small
//! cargo run --release --example quickstart -- --threads 1   # sequential run
//! ```
//!
//! `--threads 0` (the default) uses all available cores; the report is
//! byte-identical at every thread count.

use hybrid_as_rel::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20100801);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0);
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "tiny".to_string());

    let mut topology = match scale.as_str() {
        "small" => TopologyConfig::small(),
        "default" => TopologyConfig::default(),
        _ => TopologyConfig::tiny(),
    };
    topology.seed = seed;

    eprintln!(
        "generating a synthetic Internet: {} ASes (seed {seed}) ...",
        topology.total_as_count()
    );
    let scenario = Scenario::build(&topology, &SimConfig::small().with_concurrency(threads));
    eprintln!(
        "collectors recorded {} RIB entries; IRR documents {} ASes",
        scenario.total_rib_entries(),
        scenario.registry.len()
    );

    eprintln!("running the hybrid-relationship measurement pipeline ...");
    let pipeline = Pipeline::with_concurrency(threads);
    let report = pipeline.run(PipelineInput::from_scenario_with(&scenario, &pipeline.options));

    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
        println!(
            "ground truth for comparison: {} hybrid links injected ({:.1}% of dual-stack links)",
            scenario.truth.hybrid_links.len(),
            100.0 * scenario.truth.hybrid_fraction()
        );
    }
}
