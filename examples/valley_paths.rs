//! Valley-path analysis on the IPv6 plane: how many observed AS paths
//! violate the valley-free rule, and how many of those violations are
//! unavoidable (no valley-free alternative exists, i.e. the relaxation
//! maintains IPv6 reachability — the paper's AS6939/AS174 situation).
//!
//! ```sh
//! cargo run --release --example valley_paths
//! cargo run --release --example valley_paths -- --no-relaxation
//! ```

use hybrid_as_rel::prelude::*;

fn run(relaxation: bool, leak_probability: f64) -> Report {
    let sim = SimConfig {
        v6_reachability_relaxation: relaxation,
        leak_probability,
        ..SimConfig::default()
    };
    // A sparser IPv6 plane makes valley-free partitions more likely, which
    // is the phenomenon this example is about.
    let topology = TopologyConfig {
        stub_ipv6_adoption: 0.25,
        v6_only_peering_degree: 1.2,
        ..TopologyConfig::small()
    };
    let scenario = Scenario::build(&topology, &sim);
    Pipeline::default().run(PipelineInput::from_scenario(&scenario))
}

fn main() {
    let no_relaxation = std::env::args().any(|a| a == "--no-relaxation");

    println!("== IPv6 valley-path analysis ==");
    for (label, relaxation, leak) in [
        ("strict export policies, no leaks", false, 0.0),
        ("reachability relaxation only", true, 0.0),
        ("relaxation + occasional leaks (default)", true, 0.02),
    ] {
        if no_relaxation && relaxation {
            continue;
        }
        let report = run(relaxation, leak);
        let v = &report.valleys;
        println!("\n-- {label} --");
        println!("classifiable IPv6 paths: {}", v.classifiable_paths);
        println!(
            "valley paths:            {} ({:.1}%; paper: 13%)",
            v.valley_paths,
            100.0 * v.valley_fraction()
        );
        println!(
            "  reachability-driven:   {} ({:.1}% of valleys; paper: 16%)",
            v.reachability_valleys,
            100.0 * v.reachability_fraction()
        );
        println!("  policy violations:     {}", v.violation_valleys);
        println!("unclassifiable paths:    {}", v.unknown_paths);
    }
}
