//! Sequential MRT readers and the snapshot-level convenience API.

use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::path::Path;

use bytes::Bytes;

use bgp_types::{CollectorId, PeerId, RibEntry, RibSnapshot, RouteSource};

use crate::error::MrtError;
use crate::record::{MrtHeader, MrtRecord, MrtRecordBody};
use crate::table_dump::PeerIndexTable;

/// Reads MRT records one by one from any [`Read`] source.
///
/// ```no_run
/// use mrt::MrtReader;
/// use std::fs::File;
///
/// let file = File::open("rib.20100801.0000.mrt").unwrap();
/// let mut reader = MrtReader::new(file);
/// while let Some(record) = reader.next_record().unwrap() {
///     println!("{:?}", record.header);
/// }
/// ```
pub struct MrtReader<R> {
    inner: R,
    records_read: u64,
}

impl<R: Read> MrtReader<R> {
    /// Wrap a byte source.
    pub fn new(inner: R) -> Self {
        MrtReader { inner, records_read: 0 }
    }

    /// How many records have been decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Read the next record, or `Ok(None)` at a clean end of stream.
    ///
    /// A stream that ends in the middle of a record yields
    /// [`MrtError::Truncated`].
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        let mut header_buf = [0u8; MrtHeader::WIRE_LEN];
        match read_exact_or_eof(&mut self.inner, &mut header_buf)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial(read) => {
                return Err(MrtError::truncated("MRT header", MrtHeader::WIRE_LEN, read));
            }
            ReadOutcome::Full => {}
        }
        let mut header_bytes = Bytes::copy_from_slice(&header_buf);
        let header = MrtHeader::decode(&mut header_bytes)?;
        let mut body = vec![0u8; header.length as usize];
        self.inner.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                MrtError::truncated("MRT record body", header.length as usize, 0)
            } else {
                MrtError::Io(e)
            }
        })?;
        let record = MrtRecord::decode(header, Bytes::from(body))?;
        self.records_read += 1;
        Ok(Some(record))
    }

    /// Iterate the remaining records.
    pub fn records(self) -> RecordIter<R> {
        RecordIter { reader: self }
    }
}

/// Iterator adapter over [`MrtReader`].
pub struct RecordIter<R> {
    reader: MrtReader<R>,
}

impl<R: Read> Iterator for RecordIter<R> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_record().transpose()
    }
}

/// Zero-copy MRT reader over an in-memory buffer.
///
/// Unlike [`MrtReader`], which allocates a fresh `Vec` per record body,
/// this reader slices record bodies out of one shared [`Bytes`] buffer —
/// every body is a cheap reference-counted view, so reading a whole file
/// costs a single allocation (the buffer itself). This is the path
/// [`read_snapshot_from_path`] and the batched pipeline loaders use.
pub struct MrtBytesReader {
    buf: Bytes,
    records_read: u64,
}

impl MrtBytesReader {
    /// Wrap a buffer holding a whole MRT stream.
    pub fn new(buf: Bytes) -> Self {
        MrtBytesReader { buf, records_read: 0 }
    }

    /// How many records have been decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Decode the next record, or `Ok(None)` at a clean end of buffer.
    ///
    /// A buffer that ends in the middle of a record yields
    /// [`MrtError::Truncated`].
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.len() < MrtHeader::WIRE_LEN {
            return Err(MrtError::truncated("MRT header", MrtHeader::WIRE_LEN, self.buf.len()));
        }
        let mut header_bytes = self.buf.slice(..MrtHeader::WIRE_LEN);
        let header = MrtHeader::decode(&mut header_bytes)?;
        let body_len = header.length as usize;
        let total = MrtHeader::WIRE_LEN + body_len;
        if self.buf.len() < total {
            return Err(MrtError::truncated(
                "MRT record body",
                body_len,
                self.buf.len() - MrtHeader::WIRE_LEN,
            ));
        }
        // Both slices share the underlying storage: no copies.
        let body = self.buf.slice(MrtHeader::WIRE_LEN..total);
        self.buf = self.buf.slice(total..);
        let record = MrtRecord::decode(header, body)?;
        self.records_read += 1;
        Ok(Some(record))
    }

    /// Iterate the remaining records.
    pub fn records(self) -> BytesRecordIter {
        BytesRecordIter { reader: self }
    }
}

/// Iterator adapter over [`MrtBytesReader`].
pub struct BytesRecordIter {
    reader: MrtBytesReader,
}

impl Iterator for BytesRecordIter {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_record().transpose()
    }
}

enum ReadOutcome {
    Full,
    Partial(usize),
    Eof,
}

fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, MrtError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(MrtError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Decode a whole MRT stream (a TABLE_DUMP_V2 file, optionally followed by
/// or mixed with BGP4MP updates) into a [`RibSnapshot`].
///
/// * RIB records are resolved against the most recent PEER_INDEX_TABLE.
/// * BGP4MP announcements are added with [`RouteSource::MrtUpdates`].
/// * Unsupported records are skipped.
pub fn read_snapshot(source: impl Read) -> Result<RibSnapshot, MrtError> {
    collect_snapshot(MrtReader::new(BufReader::new(source)).records())
}

/// [`read_snapshot`] over an in-memory buffer, using the zero-copy
/// [`MrtBytesReader`]: record bodies are slices of `buf`, not copies.
pub fn read_snapshot_bytes(buf: Bytes) -> Result<RibSnapshot, MrtError> {
    collect_snapshot(MrtBytesReader::new(buf).records())
}

/// Fold a decoded record stream into a [`RibSnapshot`].
fn collect_snapshot(
    records: impl Iterator<Item = Result<MrtRecord, MrtError>>,
) -> Result<RibSnapshot, MrtError> {
    let mut snapshot = RibSnapshot::default();
    let mut peer_table: Option<PeerIndexTable> = None;
    let mut peer_cache: HashMap<u16, PeerId> = HashMap::new();

    for record in records {
        let record = record?;
        if snapshot.timestamp == 0 {
            snapshot.timestamp = record.header.timestamp as u64;
        }
        match record.body {
            MrtRecordBody::PeerIndexTable(table) => {
                peer_cache.clear();
                if snapshot.collector.is_none() && !table.view_name.is_empty() {
                    snapshot.collector = Some(CollectorId::new(table.view_name.clone()));
                }
                peer_table = Some(table);
            }
            MrtRecordBody::RibEntries(rib) => {
                let table = peer_table.as_ref().ok_or(MrtError::MissingPeerIndexTable)?;
                for entry in rib.entries {
                    let peer = match peer_cache.get(&entry.peer_index) {
                        Some(p) => *p,
                        None => {
                            let pe = table
                                .peers
                                .get(entry.peer_index as usize)
                                .ok_or(MrtError::UnknownPeerIndex(entry.peer_index))?;
                            let p = PeerId::new(pe.asn, pe.addr);
                            peer_cache.insert(entry.peer_index, p);
                            p
                        }
                    };
                    let mut rib_entry = RibEntry::new(peer, rib.prefix, entry.attrs);
                    rib_entry.source = RouteSource::MrtTableDump;
                    snapshot.push(rib_entry);
                }
            }
            MrtRecordBody::Bgp4mp(msg) => {
                if let Some(update) = msg.update {
                    let peer = PeerId::new(msg.peer_asn, msg.peer_addr);
                    for prefix in update.announced {
                        let mut rib_entry = RibEntry::new(peer, prefix, update.attrs.clone());
                        rib_entry.source = RouteSource::MrtUpdates;
                        snapshot.push(rib_entry);
                    }
                }
            }
            MrtRecordBody::Unsupported { .. } => {}
        }
    }
    Ok(snapshot)
}

/// [`read_snapshot`] from a file path.
///
/// The file is read into one buffer and decoded through the zero-copy
/// [`MrtBytesReader`], so the whole load performs a single allocation.
pub fn read_snapshot_from_path(path: impl AsRef<Path>) -> Result<RibSnapshot, MrtError> {
    let buf = std::fs::read(path)?;
    read_snapshot_bytes(Bytes::from(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_snapshot;
    use bgp_types::{Asn, PathAttributes, Prefix};
    use std::net::IpAddr;

    fn peer(asn: u32, addr: &str) -> PeerId {
        PeerId::new(Asn(asn), addr.parse::<IpAddr>().unwrap())
    }

    fn entry(p: PeerId, prefix: &str, path: &str) -> RibEntry {
        RibEntry::new(
            p,
            prefix.parse::<Prefix>().unwrap(),
            PathAttributes::with_path(path.parse().unwrap()).local_pref(100),
        )
    }

    #[test]
    fn empty_stream_gives_empty_snapshot() {
        let snap = read_snapshot(&[][..]).unwrap();
        assert!(snap.is_empty());
        assert_eq!(snap.collector, None);
    }

    #[test]
    fn garbage_header_is_truncated_error() {
        let err = read_snapshot(&[1u8, 2, 3][..]).unwrap_err();
        assert!(matches!(err, MrtError::Truncated { .. }));
    }

    #[test]
    fn write_then_read_roundtrips_routes() {
        let mut snap = RibSnapshot::new(CollectorId::new("sim-collector"), 1_280_000_000);
        snap.push(entry(peer(6939, "2001:db8::1"), "2001:db8:100::/40", "6939 2914 3333"));
        snap.push(entry(peer(174, "2001:db8::2"), "2001:db8:100::/40", "174 3333"));
        snap.push(entry(peer(3356, "192.0.2.1"), "198.51.100.0/24", "3356 112"));

        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let decoded = read_snapshot(&buf[..]).unwrap();

        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded.collector, Some(CollectorId::new("sim-collector")));
        assert_eq!(decoded.timestamp, 1_280_000_000);
        // Entries are grouped by prefix on the wire; compare as sets.
        let mut original: Vec<String> = snap.entries.iter().map(|e| e.to_string()).collect();
        let mut round: Vec<String> = decoded.entries.iter().map(|e| e.to_string()).collect();
        original.sort();
        round.sort();
        assert_eq!(original, round);
        assert!(decoded.entries.iter().all(|e| e.source == RouteSource::MrtTableDump));
    }

    #[test]
    fn reader_counts_records() {
        let mut snap = RibSnapshot::new(CollectorId::new("c"), 10);
        snap.push(entry(peer(1, "192.0.2.1"), "10.0.0.0/8", "1 2"));
        snap.push(entry(peer(1, "192.0.2.1"), "10.1.0.0/16", "1 2 3"));
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();

        let mut reader = MrtReader::new(&buf[..]);
        let mut count = 0;
        while reader.next_record().unwrap().is_some() {
            count += 1;
        }
        // 1 peer index table + 2 prefixes.
        assert_eq!(count, 3);
        assert_eq!(reader.records_read(), 3);
    }

    #[test]
    fn record_iterator_matches_manual_loop() {
        let mut snap = RibSnapshot::new(CollectorId::new("c"), 10);
        snap.push(entry(peer(1, "192.0.2.1"), "10.0.0.0/8", "1 2"));
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let records: Result<Vec<_>, _> = MrtReader::new(&buf[..]).records().collect();
        assert_eq!(records.unwrap().len(), 2);
    }

    #[test]
    fn truncated_record_body_is_error() {
        let mut snap = RibSnapshot::new(CollectorId::new("c"), 10);
        snap.push(entry(peer(1, "192.0.2.1"), "10.0.0.0/8", "1 2"));
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_snapshot(&buf[..]).is_err());
    }

    #[test]
    fn missing_peer_index_table_is_reported() {
        // Write a full file, then drop the first record (the index table).
        let mut snap = RibSnapshot::new(CollectorId::new("c"), 10);
        snap.push(entry(peer(1, "192.0.2.1"), "10.0.0.0/8", "1 2"));
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();

        let mut reader = MrtReader::new(&buf[..]);
        let first = reader.next_record().unwrap().unwrap();
        let first_len = MrtHeader::WIRE_LEN + first.header.length as usize;
        let rest = &buf[first_len..];
        assert!(matches!(read_snapshot(rest), Err(MrtError::MissingPeerIndexTable)));
    }

    #[test]
    fn bytes_reader_matches_read_based_reader() {
        let mut snap = RibSnapshot::new(CollectorId::new("zero-copy"), 1_280_000_000);
        snap.push(entry(peer(6939, "2001:db8::1"), "2001:db8:100::/40", "6939 2914 3333"));
        snap.push(entry(peer(174, "2001:db8::2"), "2001:db8:100::/40", "174 3333"));
        snap.push(entry(peer(3356, "192.0.2.1"), "198.51.100.0/24", "3356 112"));
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();

        let via_read: Vec<_> =
            MrtReader::new(&buf[..]).records().collect::<Result<_, _>>().unwrap();
        let mut bytes_reader = MrtBytesReader::new(Bytes::from(buf.clone()));
        let mut via_bytes = Vec::new();
        while let Some(r) = bytes_reader.next_record().unwrap() {
            via_bytes.push(r);
        }
        assert_eq!(via_read, via_bytes);
        assert_eq!(bytes_reader.records_read(), via_bytes.len() as u64);
        assert_eq!(bytes_reader.remaining(), 0);

        let from_bytes = read_snapshot_bytes(Bytes::from(buf.clone())).unwrap();
        let from_read = read_snapshot(&buf[..]).unwrap();
        assert_eq!(from_bytes, from_read);
    }

    #[test]
    fn bytes_reader_reports_truncation() {
        let mut snap = RibSnapshot::new(CollectorId::new("c"), 10);
        snap.push(entry(peer(1, "192.0.2.1"), "10.0.0.0/8", "1 2"));
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        // Cut inside the last record's body.
        buf.truncate(buf.len() - 3);
        let err = read_snapshot_bytes(Bytes::from(buf.clone())).unwrap_err();
        assert!(matches!(err, MrtError::Truncated { .. }));
        // Cut inside a header.
        buf.truncate(5);
        let err = read_snapshot_bytes(Bytes::from(buf)).unwrap_err();
        assert!(matches!(err, MrtError::Truncated { .. }));
    }

    #[test]
    fn path_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("mrt-reader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.mrt");
        let mut snap = RibSnapshot::new(CollectorId::new("filetest"), 77);
        snap.push(entry(peer(6939, "2001:db8::1"), "2001:db8::/32", "6939 3333"));
        crate::writer::write_snapshot_to_path(&path, &snap).unwrap();
        let decoded = read_snapshot_from_path(&path).unwrap();
        assert_eq!(decoded.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
