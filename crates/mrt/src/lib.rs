//! # mrt
//!
//! A from-scratch reader and writer for the MRT routing-information export
//! format (RFC 6396), covering the record types a BGP route collector
//! archive actually contains:
//!
//! * `TABLE_DUMP_V2` — `PEER_INDEX_TABLE`, `RIB_IPV4_UNICAST` and
//!   `RIB_IPV6_UNICAST` records, i.e. the periodic full-table snapshots
//!   ("bview"/"rib" files) that the paper's methodology consumes.
//! * `BGP4MP` — `BGP4MP_MESSAGE_AS4` update messages, so incremental
//!   update archives can be replayed too.
//!
//! The BGP UPDATE wire codec (path attributes, NLRI encoding, the
//! MP_REACH_NLRI next-hop-only form used inside TABLE_DUMP_V2) is
//! implemented in [`bgp`], and is shared by both record families.
//!
//! The crate converts between the wire format and the in-memory
//! [`bgp_types::RibSnapshot`] model, which is what the rest of the
//! workspace operates on:
//!
//! ```
//! use bgp_types::{Asn, CollectorId, PathAttributes, PeerId, RibEntry, RibSnapshot};
//! use mrt::{read_snapshot, write_snapshot};
//! use std::net::{IpAddr, Ipv6Addr};
//!
//! let mut snap = RibSnapshot::new(CollectorId::new("example"), 1_280_000_000);
//! let peer = PeerId::new(Asn(6939), IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)));
//! snap.push(RibEntry::new(
//!     peer,
//!     "2001:db8:100::/40".parse().unwrap(),
//!     PathAttributes::with_path("6939 2914 3333".parse().unwrap()),
//! ));
//!
//! let mut buf = Vec::new();
//! write_snapshot(&mut buf, &snap).unwrap();
//! let decoded = read_snapshot(&buf[..]).unwrap();
//! assert_eq!(decoded.len(), 1);
//! assert_eq!(decoded.entries[0].prefix, snap.entries[0].prefix);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod bgp;
pub mod bgp4mp;
pub mod error;
pub mod reader;
pub mod record;
pub mod table_dump;
pub mod writer;

pub use bgp4mp::Bgp4mpMessage;
pub use error::MrtError;
pub use reader::{
    read_snapshot, read_snapshot_bytes, read_snapshot_from_path, MrtBytesReader, MrtReader,
};
pub use record::{MrtHeader, MrtRecord, MrtRecordBody, MrtType};
pub use writer::{write_snapshot, write_snapshot_to_path, MrtWriter};
