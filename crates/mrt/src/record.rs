//! The MRT common header and the record envelope.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bgp4mp::Bgp4mpMessage;
use crate::error::MrtError;
use crate::table_dump::{PeerIndexTable, RibAfiEntries};

/// MRT record type codes handled by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrtType {
    /// TABLE_DUMP_V2 (type 13).
    TableDumpV2,
    /// BGP4MP (type 16).
    Bgp4mp,
    /// BGP4MP_ET (type 17) — extended timestamps; the microsecond field is
    /// surfaced as [`MrtRecord::micros`].
    Bgp4mpEt,
}

impl MrtType {
    /// The numeric wire code.
    pub const fn code(self) -> u16 {
        match self {
            MrtType::TableDumpV2 => 13,
            MrtType::Bgp4mp => 16,
            MrtType::Bgp4mpEt => 17,
        }
    }

    /// Reverse mapping from the wire code.
    pub const fn from_code(code: u16) -> Option<MrtType> {
        match code {
            13 => Some(MrtType::TableDumpV2),
            16 => Some(MrtType::Bgp4mp),
            17 => Some(MrtType::Bgp4mpEt),
            _ => None,
        }
    }
}

/// TABLE_DUMP_V2 subtypes.
pub mod td2_subtype {
    /// PEER_INDEX_TABLE.
    pub const PEER_INDEX_TABLE: u16 = 1;
    /// RIB_IPV4_UNICAST.
    pub const RIB_IPV4_UNICAST: u16 = 2;
    /// RIB_IPV6_UNICAST.
    pub const RIB_IPV6_UNICAST: u16 = 4;
}

/// BGP4MP subtypes.
pub mod bgp4mp_subtype {
    /// BGP4MP_MESSAGE_AS4.
    pub const MESSAGE_AS4: u16 = 4;
}

/// The 12-byte MRT common header (RFC 6396 §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrtHeader {
    /// Record timestamp, seconds since the UNIX epoch.
    pub timestamp: u32,
    /// MRT type code.
    pub mrt_type: u16,
    /// MRT subtype code.
    pub subtype: u16,
    /// Length of the message body that follows the header.
    pub length: u32,
}

impl MrtHeader {
    /// Size of the common header on the wire.
    pub const WIRE_LEN: usize = 12;

    /// Encode into a buffer.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.timestamp);
        buf.put_u16(self.mrt_type);
        buf.put_u16(self.subtype);
        buf.put_u32(self.length);
    }

    /// Decode from a buffer holding at least [`Self::WIRE_LEN`] bytes.
    pub fn decode(buf: &mut Bytes) -> Result<Self, MrtError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(MrtError::truncated("MRT header", Self::WIRE_LEN, buf.remaining()));
        }
        Ok(MrtHeader {
            timestamp: buf.get_u32(),
            mrt_type: buf.get_u16(),
            subtype: buf.get_u16(),
            length: buf.get_u32(),
        })
    }
}

/// The decoded body of one MRT record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtRecordBody {
    /// A TABLE_DUMP_V2 PEER_INDEX_TABLE.
    PeerIndexTable(PeerIndexTable),
    /// A TABLE_DUMP_V2 RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record.
    RibEntries(RibAfiEntries),
    /// A BGP4MP_MESSAGE_AS4 record.
    Bgp4mp(Bgp4mpMessage),
    /// A record type/subtype this crate does not interpret; the raw body is
    /// preserved so files can be filtered/re-emitted losslessly.
    Unsupported {
        /// MRT type code.
        mrt_type: u16,
        /// MRT subtype code.
        subtype: u16,
        /// Raw body bytes.
        body: Bytes,
    },
}

/// One full MRT record: header plus decoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtRecord {
    /// The common header (length reflects the encoded body).
    pub header: MrtHeader,
    /// Microsecond fraction of the timestamp for BGP4MP_ET records
    /// (RFC 6396 §3), `None` for every other record type.
    pub micros: Option<u32>,
    /// The decoded body.
    pub body: MrtRecordBody,
}

impl MrtRecord {
    /// A record with no extended-timestamp field.
    pub fn new(header: MrtHeader, body: MrtRecordBody) -> Self {
        MrtRecord { header, micros: None, body }
    }

    /// The record time in microseconds since the UNIX epoch: the header's
    /// second-granularity timestamp, refined by the BGP4MP_ET microsecond
    /// field when present.
    pub fn timestamp_micros(&self) -> u64 {
        self.header.timestamp as u64 * 1_000_000 + self.micros.unwrap_or(0) as u64
    }

    /// Decode a record given its header and raw body bytes.
    pub fn decode(header: MrtHeader, mut body: Bytes) -> Result<MrtRecord, MrtError> {
        let mut micros = None;
        let body = match (MrtType::from_code(header.mrt_type), header.subtype) {
            (Some(MrtType::TableDumpV2), td2_subtype::PEER_INDEX_TABLE) => {
                MrtRecordBody::PeerIndexTable(PeerIndexTable::decode(&mut body)?)
            }
            (Some(MrtType::TableDumpV2), td2_subtype::RIB_IPV4_UNICAST)
            | (Some(MrtType::TableDumpV2), td2_subtype::RIB_IPV6_UNICAST) => {
                MrtRecordBody::RibEntries(RibAfiEntries::decode(header.subtype, &mut body)?)
            }
            (Some(MrtType::Bgp4mp), bgp4mp_subtype::MESSAGE_AS4) => {
                MrtRecordBody::Bgp4mp(Bgp4mpMessage::decode(&mut body)?)
            }
            (Some(MrtType::Bgp4mpEt), bgp4mp_subtype::MESSAGE_AS4) => {
                // Extended timestamp: 4 microsecond bytes precede the message.
                if body.remaining() < 4 {
                    return Err(MrtError::truncated("BGP4MP_ET microseconds", 4, body.remaining()));
                }
                micros = Some(body.get_u32());
                MrtRecordBody::Bgp4mp(Bgp4mpMessage::decode(&mut body)?)
            }
            _ => MrtRecordBody::Unsupported {
                mrt_type: header.mrt_type,
                subtype: header.subtype,
                body,
            },
        };
        Ok(MrtRecord { header, micros, body })
    }

    /// Encode the whole record (header + body) into a buffer.
    pub fn encode(&self, buf: &mut BytesMut) {
        let mut body = BytesMut::new();
        if let Some(micros) = self.micros {
            body.put_u32(micros);
        }
        match &self.body {
            MrtRecordBody::PeerIndexTable(t) => t.encode(&mut body),
            MrtRecordBody::RibEntries(r) => r.encode(&mut body),
            MrtRecordBody::Bgp4mp(m) => m.encode(&mut body),
            MrtRecordBody::Unsupported { body: raw, .. } => body.put_slice(raw),
        }
        let header = MrtHeader { length: body.len() as u32, ..self.header };
        header.encode(buf);
        buf.put_slice(&body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = MrtHeader { timestamp: 1_280_000_000, mrt_type: 13, subtype: 4, length: 99 };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), MrtHeader::WIRE_LEN);
        let mut bytes = buf.freeze();
        assert_eq!(MrtHeader::decode(&mut bytes).unwrap(), h);
    }

    #[test]
    fn header_decode_truncated() {
        let mut short = Bytes::from_static(&[0, 1, 2]);
        assert!(matches!(MrtHeader::decode(&mut short), Err(MrtError::Truncated { .. })));
    }

    #[test]
    fn type_codes_roundtrip() {
        for t in [MrtType::TableDumpV2, MrtType::Bgp4mp, MrtType::Bgp4mpEt] {
            assert_eq!(MrtType::from_code(t.code()), Some(t));
        }
        assert_eq!(MrtType::from_code(12), None);
    }

    #[test]
    fn unsupported_records_preserve_bytes() {
        let header = MrtHeader { timestamp: 0, mrt_type: 48, subtype: 1, length: 3 };
        let body = Bytes::from_static(&[9, 9, 9]);
        let record = MrtRecord::decode(header, body.clone()).unwrap();
        match &record.body {
            MrtRecordBody::Unsupported { mrt_type: 48, subtype: 1, body: b } => {
                assert_eq!(b, &body);
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(record.micros, None);
        // And they re-encode verbatim.
        let mut out = BytesMut::new();
        record.encode(&mut out);
        assert_eq!(&out[MrtHeader::WIRE_LEN..], &[9, 9, 9]);
    }

    #[test]
    fn bgp4mp_et_micros_roundtrip() {
        use crate::bgp4mp::Bgp4mpMessage;
        use bgp_types::{Asn, PathAttributes, Prefix};

        let attrs = PathAttributes::with_path("6939 3333".parse().unwrap());
        let prefix: Prefix = "2001:db8::/32".parse().unwrap();
        let msg = Bgp4mpMessage::announcement(
            Asn(6939),
            Asn(65000),
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            &attrs,
            &prefix,
        );
        let record = MrtRecord {
            header: MrtHeader {
                timestamp: 1_280_620_800,
                mrt_type: MrtType::Bgp4mpEt.code(),
                subtype: bgp4mp_subtype::MESSAGE_AS4,
                length: 0,
            },
            micros: Some(250_125),
            body: MrtRecordBody::Bgp4mp(msg),
        };
        let mut buf = BytesMut::new();
        record.encode(&mut buf);
        let mut bytes = buf.freeze();
        let header = MrtHeader::decode(&mut bytes).unwrap();
        let back = MrtRecord::decode(header, bytes).unwrap();
        assert_eq!(back.micros, Some(250_125));
        assert_eq!(back.body, record.body);
        assert_eq!(back.timestamp_micros(), 1_280_620_800u64 * 1_000_000 + 250_125);
        // Plain BGP4MP records carry no microsecond field.
        assert_eq!(
            MrtRecord::new(
                MrtHeader { timestamp: 7, mrt_type: 16, subtype: 4, length: 0 },
                record.body.clone(),
            )
            .timestamp_micros(),
            7_000_000
        );
    }

    #[test]
    fn bgp4mp_et_truncated_micros_is_error() {
        let header = MrtHeader {
            timestamp: 1,
            mrt_type: MrtType::Bgp4mpEt.code(),
            subtype: bgp4mp_subtype::MESSAGE_AS4,
            length: 2,
        };
        let err = MrtRecord::decode(header, Bytes::from_static(&[0, 1])).unwrap_err();
        assert!(matches!(err, MrtError::Truncated { .. }));
    }
}
