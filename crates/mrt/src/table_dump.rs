//! TABLE_DUMP_V2 records (RFC 6396 §4.3): the full-table RIB snapshots
//! that RouteViews and RIPE RIS publish every few hours and that the
//! paper's measurement consumes.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bgp_types::{Asn, IpVersion, PathAttributes, Prefix};

use crate::bgp::{decode_attributes, decode_prefix, encode_attributes, encode_prefix, AttrContext};
use crate::error::MrtError;
use crate::record::td2_subtype;

/// One peer (feeder) described by the PEER_INDEX_TABLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEntry {
    /// The peer's BGP identifier (an opaque 32-bit router ID).
    pub bgp_id: Ipv4Addr,
    /// The peer's peering address.
    pub addr: IpAddr,
    /// The peer's ASN.
    pub asn: Asn,
}

impl PeerEntry {
    /// The RFC 6396 peer-type byte: bit 0 set for an IPv6 peering address,
    /// bit 1 set for a 4-byte ASN field. We always emit 4-byte ASNs.
    fn peer_type(&self) -> u8 {
        let mut t = 0b10;
        if self.addr.is_ipv6() {
            t |= 0b01;
        }
        t
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.peer_type());
        buf.put_slice(&self.bgp_id.octets());
        match self.addr {
            IpAddr::V4(a) => buf.put_slice(&a.octets()),
            IpAddr::V6(a) => buf.put_slice(&a.octets()),
        }
        buf.put_u32(self.asn.value());
    }

    fn decode(buf: &mut Bytes) -> Result<Self, MrtError> {
        if buf.remaining() < 5 {
            return Err(MrtError::truncated("peer entry", 5, buf.remaining()));
        }
        let peer_type = buf.get_u8();
        let mut id = [0u8; 4];
        buf.copy_to_slice(&mut id);
        let bgp_id = Ipv4Addr::from(id);
        let addr = if peer_type & 0b01 != 0 {
            if buf.remaining() < 16 {
                return Err(MrtError::truncated("peer IPv6 address", 16, buf.remaining()));
            }
            let mut o = [0u8; 16];
            buf.copy_to_slice(&mut o);
            IpAddr::V6(Ipv6Addr::from(o))
        } else {
            if buf.remaining() < 4 {
                return Err(MrtError::truncated("peer IPv4 address", 4, buf.remaining()));
            }
            let mut o = [0u8; 4];
            buf.copy_to_slice(&mut o);
            IpAddr::V4(Ipv4Addr::from(o))
        };
        let asn = if peer_type & 0b10 != 0 {
            if buf.remaining() < 4 {
                return Err(MrtError::truncated("peer 4-byte ASN", 4, buf.remaining()));
            }
            Asn(buf.get_u32())
        } else {
            if buf.remaining() < 2 {
                return Err(MrtError::truncated("peer 2-byte ASN", 2, buf.remaining()));
            }
            Asn(buf.get_u16() as u32)
        };
        Ok(PeerEntry { bgp_id, addr, asn })
    }
}

/// The PEER_INDEX_TABLE record that must precede the RIB records in a
/// TABLE_DUMP_V2 file. RIB entries refer to peers by index into this table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerIndexTable {
    /// The collector's BGP identifier.
    pub collector_bgp_id: Ipv4Addr,
    /// The collector's view name (usually empty or "rib").
    pub view_name: String,
    /// The feeder table.
    pub peers: Vec<PeerEntry>,
}

impl PeerIndexTable {
    /// Encode to wire format.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.collector_bgp_id.octets());
        buf.put_u16(self.view_name.len() as u16);
        buf.put_slice(self.view_name.as_bytes());
        buf.put_u16(self.peers.len() as u16);
        for p in &self.peers {
            p.encode(buf);
        }
    }

    /// Decode from wire format.
    pub fn decode(buf: &mut Bytes) -> Result<Self, MrtError> {
        if buf.remaining() < 8 {
            return Err(MrtError::truncated("peer index table header", 8, buf.remaining()));
        }
        let mut id = [0u8; 4];
        buf.copy_to_slice(&mut id);
        let collector_bgp_id = Ipv4Addr::from(id);
        let name_len = buf.get_u16() as usize;
        if buf.remaining() < name_len {
            return Err(MrtError::truncated("view name", name_len, buf.remaining()));
        }
        let name_bytes = buf.copy_to_bytes(name_len);
        let view_name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| MrtError::malformed("view name", "not valid UTF-8"))?;
        if buf.remaining() < 2 {
            return Err(MrtError::truncated("peer count", 2, buf.remaining()));
        }
        let count = buf.get_u16() as usize;
        let mut peers = Vec::with_capacity(count);
        for _ in 0..count {
            peers.push(PeerEntry::decode(buf)?);
        }
        Ok(PeerIndexTable { collector_bgp_id, view_name, peers })
    }
}

/// One RIB entry inside a RIB_IPVx_UNICAST record: a route from one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntryRaw {
    /// Index into the PEER_INDEX_TABLE.
    pub peer_index: u16,
    /// When the route was received by the collector (epoch seconds).
    pub originated_time: u32,
    /// The route's path attributes.
    pub attrs: PathAttributes,
}

/// A RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record: one prefix and the routes
/// every peer had for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibAfiEntries {
    /// Monotonic record sequence number within the dump.
    pub sequence: u32,
    /// The prefix this record describes.
    pub prefix: Prefix,
    /// Per-peer routes.
    pub entries: Vec<RibEntryRaw>,
}

impl RibAfiEntries {
    /// The TABLE_DUMP_V2 subtype matching this record's address family.
    pub fn subtype(&self) -> u16 {
        match self.prefix.version() {
            IpVersion::V4 => td2_subtype::RIB_IPV4_UNICAST,
            IpVersion::V6 => td2_subtype::RIB_IPV6_UNICAST,
        }
    }

    /// Encode to wire format.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.sequence);
        encode_prefix(buf, &self.prefix);
        buf.put_u16(self.entries.len() as u16);
        for e in &self.entries {
            buf.put_u16(e.peer_index);
            buf.put_u32(e.originated_time);
            let attrs = encode_attributes(&e.attrs, &self.prefix, AttrContext::TableDumpV2);
            buf.put_u16(attrs.len() as u16);
            buf.put_slice(&attrs);
        }
    }

    /// Decode from wire format; `subtype` selects the address family.
    pub fn decode(subtype: u16, buf: &mut Bytes) -> Result<Self, MrtError> {
        let version = match subtype {
            td2_subtype::RIB_IPV4_UNICAST => IpVersion::V4,
            td2_subtype::RIB_IPV6_UNICAST => IpVersion::V6,
            other => {
                return Err(MrtError::UnsupportedRecord { mrt_type: 13, subtype: other });
            }
        };
        if buf.remaining() < 4 {
            return Err(MrtError::truncated("RIB sequence", 4, buf.remaining()));
        }
        let sequence = buf.get_u32();
        let prefix = decode_prefix(buf, version)?;
        if buf.remaining() < 2 {
            return Err(MrtError::truncated("RIB entry count", 2, buf.remaining()));
        }
        let count = buf.get_u16() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 8 {
                return Err(MrtError::truncated("RIB entry header", 8, buf.remaining()));
            }
            let peer_index = buf.get_u16();
            let originated_time = buf.get_u32();
            let attr_len = buf.get_u16() as usize;
            if buf.remaining() < attr_len {
                return Err(MrtError::truncated("RIB entry attributes", attr_len, buf.remaining()));
            }
            let attr_buf = buf.copy_to_bytes(attr_len);
            let decoded = decode_attributes(attr_buf, AttrContext::TableDumpV2)?;
            entries.push(RibEntryRaw { peer_index, originated_time, attrs: decoded.attrs });
        }
        Ok(RibAfiEntries { sequence, prefix, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Community;

    fn sample_peers() -> Vec<PeerEntry> {
        vec![
            PeerEntry {
                bgp_id: Ipv4Addr::new(10, 0, 0, 1),
                addr: IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1)),
                asn: Asn(3356),
            },
            PeerEntry {
                bgp_id: Ipv4Addr::new(10, 0, 0, 2),
                addr: IpAddr::V6("2001:db8::6939".parse().unwrap()),
                asn: Asn(6939),
            },
        ]
    }

    #[test]
    fn peer_entry_roundtrip_v4_and_v6() {
        for p in sample_peers() {
            let mut buf = BytesMut::new();
            p.encode(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(PeerEntry::decode(&mut bytes).unwrap(), p);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn peer_entry_decodes_two_byte_asn_form() {
        // Hand-encode a legacy 2-byte-ASN IPv4 peer.
        let mut buf = BytesMut::new();
        buf.put_u8(0b00);
        buf.put_slice(&Ipv4Addr::new(1, 1, 1, 1).octets());
        buf.put_slice(&Ipv4Addr::new(192, 0, 2, 9).octets());
        buf.put_u16(7018);
        let mut bytes = buf.freeze();
        let p = PeerEntry::decode(&mut bytes).unwrap();
        assert_eq!(p.asn, Asn(7018));
        assert_eq!(p.addr, IpAddr::V4(Ipv4Addr::new(192, 0, 2, 9)));
    }

    #[test]
    fn peer_index_table_roundtrip() {
        let table = PeerIndexTable {
            collector_bgp_id: Ipv4Addr::new(198, 51, 100, 1),
            view_name: "rib".to_string(),
            peers: sample_peers(),
        };
        let mut buf = BytesMut::new();
        table.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(PeerIndexTable::decode(&mut bytes).unwrap(), table);
    }

    #[test]
    fn peer_index_table_empty_view_name() {
        let table = PeerIndexTable {
            collector_bgp_id: Ipv4Addr::new(1, 2, 3, 4),
            view_name: String::new(),
            peers: vec![],
        };
        let mut buf = BytesMut::new();
        table.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = PeerIndexTable::decode(&mut bytes).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn peer_index_table_truncated() {
        let mut short = Bytes::from_static(&[0, 0, 0]);
        assert!(PeerIndexTable::decode(&mut short).is_err());
    }

    fn sample_rib(prefix: &str) -> RibAfiEntries {
        let prefix: Prefix = prefix.parse().unwrap();
        let mk = |peer_index: u16, path: &str, lp: u32| RibEntryRaw {
            peer_index,
            originated_time: 1_280_000_000,
            attrs: PathAttributes::with_path(path.parse().unwrap())
                .local_pref(lp)
                .community(Community::new(6939, 2000)),
        };
        RibAfiEntries {
            sequence: 42,
            prefix,
            entries: vec![mk(0, "3356 1299 112", 100), mk(1, "6939 112", 200)],
        }
    }

    #[test]
    fn rib_record_roundtrip_v6() {
        let rec = sample_rib("2001:db8:100::/40");
        assert_eq!(rec.subtype(), td2_subtype::RIB_IPV6_UNICAST);
        let mut buf = BytesMut::new();
        rec.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = RibAfiEntries::decode(td2_subtype::RIB_IPV6_UNICAST, &mut bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn rib_record_roundtrip_v4() {
        let rec = sample_rib("198.51.100.0/24");
        assert_eq!(rec.subtype(), td2_subtype::RIB_IPV4_UNICAST);
        let mut buf = BytesMut::new();
        rec.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = RibAfiEntries::decode(td2_subtype::RIB_IPV4_UNICAST, &mut bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn rib_record_rejects_unknown_subtype_and_truncation() {
        let rec = sample_rib("198.51.100.0/24");
        let mut buf = BytesMut::new();
        rec.encode(&mut buf);
        let full = buf.freeze();

        let mut wrong = full.clone();
        assert!(RibAfiEntries::decode(99, &mut wrong).is_err());

        let mut cut = full.slice(0..full.len() - 3);
        assert!(matches!(
            RibAfiEntries::decode(td2_subtype::RIB_IPV4_UNICAST, &mut cut),
            Err(MrtError::Truncated { .. })
        ));
    }

    #[test]
    fn rib_record_empty_entries() {
        let rec = RibAfiEntries {
            sequence: 0,
            prefix: "2001:db8::/32".parse().unwrap(),
            entries: vec![],
        };
        let mut buf = BytesMut::new();
        rec.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = RibAfiEntries::decode(td2_subtype::RIB_IPV6_UNICAST, &mut bytes).unwrap();
        assert!(back.entries.is_empty());
    }
}
