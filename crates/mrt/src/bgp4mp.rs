//! BGP4MP records (RFC 6396 §4.4): BGP messages as exchanged between a
//! collector and its peers, used by the "updates" archives.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bgp_types::{Asn, IpVersion, PathAttributes, Prefix};

use crate::bgp::{decode_update, encode_update, encode_withdrawal, BgpUpdate};
use crate::error::MrtError;

/// A BGP4MP_MESSAGE_AS4 record: one BGP message with its session context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// The ASN of the collector's peer (the message sender for updates the
    /// collector received).
    pub peer_asn: Asn,
    /// The collector's ASN.
    pub local_asn: Asn,
    /// Interface index (always 0 for collectors).
    pub interface_index: u16,
    /// The peer's address.
    pub peer_addr: IpAddr,
    /// The collector's address.
    pub local_addr: IpAddr,
    /// The decoded UPDATE, or `None` for OPEN/KEEPALIVE/NOTIFICATION.
    pub update: Option<BgpUpdate>,
}

impl Bgp4mpMessage {
    /// Convenience constructor for an UPDATE announcing one prefix.
    pub fn announcement(
        peer_asn: Asn,
        local_asn: Asn,
        peer_addr: IpAddr,
        local_addr: IpAddr,
        attrs: &PathAttributes,
        prefix: &Prefix,
    ) -> Self {
        let msg = encode_update(attrs, prefix).freeze();
        let update = decode_update(msg).expect("self-encoded update must decode");
        Bgp4mpMessage { peer_asn, local_asn, interface_index: 0, peer_addr, local_addr, update }
    }

    /// Convenience constructor for an UPDATE withdrawing `prefixes`.
    pub fn withdrawal(
        peer_asn: Asn,
        local_asn: Asn,
        peer_addr: IpAddr,
        local_addr: IpAddr,
        prefixes: &[Prefix],
    ) -> Self {
        let msg = encode_withdrawal(prefixes).freeze();
        let update = decode_update(msg).expect("self-encoded withdrawal must decode");
        Bgp4mpMessage { peer_asn, local_asn, interface_index: 0, peer_addr, local_addr, update }
    }

    /// The address family of the peering session.
    pub fn session_afi(&self) -> IpVersion {
        match self.peer_addr {
            IpAddr::V4(_) => IpVersion::V4,
            IpAddr::V6(_) => IpVersion::V6,
        }
    }

    /// Encode to wire format (the BGP message is re-synthesised from the
    /// decoded update; non-update messages are encoded as KEEPALIVEs).
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.peer_asn.value());
        buf.put_u32(self.local_asn.value());
        buf.put_u16(self.interface_index);
        buf.put_u16(self.session_afi().afi());
        match (self.peer_addr, self.local_addr) {
            (IpAddr::V4(p), IpAddr::V4(l)) => {
                buf.put_slice(&p.octets());
                buf.put_slice(&l.octets());
            }
            (IpAddr::V6(p), IpAddr::V6(l)) => {
                buf.put_slice(&p.octets());
                buf.put_slice(&l.octets());
            }
            // Mixed-family sessions do not occur; encode the peer's family
            // and map the other address to its unspecified form.
            (IpAddr::V4(p), IpAddr::V6(_)) => {
                buf.put_slice(&p.octets());
                buf.put_slice(&Ipv4Addr::UNSPECIFIED.octets());
            }
            (IpAddr::V6(p), IpAddr::V4(_)) => {
                buf.put_slice(&p.octets());
                buf.put_slice(&Ipv6Addr::UNSPECIFIED.octets());
            }
        }
        match &self.update {
            // Announcements are emitted one prefix per message in our
            // synthetic archives; a mixed update degrades to its
            // announcement half.
            Some(u) if !u.announced.is_empty() => {
                buf.put_slice(&encode_update(&u.attrs, &u.announced[0]));
            }
            Some(u) if !u.withdrawn.is_empty() => {
                buf.put_slice(&encode_withdrawal(&u.withdrawn));
            }
            _ => buf.put_slice(&keepalive()),
        }
    }

    /// Decode from wire format.
    pub fn decode(buf: &mut Bytes) -> Result<Self, MrtError> {
        if buf.remaining() < 12 {
            return Err(MrtError::truncated("BGP4MP header", 12, buf.remaining()));
        }
        let peer_asn = Asn(buf.get_u32());
        let local_asn = Asn(buf.get_u32());
        let interface_index = buf.get_u16();
        let afi = buf.get_u16();
        let version = IpVersion::from_afi(afi)
            .ok_or_else(|| MrtError::malformed("BGP4MP AFI", format!("unknown AFI {afi}")))?;
        let (peer_addr, local_addr) = match version {
            IpVersion::V4 => {
                if buf.remaining() < 8 {
                    return Err(MrtError::truncated("BGP4MP addresses", 8, buf.remaining()));
                }
                let mut p = [0u8; 4];
                let mut l = [0u8; 4];
                buf.copy_to_slice(&mut p);
                buf.copy_to_slice(&mut l);
                (IpAddr::V4(Ipv4Addr::from(p)), IpAddr::V4(Ipv4Addr::from(l)))
            }
            IpVersion::V6 => {
                if buf.remaining() < 32 {
                    return Err(MrtError::truncated("BGP4MP addresses", 32, buf.remaining()));
                }
                let mut p = [0u8; 16];
                let mut l = [0u8; 16];
                buf.copy_to_slice(&mut p);
                buf.copy_to_slice(&mut l);
                (IpAddr::V6(Ipv6Addr::from(p)), IpAddr::V6(Ipv6Addr::from(l)))
            }
        };
        let msg = buf.copy_to_bytes(buf.remaining());
        let update = decode_update(msg)?;
        Ok(Bgp4mpMessage { peer_asn, local_asn, interface_index, peer_addr, local_addr, update })
    }
}

fn keepalive() -> BytesMut {
    let mut msg = BytesMut::with_capacity(19);
    msg.put_slice(&crate::bgp::BGP_MARKER);
    msg.put_u16(19);
    msg.put_u8(4);
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Community;

    fn sample_v6() -> Bgp4mpMessage {
        let attrs = PathAttributes::with_path("6939 2914 3333".parse().unwrap())
            .local_pref(140)
            .community(Community::new(6939, 2000));
        let prefix: Prefix = "2001:db8:200::/40".parse().unwrap();
        Bgp4mpMessage::announcement(
            Asn(6939),
            Asn(65000),
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            &attrs,
            &prefix,
        )
    }

    #[test]
    fn announcement_roundtrip_v6() {
        let msg = sample_v6();
        assert_eq!(msg.session_afi(), IpVersion::V6);
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Bgp4mpMessage::decode(&mut bytes).unwrap();
        assert_eq!(back, msg);
        let update = back.update.unwrap();
        assert_eq!(update.announced, vec!["2001:db8:200::/40".parse::<Prefix>().unwrap()]);
        assert_eq!(update.attrs.local_pref, Some(140));
    }

    #[test]
    fn announcement_roundtrip_v4() {
        let attrs = PathAttributes::with_path("3356 112".parse().unwrap());
        let prefix: Prefix = "198.51.100.0/24".parse().unwrap();
        let msg = Bgp4mpMessage::announcement(
            Asn(3356),
            Asn(65000),
            "192.0.2.1".parse().unwrap(),
            "192.0.2.2".parse().unwrap(),
            &attrs,
            &prefix,
        );
        assert_eq!(msg.session_afi(), IpVersion::V4);
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Bgp4mpMessage::decode(&mut bytes).unwrap();
        assert_eq!(back.update.unwrap().announced, vec![prefix]);
    }

    #[test]
    fn withdrawal_roundtrip() {
        let prefixes: Vec<Prefix> =
            vec!["2001:db8:200::/40".parse().unwrap(), "198.51.100.0/24".parse().unwrap()];
        let msg = Bgp4mpMessage::withdrawal(
            Asn(6939),
            Asn(65000),
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            &prefixes,
        );
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Bgp4mpMessage::decode(&mut bytes).unwrap();
        assert_eq!(back, msg);
        let update = back.update.unwrap();
        assert!(update.announced.is_empty());
        assert_eq!(update.withdrawn.len(), 2);
    }

    #[test]
    fn keepalive_roundtrips_as_none() {
        let msg = Bgp4mpMessage {
            peer_asn: Asn(1),
            local_asn: Asn(2),
            interface_index: 0,
            peer_addr: "192.0.2.1".parse().unwrap(),
            local_addr: "192.0.2.2".parse().unwrap(),
            update: None,
        };
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Bgp4mpMessage::decode(&mut bytes).unwrap();
        assert_eq!(back.update, None);
        assert_eq!(back.peer_asn, Asn(1));
    }

    #[test]
    fn decode_rejects_truncation_and_bad_afi() {
        let msg = sample_v6();
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(0..10);
        assert!(Bgp4mpMessage::decode(&mut cut).is_err());

        // Corrupt the AFI field (bytes 10..12).
        let mut corrupted = BytesMut::from(&full[..]);
        corrupted[10] = 0;
        corrupted[11] = 99;
        let mut bytes = corrupted.freeze();
        assert!(Bgp4mpMessage::decode(&mut bytes).is_err());
    }
}
