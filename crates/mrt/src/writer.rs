//! MRT writers: record-level and snapshot-level emission.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::net::Ipv4Addr;
use std::path::Path;

use bytes::BytesMut;

use bgp_types::{PeerId, Prefix, RibSnapshot};

use crate::error::MrtError;
use crate::record::{td2_subtype, MrtHeader, MrtRecord, MrtRecordBody, MrtType};
use crate::table_dump::{PeerEntry, PeerIndexTable, RibAfiEntries, RibEntryRaw};

/// Writes MRT records to any [`Write`] sink.
pub struct MrtWriter<W> {
    inner: W,
    records_written: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wrap a byte sink.
    pub fn new(inner: W) -> Self {
        MrtWriter { inner, records_written: 0 }
    }

    /// How many records have been written.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Serialize one record.
    pub fn write_record(&mut self, record: &MrtRecord) -> Result<(), MrtError> {
        let mut buf = BytesMut::new();
        record.encode(&mut buf);
        self.inner.write_all(&buf)?;
        self.records_written += 1;
        Ok(())
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> Result<(), MrtError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Recover the underlying sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Serialize a [`RibSnapshot`] as a TABLE_DUMP_V2 file: one
/// PEER_INDEX_TABLE followed by one RIB record per distinct prefix.
///
/// The collector name is stored in the peer-index-table view name so that
/// [`crate::read_snapshot`] can restore it.
pub fn write_snapshot(sink: impl Write, snapshot: &RibSnapshot) -> Result<(), MrtError> {
    let mut writer = MrtWriter::new(BufWriter::new(sink));
    let timestamp = snapshot.timestamp as u32;

    // Build the peer table. Peer indices follow the sorted order that
    // `RibSnapshot::peers` returns, making output deterministic.
    let peers = snapshot.peers();
    let peer_index: HashMap<PeerId, u16> =
        peers.iter().enumerate().map(|(i, p)| (*p, i as u16)).collect();
    let table = PeerIndexTable {
        collector_bgp_id: Ipv4Addr::new(192, 0, 2, 255),
        view_name: snapshot.collector.as_ref().map(|c| c.name().to_string()).unwrap_or_default(),
        peers: peers
            .iter()
            .enumerate()
            .map(|(i, p)| PeerEntry {
                // Synthetic router IDs: stable, unique per index.
                bgp_id: Ipv4Addr::from((0x0A00_0000u32 | i as u32).to_be_bytes()),
                addr: p.addr,
                asn: p.asn,
            })
            .collect(),
    };
    writer.write_record(&MrtRecord::new(
        MrtHeader {
            timestamp,
            mrt_type: MrtType::TableDumpV2.code(),
            subtype: td2_subtype::PEER_INDEX_TABLE,
            length: 0,
        },
        MrtRecordBody::PeerIndexTable(table),
    ))?;

    // Group entries by prefix, preserving first-seen order.
    let mut order: Vec<Prefix> = Vec::new();
    let mut grouped: HashMap<Prefix, Vec<RibEntryRaw>> = HashMap::new();
    for entry in &snapshot.entries {
        let raw = RibEntryRaw {
            peer_index: *peer_index.get(&entry.peer).expect("peer indexed above"),
            originated_time: timestamp,
            attrs: entry.attrs.clone(),
        };
        grouped
            .entry(entry.prefix)
            .or_insert_with(|| {
                order.push(entry.prefix);
                Vec::new()
            })
            .push(raw);
    }

    for (sequence, prefix) in order.iter().enumerate() {
        let rib = RibAfiEntries {
            sequence: sequence as u32,
            prefix: *prefix,
            entries: grouped.remove(prefix).unwrap_or_default(),
        };
        let subtype = rib.subtype();
        writer.write_record(&MrtRecord::new(
            MrtHeader { timestamp, mrt_type: MrtType::TableDumpV2.code(), subtype, length: 0 },
            MrtRecordBody::RibEntries(rib),
        ))?;
    }
    writer.flush()
}

/// [`write_snapshot`] to a file path (parent directories must exist).
pub fn write_snapshot_to_path(
    path: impl AsRef<Path>,
    snapshot: &RibSnapshot,
) -> Result<(), MrtError> {
    let file = File::create(path)?;
    write_snapshot(file, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{read_snapshot, MrtReader};
    use bgp_types::{Asn, CollectorId, IpVersion, PathAttributes, RibEntry};
    use std::net::IpAddr;

    fn snapshot_with(n_prefixes: usize) -> RibSnapshot {
        let mut snap = RibSnapshot::new(CollectorId::new("writer-test"), 1_280_000_123);
        let peer = PeerId::new(Asn(6939), "2001:db8::1".parse::<IpAddr>().unwrap());
        for i in 0..n_prefixes {
            let prefix: Prefix = format!("2001:db8:{:x}::/48", i + 1).parse().unwrap();
            snap.push(RibEntry::new(
                peer,
                prefix,
                PathAttributes::with_path("6939 3333".parse().unwrap()),
            ));
        }
        snap
    }

    #[test]
    fn writer_counts_records() {
        let snap = snapshot_with(5);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let records: Vec<_> = MrtReader::new(&buf[..]).records().collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 6); // index table + 5 prefixes
                                      // The peer index table must come first.
        assert!(matches!(records[0].body, MrtRecordBody::PeerIndexTable(_)));
        // Header lengths must match encoded bodies.
        for r in &records {
            let mut buf = BytesMut::new();
            r.encode(&mut buf);
            assert_eq!(buf.len(), MrtHeader::WIRE_LEN + r.header.length as usize);
        }
    }

    #[test]
    fn empty_snapshot_still_writes_an_index_table() {
        let snap = RibSnapshot::new(CollectorId::new("empty"), 1);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let decoded = read_snapshot(&buf[..]).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.collector, Some(CollectorId::new("empty")));
    }

    #[test]
    fn mixed_plane_snapshot_uses_correct_subtypes() {
        let mut snap = RibSnapshot::new(CollectorId::new("planes"), 5);
        let v4_peer = PeerId::new(Asn(3356), "192.0.2.1".parse::<IpAddr>().unwrap());
        let v6_peer = PeerId::new(Asn(3356), "2001:db8::9".parse::<IpAddr>().unwrap());
        snap.push(RibEntry::new(
            v4_peer,
            "10.0.0.0/8".parse().unwrap(),
            PathAttributes::with_path("3356 1".parse().unwrap()),
        ));
        snap.push(RibEntry::new(
            v6_peer,
            "2001:db8::/32".parse().unwrap(),
            PathAttributes::with_path("3356 1".parse().unwrap()),
        ));
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let records: Vec<_> = MrtReader::new(&buf[..]).records().collect::<Result<_, _>>().unwrap();
        let subtypes: Vec<u16> = records.iter().skip(1).map(|r| r.header.subtype).collect();
        assert!(subtypes.contains(&td2_subtype::RIB_IPV4_UNICAST));
        assert!(subtypes.contains(&td2_subtype::RIB_IPV6_UNICAST));

        let decoded = read_snapshot(&buf[..]).unwrap();
        assert_eq!(decoded.plane_entries(IpVersion::V4).count(), 1);
        assert_eq!(decoded.plane_entries(IpVersion::V6).count(), 1);
    }

    #[test]
    fn multiple_peers_same_prefix_share_one_record() {
        let mut snap = RibSnapshot::new(CollectorId::new("multi"), 5);
        for asn in [1u32, 2, 3] {
            let peer = PeerId::new(Asn(asn), format!("2001:db8::{asn}").parse::<IpAddr>().unwrap());
            snap.push(RibEntry::new(
                peer,
                "2001:db8:ffff::/48".parse().unwrap(),
                PathAttributes::with_path(format!("{asn} 3333").parse().unwrap()),
            ));
        }
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let records: Vec<_> = MrtReader::new(&buf[..]).records().collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 2);
        if let MrtRecordBody::RibEntries(rib) = &records[1].body {
            assert_eq!(rib.entries.len(), 3);
        } else {
            panic!("expected a RIB record");
        }
        let decoded = read_snapshot(&buf[..]).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded.peers().len(), 3);
    }

    #[test]
    fn writer_into_inner_returns_sink() {
        let writer = MrtWriter::new(Vec::<u8>::new());
        let sink = writer.into_inner();
        assert!(sink.is_empty());
    }
}
