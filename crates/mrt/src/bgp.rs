//! BGP wire codec: NLRI prefixes, path attributes and UPDATE messages.
//!
//! The attribute codec is shared by the TABLE_DUMP_V2 RIB records (which
//! embed a BGP attribute blob per RIB entry) and by BGP4MP update
//! messages. The only behavioural difference between the two contexts is
//! the shape of `MP_REACH_NLRI`: RFC 6396 §4.3.4 abbreviates it inside
//! TABLE_DUMP_V2 to just the next-hop length and next-hop address.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bgp_types::{
    AsPath, AsPathSegment, Asn, Community, CommunitySet, IpVersion, Ipv4Net, Ipv6Net,
    LargeCommunity, Origin, PathAttributes, Prefix,
};

use crate::error::MrtError;

/// BGP path attribute type codes used by this implementation.
pub mod attr_type {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH (4-byte ASNs in our encodings).
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP (IPv4).
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR (decoded but ignored).
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES.
    pub const COMMUNITIES: u8 = 8;
    /// MP_REACH_NLRI.
    pub const MP_REACH_NLRI: u8 = 14;
    /// MP_UNREACH_NLRI (decoded but ignored).
    pub const MP_UNREACH_NLRI: u8 = 15;
    /// LARGE_COMMUNITIES.
    pub const LARGE_COMMUNITIES: u8 = 32;
}

/// Attribute flag bits.
mod flags {
    pub const OPTIONAL: u8 = 0x80;
    pub const TRANSITIVE: u8 = 0x40;
    pub const EXTENDED_LENGTH: u8 = 0x10;
}

/// Which framing rules apply to MP_REACH_NLRI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrContext {
    /// Attributes embedded in a TABLE_DUMP_V2 RIB entry (abbreviated
    /// MP_REACH_NLRI: next-hop only).
    TableDumpV2,
    /// Attributes inside a live BGP UPDATE message (full MP_REACH_NLRI
    /// with AFI/SAFI and NLRI).
    Update,
}

/// Everything decoded out of one attribute blob.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedAttributes {
    /// The structured attributes.
    pub attrs: PathAttributes,
    /// Prefixes announced via MP_REACH_NLRI (only in `Update` context).
    pub mp_reach_nlri: Vec<Prefix>,
    /// Prefixes withdrawn via MP_UNREACH_NLRI (only in `Update` context).
    pub mp_unreach_nlri: Vec<Prefix>,
}

fn need(buf: &impl Buf, n: usize, context: &'static str) -> Result<(), MrtError> {
    if buf.remaining() < n {
        Err(MrtError::truncated(context, n, buf.remaining()))
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// NLRI prefix encoding
// ---------------------------------------------------------------------------

/// Encode one NLRI prefix: length byte followed by the minimal number of
/// address octets.
pub fn encode_prefix(buf: &mut BytesMut, prefix: &Prefix) {
    let len = prefix.len();
    buf.put_u8(len);
    let nbytes = (len as usize).div_ceil(8);
    match prefix {
        Prefix::V4(p) => buf.put_slice(&p.addr().octets()[..nbytes]),
        Prefix::V6(p) => buf.put_slice(&p.addr().octets()[..nbytes]),
    }
}

/// Decode one NLRI prefix of the given address family.
pub fn decode_prefix(buf: &mut Bytes, version: IpVersion) -> Result<Prefix, MrtError> {
    need(buf, 1, "nlri prefix length")?;
    let len = buf.get_u8();
    if len > version.max_prefix_len() {
        return Err(MrtError::malformed(
            "nlri prefix",
            format!("prefix length {len} exceeds {} maximum", version),
        ));
    }
    let nbytes = (len as usize).div_ceil(8);
    need(buf, nbytes, "nlri prefix address")?;
    match version {
        IpVersion::V4 => {
            let mut octets = [0u8; 4];
            buf.copy_to_slice(&mut octets[..nbytes]);
            Ok(Prefix::V4(Ipv4Net::new_truncated(Ipv4Addr::from(octets), len)))
        }
        IpVersion::V6 => {
            let mut octets = [0u8; 16];
            buf.copy_to_slice(&mut octets[..nbytes]);
            Ok(Prefix::V6(Ipv6Net::new_truncated(Ipv6Addr::from(octets), len)))
        }
    }
}

// ---------------------------------------------------------------------------
// Path attribute encoding
// ---------------------------------------------------------------------------

fn put_attr(buf: &mut BytesMut, flag_bits: u8, type_code: u8, body: &[u8]) {
    if body.len() > 255 {
        buf.put_u8(flag_bits | flags::EXTENDED_LENGTH);
        buf.put_u8(type_code);
        buf.put_u16(body.len() as u16);
    } else {
        buf.put_u8(flag_bits);
        buf.put_u8(type_code);
        buf.put_u8(body.len() as u8);
    }
    buf.put_slice(body);
}

fn encode_as_path(path: &AsPath) -> BytesMut {
    let mut body = BytesMut::new();
    for seg in path.segments() {
        let (code, asns) = match seg {
            AsPathSegment::Set(v) => (1u8, v),
            AsPathSegment::Sequence(v) => (2u8, v),
        };
        body.put_u8(code);
        body.put_u8(asns.len() as u8);
        for asn in asns {
            body.put_u32(asn.value());
        }
    }
    body
}

/// Encode the path attributes of a route.
///
/// `prefix` is the route's NLRI; IPv6 routes are encoded with an
/// `MP_REACH_NLRI` attribute (abbreviated or full depending on `ctx`),
/// IPv4 routes use the classic `NEXT_HOP` attribute and, in `Update`
/// context, are expected to be carried in the UPDATE's own NLRI field.
pub fn encode_attributes(attrs: &PathAttributes, prefix: &Prefix, ctx: AttrContext) -> BytesMut {
    let mut out = BytesMut::new();
    let wk = flags::TRANSITIVE; // well-known attributes
    let opt = flags::OPTIONAL;
    let opt_trans = flags::OPTIONAL | flags::TRANSITIVE;

    // ORIGIN
    put_attr(&mut out, wk, attr_type::ORIGIN, &[attrs.origin.code()]);

    // AS_PATH
    let as_path_body = encode_as_path(&attrs.as_path);
    put_attr(&mut out, wk, attr_type::AS_PATH, &as_path_body);

    // NEXT_HOP / MP_REACH_NLRI
    match prefix.version() {
        IpVersion::V4 => {
            let hop = match attrs.next_hop {
                Some(IpAddr::V4(a)) => a,
                _ => Ipv4Addr::UNSPECIFIED,
            };
            put_attr(&mut out, wk, attr_type::NEXT_HOP, &hop.octets());
        }
        IpVersion::V6 => {
            let hop = match attrs.next_hop {
                Some(IpAddr::V6(a)) => a,
                _ => Ipv6Addr::UNSPECIFIED,
            };
            let mut body = BytesMut::new();
            match ctx {
                AttrContext::TableDumpV2 => {
                    // RFC 6396 §4.3.4: next hop length + next hop only.
                    body.put_u8(16);
                    body.put_slice(&hop.octets());
                }
                AttrContext::Update => {
                    body.put_u16(IpVersion::V6.afi());
                    body.put_u8(1); // SAFI unicast
                    body.put_u8(16);
                    body.put_slice(&hop.octets());
                    body.put_u8(0); // reserved
                    encode_prefix(&mut body, prefix);
                }
            }
            put_attr(&mut out, opt, attr_type::MP_REACH_NLRI, &body);
        }
    }

    // MED
    if let Some(med) = attrs.med {
        put_attr(&mut out, opt, attr_type::MED, &med.to_be_bytes());
    }

    // LOCAL_PREF
    if let Some(lp) = attrs.local_pref {
        put_attr(&mut out, wk, attr_type::LOCAL_PREF, &lp.to_be_bytes());
    }

    // ATOMIC_AGGREGATE
    if attrs.atomic_aggregate {
        put_attr(&mut out, wk, attr_type::ATOMIC_AGGREGATE, &[]);
    }

    // COMMUNITIES
    if !attrs.communities.is_empty() {
        let mut body = BytesMut::with_capacity(attrs.communities.len() * 4);
        for c in attrs.communities.iter() {
            body.put_u32(c.as_u32());
        }
        put_attr(&mut out, opt_trans, attr_type::COMMUNITIES, &body);
    }

    // LARGE_COMMUNITIES
    if !attrs.large_communities.is_empty() {
        let mut body = BytesMut::with_capacity(attrs.large_communities.len() * 12);
        for lc in &attrs.large_communities {
            body.put_u32(lc.global);
            body.put_u32(lc.local1);
            body.put_u32(lc.local2);
        }
        put_attr(&mut out, opt_trans, attr_type::LARGE_COMMUNITIES, &body);
    }

    out
}

// ---------------------------------------------------------------------------
// Path attribute decoding
// ---------------------------------------------------------------------------

fn decode_as_path(mut body: Bytes) -> Result<AsPath, MrtError> {
    let mut segments = Vec::new();
    while body.has_remaining() {
        need(&body, 2, "AS_PATH segment header")?;
        let seg_type = body.get_u8();
        let count = body.get_u8() as usize;
        need(&body, count * 4, "AS_PATH segment ASNs")?;
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            asns.push(Asn(body.get_u32()));
        }
        match seg_type {
            1 => segments.push(AsPathSegment::Set(asns)),
            2 => segments.push(AsPathSegment::Sequence(asns)),
            other => {
                return Err(MrtError::malformed(
                    "AS_PATH segment",
                    format!("unknown segment type {other}"),
                ))
            }
        }
    }
    AsPath::from_segments(segments).map_err(|e| MrtError::malformed("AS_PATH", e.to_string()))
}

fn decode_mp_reach(
    mut body: Bytes,
    ctx: AttrContext,
) -> Result<(Option<IpAddr>, Vec<Prefix>), MrtError> {
    match ctx {
        AttrContext::TableDumpV2 => {
            need(&body, 1, "MP_REACH next hop length")?;
            let hop_len = body.get_u8() as usize;
            need(&body, hop_len, "MP_REACH next hop")?;
            let hop = read_next_hop(&mut body, hop_len)?;
            Ok((hop, Vec::new()))
        }
        AttrContext::Update => {
            need(&body, 5, "MP_REACH header")?;
            let afi = body.get_u16();
            let _safi = body.get_u8();
            let hop_len = body.get_u8() as usize;
            need(&body, hop_len, "MP_REACH next hop")?;
            let hop = read_next_hop(&mut body, hop_len)?;
            need(&body, 1, "MP_REACH reserved byte")?;
            let _reserved = body.get_u8();
            let version = IpVersion::from_afi(afi).ok_or_else(|| {
                MrtError::malformed("MP_REACH_NLRI", format!("unknown AFI {afi}"))
            })?;
            let mut prefixes = Vec::new();
            while body.has_remaining() {
                prefixes.push(decode_prefix(&mut body, version)?);
            }
            Ok((hop, prefixes))
        }
    }
}

fn read_next_hop(body: &mut Bytes, hop_len: usize) -> Result<Option<IpAddr>, MrtError> {
    match hop_len {
        0 => Ok(None),
        4 => {
            let mut o = [0u8; 4];
            body.copy_to_slice(&mut o);
            let hop = Ipv4Addr::from(o);
            Ok((!hop.is_unspecified()).then_some(IpAddr::V4(hop)))
        }
        16 => {
            let mut o = [0u8; 16];
            body.copy_to_slice(&mut o);
            let hop = Ipv6Addr::from(o);
            Ok((!hop.is_unspecified()).then_some(IpAddr::V6(hop)))
        }
        32 => {
            // global + link-local next hop; keep the global one.
            let mut o = [0u8; 16];
            body.copy_to_slice(&mut o);
            let global = Ipv6Addr::from(o);
            body.advance(16);
            Ok((!global.is_unspecified()).then_some(IpAddr::V6(global)))
        }
        other => {
            Err(MrtError::malformed("next hop", format!("unsupported next hop length {other}")))
        }
    }
}

/// Decode a path attribute blob.
pub fn decode_attributes(mut buf: Bytes, ctx: AttrContext) -> Result<DecodedAttributes, MrtError> {
    let mut out = DecodedAttributes::default();
    while buf.has_remaining() {
        need(&buf, 2, "attribute header")?;
        let flag_bits = buf.get_u8();
        let type_code = buf.get_u8();
        let len = if flag_bits & flags::EXTENDED_LENGTH != 0 {
            need(&buf, 2, "attribute extended length")?;
            buf.get_u16() as usize
        } else {
            need(&buf, 1, "attribute length")?;
            buf.get_u8() as usize
        };
        need(&buf, len, "attribute body")?;
        let body = buf.copy_to_bytes(len);

        match type_code {
            attr_type::ORIGIN => {
                if body.len() != 1 {
                    return Err(MrtError::malformed("ORIGIN", "length != 1"));
                }
                out.attrs.origin = Origin::from_code(body[0]).ok_or_else(|| {
                    MrtError::malformed("ORIGIN", format!("unknown code {}", body[0]))
                })?;
            }
            attr_type::AS_PATH => {
                out.attrs.as_path = decode_as_path(body)?;
            }
            attr_type::NEXT_HOP => {
                if body.len() != 4 {
                    return Err(MrtError::malformed("NEXT_HOP", "length != 4"));
                }
                let o: [u8; 4] = [body[0], body[1], body[2], body[3]];
                let hop = Ipv4Addr::from(o);
                // 0.0.0.0 is the "no next hop known" placeholder we emit
                // for synthetic routes; map it back to None.
                out.attrs.next_hop = (!hop.is_unspecified()).then_some(IpAddr::V4(hop));
            }
            attr_type::MED => {
                if body.len() != 4 {
                    return Err(MrtError::malformed("MED", "length != 4"));
                }
                out.attrs.med = Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            }
            attr_type::LOCAL_PREF => {
                if body.len() != 4 {
                    return Err(MrtError::malformed("LOCAL_PREF", "length != 4"));
                }
                out.attrs.local_pref =
                    Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            }
            attr_type::ATOMIC_AGGREGATE => {
                out.attrs.atomic_aggregate = true;
            }
            attr_type::AGGREGATOR => {
                // ASN + IPv4 address; provenance only, ignored.
            }
            attr_type::COMMUNITIES => {
                if body.len() % 4 != 0 {
                    return Err(MrtError::malformed("COMMUNITIES", "length not a multiple of 4"));
                }
                let mut set = CommunitySet::new();
                let mut b = body;
                while b.has_remaining() {
                    set.insert(Community::from_u32(b.get_u32()));
                }
                out.attrs.communities = set;
            }
            attr_type::LARGE_COMMUNITIES => {
                if body.len() % 12 != 0 {
                    return Err(MrtError::malformed(
                        "LARGE_COMMUNITIES",
                        "length not a multiple of 12",
                    ));
                }
                let mut b = body;
                while b.has_remaining() {
                    out.attrs.large_communities.push(LargeCommunity::new(
                        b.get_u32(),
                        b.get_u32(),
                        b.get_u32(),
                    ));
                }
            }
            attr_type::MP_REACH_NLRI => {
                let (hop, prefixes) = decode_mp_reach(body, ctx)?;
                if out.attrs.next_hop.is_none() {
                    out.attrs.next_hop = hop;
                }
                out.mp_reach_nlri = prefixes;
            }
            attr_type::MP_UNREACH_NLRI if ctx == AttrContext::Update && body.len() >= 3 => {
                let mut b = body;
                let afi = b.get_u16();
                let _safi = b.get_u8();
                if let Some(version) = IpVersion::from_afi(afi) {
                    while b.has_remaining() {
                        out.mp_unreach_nlri.push(decode_prefix(&mut b, version)?);
                    }
                }
            }
            _ => {
                // Unknown attribute: skip. Real archives contain plenty
                // (OTC, extended communities, ...), none of which the
                // measurement needs.
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// BGP UPDATE messages (for BGP4MP records)
// ---------------------------------------------------------------------------

/// The fixed 16-byte marker that precedes every BGP message.
pub const BGP_MARKER: [u8; 16] = [0xFF; 16];

/// BGP message type code for UPDATE.
pub const BGP_MSG_UPDATE: u8 = 2;

/// A decoded BGP UPDATE message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BgpUpdate {
    /// Prefixes withdrawn (classic IPv4 field plus MP_UNREACH).
    pub withdrawn: Vec<Prefix>,
    /// Path attributes of the announced routes.
    pub attrs: PathAttributes,
    /// Announced prefixes (classic IPv4 NLRI plus MP_REACH).
    pub announced: Vec<Prefix>,
}

/// Encode a BGP UPDATE that announces `prefix` with `attrs`.
pub fn encode_update(attrs: &PathAttributes, prefix: &Prefix) -> BytesMut {
    let attr_blob = encode_attributes(attrs, prefix, AttrContext::Update);
    let mut body = BytesMut::new();
    body.put_u16(0); // no withdrawn routes
    body.put_u16(attr_blob.len() as u16);
    body.put_slice(&attr_blob);
    if prefix.version() == IpVersion::V4 {
        encode_prefix(&mut body, prefix);
    }

    let total_len = 16 + 2 + 1 + body.len();
    let mut msg = BytesMut::with_capacity(total_len);
    msg.put_slice(&BGP_MARKER);
    msg.put_u16(total_len as u16);
    msg.put_u8(BGP_MSG_UPDATE);
    msg.put_slice(&body);
    msg
}

/// Encode a BGP UPDATE that withdraws `prefixes` (no announcements).
///
/// IPv4 prefixes travel in the classic withdrawn-routes field, IPv6
/// prefixes in an `MP_UNREACH_NLRI` attribute — the two forms a collector
/// archive actually contains.
pub fn encode_withdrawal(prefixes: &[Prefix]) -> BytesMut {
    let mut withdrawn = BytesMut::new();
    let mut unreach_nlri = BytesMut::new();
    for prefix in prefixes {
        match prefix.version() {
            IpVersion::V4 => encode_prefix(&mut withdrawn, prefix),
            IpVersion::V6 => encode_prefix(&mut unreach_nlri, prefix),
        }
    }
    let mut attr_blob = BytesMut::new();
    if !unreach_nlri.is_empty() {
        let mut attr_body = BytesMut::with_capacity(3 + unreach_nlri.len());
        attr_body.put_u16(IpVersion::V6.afi());
        attr_body.put_u8(1); // SAFI unicast
        attr_body.put_slice(&unreach_nlri);
        put_attr(&mut attr_blob, flags::OPTIONAL, attr_type::MP_UNREACH_NLRI, &attr_body);
    }

    let mut body = BytesMut::new();
    body.put_u16(withdrawn.len() as u16);
    body.put_slice(&withdrawn);
    body.put_u16(attr_blob.len() as u16);
    body.put_slice(&attr_blob);

    let total_len = 16 + 2 + 1 + body.len();
    let mut msg = BytesMut::with_capacity(total_len);
    msg.put_slice(&BGP_MARKER);
    msg.put_u16(total_len as u16);
    msg.put_u8(BGP_MSG_UPDATE);
    msg.put_slice(&body);
    msg
}

/// Decode a BGP message; returns `None` for non-UPDATE messages
/// (OPEN/KEEPALIVE/NOTIFICATION), which collectors also archive.
pub fn decode_update(mut buf: Bytes) -> Result<Option<BgpUpdate>, MrtError> {
    need(&buf, 19, "BGP message header")?;
    buf.advance(16); // marker
    let total_len = buf.get_u16() as usize;
    let msg_type = buf.get_u8();
    if total_len < 19 {
        return Err(MrtError::malformed("BGP message", "length below minimum"));
    }
    if msg_type != BGP_MSG_UPDATE {
        return Ok(None);
    }
    need(&buf, 4, "UPDATE lengths")?;
    let withdrawn_len = buf.get_u16() as usize;
    need(&buf, withdrawn_len, "withdrawn routes")?;
    let mut withdrawn_buf = buf.copy_to_bytes(withdrawn_len);
    let mut withdrawn = Vec::new();
    while withdrawn_buf.has_remaining() {
        withdrawn.push(decode_prefix(&mut withdrawn_buf, IpVersion::V4)?);
    }
    need(&buf, 2, "attribute length")?;
    let attr_len = buf.get_u16() as usize;
    need(&buf, attr_len, "attributes")?;
    let attr_buf = buf.copy_to_bytes(attr_len);
    let decoded = decode_attributes(attr_buf, AttrContext::Update)?;

    let mut announced = Vec::new();
    while buf.has_remaining() {
        announced.push(decode_prefix(&mut buf, IpVersion::V4)?);
    }
    announced.extend(decoded.mp_reach_nlri);
    withdrawn.extend(decoded.mp_unreach_nlri);

    Ok(Some(BgpUpdate { withdrawn, attrs: decoded.attrs, announced }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn roundtrip_prefix(p: &Prefix) -> Prefix {
        let mut buf = BytesMut::new();
        encode_prefix(&mut buf, p);
        let mut bytes = buf.freeze();
        decode_prefix(&mut bytes, p.version()).unwrap()
    }

    #[test]
    fn prefix_roundtrip_various_lengths() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "192.0.2.128/25", "203.0.113.7/32"] {
            let p = v4(s);
            assert_eq!(roundtrip_prefix(&p), p, "{s}");
        }
        for s in ["::/0", "2001:db8::/32", "2001:db8:abcd::/48", "2001:db8::1/128"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(roundtrip_prefix(&p), p, "{s}");
        }
    }

    #[test]
    fn prefix_decode_rejects_bad_length() {
        let mut buf = BytesMut::new();
        buf.put_u8(33);
        buf.put_slice(&[10, 0, 0, 0, 0]);
        let mut bytes = buf.freeze();
        assert!(decode_prefix(&mut bytes, IpVersion::V4).is_err());
    }

    #[test]
    fn prefix_decode_rejects_truncated() {
        let mut buf = BytesMut::new();
        buf.put_u8(24);
        buf.put_slice(&[192, 0]); // one byte short
        let mut bytes = buf.freeze();
        assert!(matches!(
            decode_prefix(&mut bytes, IpVersion::V4),
            Err(MrtError::Truncated { .. })
        ));
    }

    fn sample_attrs(v6: bool) -> (PathAttributes, Prefix) {
        let mut attrs = PathAttributes::with_path("6939 2914 3333".parse().unwrap())
            .local_pref(250)
            .med(17)
            .community(Community::new(6939, 2000))
            .community(Community::new(2914, 420));
        attrs.large_communities.push(LargeCommunity::new(206924, 7, 9));
        attrs.atomic_aggregate = true;
        let prefix: Prefix = if v6 {
            attrs.next_hop = Some("2001:db8::1".parse().unwrap());
            "2001:db8:100::/40".parse().unwrap()
        } else {
            attrs.next_hop = Some("192.0.2.1".parse().unwrap());
            "198.51.100.0/24".parse().unwrap()
        };
        (attrs, prefix)
    }

    #[test]
    fn attributes_roundtrip_table_dump_v6() {
        let (attrs, prefix) = sample_attrs(true);
        let blob = encode_attributes(&attrs, &prefix, AttrContext::TableDumpV2).freeze();
        let decoded = decode_attributes(blob, AttrContext::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs, attrs);
        assert!(decoded.mp_reach_nlri.is_empty(), "table dump form carries no NLRI");
    }

    #[test]
    fn attributes_roundtrip_table_dump_v4() {
        let (attrs, prefix) = sample_attrs(false);
        let blob = encode_attributes(&attrs, &prefix, AttrContext::TableDumpV2).freeze();
        let decoded = decode_attributes(blob, AttrContext::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs, attrs);
    }

    #[test]
    fn attributes_roundtrip_update_v6_carries_nlri() {
        let (attrs, prefix) = sample_attrs(true);
        let blob = encode_attributes(&attrs, &prefix, AttrContext::Update).freeze();
        let decoded = decode_attributes(blob, AttrContext::Update).unwrap();
        assert_eq!(decoded.attrs, attrs);
        assert_eq!(decoded.mp_reach_nlri, vec![prefix]);
    }

    #[test]
    fn as_path_with_set_roundtrips() {
        let mut attrs = PathAttributes::with_path("6939 2914 {3333,112}".parse().unwrap());
        attrs.next_hop = Some("192.0.2.1".parse().unwrap());
        let prefix = v4("198.51.100.0/24");
        let blob = encode_attributes(&attrs, &prefix, AttrContext::TableDumpV2).freeze();
        let decoded = decode_attributes(blob, AttrContext::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs.as_path, attrs.as_path);
    }

    #[test]
    fn long_as_path_uses_extended_length() {
        // 200 ASNs * 4 bytes > 255 forces the extended-length attribute form.
        let asns: Vec<Asn> = (1..=200).map(Asn).collect();
        let mut attrs = PathAttributes::with_path(AsPath::from_sequence(asns));
        attrs.next_hop = Some("192.0.2.1".parse().unwrap());
        let prefix = v4("198.51.100.0/24");
        let blob = encode_attributes(&attrs, &prefix, AttrContext::TableDumpV2).freeze();
        let decoded = decode_attributes(blob, AttrContext::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs.as_path.len(), 200);
    }

    #[test]
    fn empty_attribute_blob_decodes_to_default() {
        let decoded = decode_attributes(Bytes::new(), AttrContext::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs, PathAttributes::default());
    }

    #[test]
    fn unknown_attributes_are_skipped() {
        let mut buf = BytesMut::new();
        // A fictitious optional transitive attribute type 200.
        put_attr(&mut buf, 0xC0, 200, &[1, 2, 3, 4]);
        put_attr(&mut buf, 0x40, attr_type::ORIGIN, &[0]);
        let decoded = decode_attributes(buf.freeze(), AttrContext::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs.origin, Origin::Igp);
    }

    #[test]
    fn malformed_attributes_are_rejected() {
        // ORIGIN with a 2-byte body.
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0x40, attr_type::ORIGIN, &[0, 0]);
        assert!(decode_attributes(buf.freeze(), AttrContext::TableDumpV2).is_err());

        // COMMUNITIES with a non-multiple-of-4 body.
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0xC0, attr_type::COMMUNITIES, &[0, 0, 1]);
        assert!(decode_attributes(buf.freeze(), AttrContext::TableDumpV2).is_err());

        // Truncated attribute body.
        let mut buf = BytesMut::new();
        buf.put_u8(0x40);
        buf.put_u8(attr_type::AS_PATH);
        buf.put_u8(40); // claims 40 bytes
        buf.put_slice(&[2, 1, 0, 0]); // provides 4
        assert!(matches!(
            decode_attributes(buf.freeze(), AttrContext::TableDumpV2),
            Err(MrtError::Truncated { .. })
        ));
    }

    #[test]
    fn update_roundtrip_v6() {
        let (attrs, prefix) = sample_attrs(true);
        let msg = encode_update(&attrs, &prefix).freeze();
        let update = decode_update(msg).unwrap().expect("should be an UPDATE");
        assert_eq!(update.attrs, attrs);
        assert_eq!(update.announced, vec![prefix]);
        assert!(update.withdrawn.is_empty());
    }

    #[test]
    fn update_roundtrip_v4() {
        let (attrs, prefix) = sample_attrs(false);
        let msg = encode_update(&attrs, &prefix).freeze();
        let update = decode_update(msg).unwrap().expect("should be an UPDATE");
        assert_eq!(update.attrs, attrs);
        assert_eq!(update.announced, vec![prefix]);
    }

    #[test]
    fn withdrawal_roundtrip_both_planes() {
        let prefixes: Vec<Prefix> = vec![
            "198.51.100.0/24".parse().unwrap(),
            "2001:db8:100::/40".parse().unwrap(),
            "10.0.0.0/8".parse().unwrap(),
        ];
        let msg = encode_withdrawal(&prefixes).freeze();
        let update = decode_update(msg).unwrap().expect("should be an UPDATE");
        assert!(update.announced.is_empty());
        assert_eq!(update.attrs, PathAttributes::default());
        // Classic v4 withdrawals come first, MP_UNREACH v6 ones after.
        assert_eq!(
            update.withdrawn,
            vec![
                "198.51.100.0/24".parse::<Prefix>().unwrap(),
                "10.0.0.0/8".parse().unwrap(),
                "2001:db8:100::/40".parse().unwrap(),
            ]
        );
    }

    #[test]
    fn non_update_messages_return_none() {
        // A KEEPALIVE: marker + length 19 + type 4.
        let mut msg = BytesMut::new();
        msg.put_slice(&BGP_MARKER);
        msg.put_u16(19);
        msg.put_u8(4);
        assert_eq!(decode_update(msg.freeze()).unwrap(), None);
    }

    #[test]
    fn truncated_update_is_an_error() {
        let (attrs, prefix) = sample_attrs(true);
        let msg = encode_update(&attrs, &prefix).freeze();
        let cut = msg.slice(0..msg.len() - 5);
        assert!(decode_update(cut).is_err());
    }

    #[test]
    fn next_hop_32_byte_form_keeps_global() {
        // Build an abbreviated MP_REACH with a 32-byte next hop
        // (global + link-local), as RIS dumps sometimes contain.
        let mut body = BytesMut::new();
        body.put_u8(32);
        let global: Ipv6Addr = "2001:db8::99".parse().unwrap();
        let ll: Ipv6Addr = "fe80::1".parse().unwrap();
        body.put_slice(&global.octets());
        body.put_slice(&ll.octets());
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0x80, attr_type::MP_REACH_NLRI, &body);
        let decoded = decode_attributes(buf.freeze(), AttrContext::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs.next_hop, Some(IpAddr::V6(global)));
    }
}
