//! Error type for MRT and BGP wire decoding/encoding.

use std::fmt;
use std::io;

/// Anything that can go wrong while reading or writing MRT data.
#[derive(Debug)]
pub enum MrtError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The byte stream ended in the middle of a record or field.
    Truncated {
        /// What was being decoded when the data ran out.
        context: &'static str,
        /// Bytes still needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// An MRT type/subtype combination this implementation does not handle.
    UnsupportedRecord {
        /// MRT type code.
        mrt_type: u16,
        /// MRT subtype code.
        subtype: u16,
    },
    /// A structurally invalid field value.
    Malformed {
        /// What was being decoded.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A RIB entry referenced a peer index not present in the
    /// PEER_INDEX_TABLE.
    UnknownPeerIndex(u16),
    /// A RIB record was seen before any PEER_INDEX_TABLE.
    MissingPeerIndexTable,
}

impl MrtError {
    pub(crate) fn truncated(context: &'static str, needed: usize, available: usize) -> Self {
        MrtError::Truncated { context, needed, available }
    }

    pub(crate) fn malformed(context: &'static str, detail: impl Into<String>) -> Self {
        MrtError::Malformed { context, detail: detail.into() }
    }
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
            MrtError::Truncated { context, needed, available } => write!(
                f,
                "truncated data while decoding {context}: needed {needed} bytes, had {available}"
            ),
            MrtError::UnsupportedRecord { mrt_type, subtype } => {
                write!(f, "unsupported MRT record type {mrt_type} subtype {subtype}")
            }
            MrtError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            MrtError::UnknownPeerIndex(idx) => {
                write!(f, "RIB entry references unknown peer index {idx}")
            }
            MrtError::MissingPeerIndexTable => {
                write!(f, "RIB record encountered before any PEER_INDEX_TABLE")
            }
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MrtError::truncated("header", 12, 3);
        assert!(e.to_string().contains("header"));
        assert!(e.to_string().contains("12"));
        let e = MrtError::UnsupportedRecord { mrt_type: 99, subtype: 7 };
        assert!(e.to_string().contains("99"));
        let e = MrtError::malformed("prefix", "length 200 out of range");
        assert!(e.to_string().contains("prefix"));
        assert!(MrtError::UnknownPeerIndex(5).to_string().contains('5'));
        assert!(MrtError::MissingPeerIndexTable.to_string().contains("PEER_INDEX_TABLE"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io_err = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e: MrtError = io_err.into();
        assert!(matches!(e, MrtError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&MrtError::MissingPeerIndexTable).is_none());
    }
}
