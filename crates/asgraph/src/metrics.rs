//! Plain (policy-free) graph statistics: degrees, components, distances.
//!
//! These are the sanity metrics used to validate that the synthetic
//! topologies produced by `topogen` look like the measured AS graph
//! (heavy-tailed degrees, a single giant component per plane, small
//! diameter), and to report the dataset summary of experiment E1.

use std::collections::VecDeque;

use bgp_types::{Asn, IpVersion};

use crate::graph::{AsGraph, NodeId};

/// Degree statistics for one plane.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DegreeStats {
    /// Number of ASes with at least one link on the plane.
    pub nodes: usize,
    /// Number of links on the plane.
    pub edges: usize,
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Median degree.
    pub median: usize,
}

/// Compute [`DegreeStats`] for a plane.
pub fn degree_stats(graph: &AsGraph, plane: IpVersion) -> DegreeStats {
    let mut degrees: Vec<usize> =
        graph.asns().map(|a| graph.degree(a, plane)).filter(|&d| d > 0).collect();
    degrees.sort_unstable();
    let nodes = degrees.len();
    let edges = graph.plane_edge_count(plane);
    if nodes == 0 {
        return DegreeStats::default();
    }
    DegreeStats {
        nodes,
        edges,
        mean: degrees.iter().sum::<usize>() as f64 / nodes as f64,
        max: *degrees.last().unwrap(),
        median: degrees[nodes / 2],
    }
}

/// Connected components of the plane's link graph (ignoring relationship
/// annotations), largest first. Each component is a sorted list of ASNs.
pub fn connected_components(graph: &AsGraph, plane: IpVersion) -> Vec<Vec<Asn>> {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] || graph.degree(graph.asn(NodeId(start as u32)), plane) == 0 {
            continue;
        }
        let mut queue = VecDeque::new();
        queue.push_back(NodeId(start as u32));
        seen[start] = true;
        let mut members = Vec::new();
        while let Some(node) = queue.pop_front() {
            members.push(graph.asn(node));
            for (next, _) in graph.neighbors_by_id(node, plane) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        members.sort();
        components.push(members);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Breadth-first (policy-free) distances from `root` on a plane, in hops.
pub fn bfs_distances(graph: &AsGraph, root: Asn, plane: IpVersion) -> Vec<Option<u32>> {
    let n = graph.node_count();
    let mut dist = vec![None; n];
    let Some(root_node) = graph.node(root) else { return dist };
    dist[root_node.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(root_node);
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].unwrap();
        for (next, _) in graph.neighbors_by_id(node, plane) {
            if dist[next.index()].is_none() {
                dist[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// A one-struct summary of a plane's topology, for reports and examples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphSummary {
    /// ASes present on the plane.
    pub nodes: usize,
    /// Links present on the plane.
    pub edges: usize,
    /// Links annotated with a relationship on the plane.
    pub annotated_edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

impl GraphSummary {
    /// Compute the summary for a plane.
    pub fn compute(graph: &AsGraph, plane: IpVersion) -> Self {
        let stats = degree_stats(graph, plane);
        let components = connected_components(graph, plane);
        let annotated_edges = graph.plane_edges(plane).filter(|e| e.rel(plane).is_some()).count();
        GraphSummary {
            nodes: stats.nodes,
            edges: stats.edges,
            annotated_edges,
            mean_degree: stats.mean,
            max_degree: stats.max,
            components: components.len(),
            largest_component: components.first().map(|c| c.len()).unwrap_or(0),
        }
    }

    /// Fraction of plane links carrying a relationship annotation — the
    /// "coverage" number the paper reports (72% for IPv6).
    pub fn annotation_coverage(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.annotated_edges as f64 / self.edges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Relationship;

    fn two_component_graph() -> AsGraph {
        let mut g = AsGraph::new();
        // Component A: a chain 1-2-3 on v6 (annotated) and v4.
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.observe_link(Asn(2), Asn(3), IpVersion::V6);
        g.observe_link(Asn(2), Asn(3), IpVersion::V4);
        // Component B (v6 only): 10-11.
        g.observe_link(Asn(10), Asn(11), IpVersion::V6);
        g
    }

    #[test]
    fn degree_stats_basics() {
        let g = two_component_graph();
        let v6 = degree_stats(&g, IpVersion::V6);
        assert_eq!(v6.nodes, 5);
        assert_eq!(v6.edges, 3);
        assert_eq!(v6.max, 2);
        assert!((v6.mean - 1.2).abs() < 1e-9);
        let v4 = degree_stats(&g, IpVersion::V4);
        assert_eq!(v4.nodes, 3);
        assert_eq!(v4.edges, 2);

        let empty = degree_stats(&AsGraph::new(), IpVersion::V4);
        assert_eq!(empty.nodes, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn components_are_sorted_largest_first() {
        let g = two_component_graph();
        let comps = connected_components(&g, IpVersion::V6);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![Asn(1), Asn(2), Asn(3)]);
        assert_eq!(comps[1], vec![Asn(10), Asn(11)]);
        // The v4 plane has a single component.
        assert_eq!(connected_components(&g, IpVersion::V4).len(), 1);
        assert!(connected_components(&AsGraph::new(), IpVersion::V4).is_empty());
    }

    #[test]
    fn bfs_distances_ignore_relationships() {
        let g = two_component_graph();
        let dist = bfs_distances(&g, Asn(1), IpVersion::V6);
        assert_eq!(dist[g.node(Asn(3)).unwrap().index()], Some(2));
        assert_eq!(dist[g.node(Asn(10)).unwrap().index()], None);
        let nowhere = bfs_distances(&g, Asn(404), IpVersion::V6);
        assert!(nowhere.iter().all(Option::is_none));
    }

    #[test]
    fn summary_and_coverage() {
        let g = two_component_graph();
        let s = GraphSummary::compute(&g, IpVersion::V6);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 3);
        assert_eq!(s.annotated_edges, 1);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
        assert!((s.annotation_coverage() - 1.0 / 3.0).abs() < 1e-9);
        let empty = GraphSummary::compute(&AsGraph::new(), IpVersion::V6);
        assert_eq!(empty.annotation_coverage(), 0.0);
    }
}
