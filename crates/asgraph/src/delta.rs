//! Incremental repair of valley-free distance maps under single-edge
//! relationship corrections.
//!
//! The Figure 2 correction sweep replays one relationship change at a time
//! and re-asks, for every BFS source, "what are the shortest valley-free
//! distances now?". Recomputing the full three-phase BFS per source per
//! step is the dominant cost of the sweep. This module owns a reusable
//! [`DistanceMap`] — the per-phase label array of one source — and repairs
//! it in place when a single edge's relationship changes, re-expanding a
//! frontier only over the region the change can actually affect.
//!
//! # Correctness model
//!
//! The valley-free BFS runs over the *phase-layered* graph: states are
//! `(node, phase)` with `phase ∈ {climbing, peered, descending}` and the
//! transitions of the crate's valley-free phase machine. Distances are the
//! unique minimal fixed point of the Bellman equations over that layered
//! graph, so any procedure that converges to the fixed point reproduces
//! the full recomputation *exactly* — byte-identical metrics, not merely
//! approximately equal ones.
//!
//! Changing the relationship of one edge removes some layered transitions
//! and adds others:
//!
//! * **Additions** only ever shorten distances. They are handled by
//!   relaxing the added transitions against the current labels and
//!   propagating improvements outward (monotone label decrease with a
//!   worklist), which provably converges to the new fixed point.
//! * **Removals** may lengthen distances — but only if a removed
//!   transition was actually *supporting* a label (tail label + 1 == head
//!   label). For each removed transition that is tight, the repair scans
//!   the head state's other in-transitions in the post-change graph for an
//!   alternative support at the same distance. If every tight removal has
//!   one, no label depended on the removed transitions and the old labels
//!   remain exact; otherwise the delta cannot be bounded cheaply and the
//!   repair **falls back to a full BFS** — correctness never rests on the
//!   incremental path alone.
//!
//! The fallback criterion is deliberately conservative: it may rebuild
//! when a cleverer analysis could have repaired, but it never repairs
//! when a rebuild was needed. [`DeltaOutcome`] reports which path ran so
//! callers (the sweep's `SweepCache`-style tiers, the criterion benches)
//! can count delta repairs against full rebuilds.

use bgp_types::{Asn, IpVersion, Relationship};

use crate::graph::{AsGraph, NodeId};
use crate::valley::{layered_search, phase_transition, PHASES};

/// How [`DistanceMap::apply_correction`] resolved a correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The correction provably changed no label; nothing was touched.
    Unchanged,
    /// The affected region was repaired by frontier re-expansion.
    Incremental,
    /// The delta could not be bounded; a full BFS rebuilt the map.
    FullRebuild,
}

/// What [`DistanceMap::apply_correction_with`] does when a removed
/// transition was load-bearing (tight, with no alternative support at the
/// same distance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemovalPolicy {
    /// Fall back to a full BFS — the original conservative behaviour and
    /// the default ([`DistanceMap::apply_correction`] always uses it).
    #[default]
    Rebuild,
    /// Repair in place: identify the states whose labels transitively
    /// depended on the removed transitions (in increasing old-label
    /// order, so support checks see their predecessors' final verdicts),
    /// invalidate them, and recompute exactly that region from its
    /// boundary. Still exact — only the amount of work changes.
    Repair,
}

/// A single-edge relationship correction, with the pre-change state
/// captured so the repair can diff old against new transitions.
///
/// `old` and `new` are oriented `a → b`. `old` is `None` when the edge was
/// not traversable on the plane before the correction (absent, not marked
/// present on the plane, or unannotated) — the correction is then a pure
/// addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCorrection {
    /// First endpoint.
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// The plane the correction applies to.
    pub plane: IpVersion,
    /// Effective relationship `a → b` before the correction, if the edge
    /// was traversable at all.
    pub old: Option<Relationship>,
    /// Relationship `a → b` after the correction.
    pub new: Relationship,
}

impl EdgeCorrection {
    /// Capture a correction against the *pre-change* graph: records the
    /// edge's effective old relationship (only if the link exists and is
    /// present on the plane — an annotated but plane-absent link is not
    /// traversable, so its relationship does not count as removable
    /// transitions). Call this before `graph.annotate(..)`.
    pub fn observe(graph: &AsGraph, a: Asn, b: Asn, plane: IpVersion, new: Relationship) -> Self {
        let old = if graph.has_link(a, b, plane) { graph.relationship(a, b, plane) } else { None };
        EdgeCorrection { a, b, plane, old, new }
    }
}

/// Layered transitions of one edge direction: `(from_phase, to_phase)`
/// pairs enabled by a relationship, as a fixed-size option array (at most
/// one target phase per source phase).
fn transitions_of(rel: Option<Relationship>) -> [Option<u8>; PHASES] {
    let mut out = [None; PHASES];
    if let Some(rel) = rel {
        for (phase, slot) in out.iter_mut().enumerate() {
            *slot = phase_transition(phase as u8, rel);
        }
    }
    out
}

/// A reusable valley-free distance map of one `(root, plane)` pair.
///
/// Holds the full per-phase label array of the layered BFS (not just the
/// min-over-phase view), which is exactly the state the incremental repair
/// needs to decide whether a removed transition was load-bearing.
#[derive(Debug, Clone)]
pub struct DistanceMap {
    root: Asn,
    plane: IpVersion,
    best: Vec<[u32; PHASES]>,
    out: Vec<Option<u32>>,
}

impl Default for DistanceMap {
    /// An empty map (no nodes, nothing reachable) — a placeholder for
    /// `std::mem::take`-style state shuffling, not a meaningful result.
    fn default() -> Self {
        DistanceMap { root: Asn(0), plane: IpVersion::V4, best: Vec::new(), out: Vec::new() }
    }
}

impl DistanceMap {
    /// Run the full valley-free BFS from `root` on `plane`.
    pub fn compute(graph: &AsGraph, root: Asn, plane: IpVersion) -> Self {
        let (best, out) = layered_search(graph, root, plane);
        DistanceMap { root, plane, best, out }
    }

    /// Assemble a map from pre-computed label arrays (the
    /// [`crate::arena::LabelArena`] stride copy-out). The caller vouches
    /// that `best`/`out` came from [`crate::valley::layered_search`] on
    /// `(root, plane)` against the graph it will repair from.
    pub(crate) fn from_parts(
        root: Asn,
        plane: IpVersion,
        best: Vec<[u32; PHASES]>,
        out: Vec<Option<u32>>,
    ) -> Self {
        DistanceMap { root, plane, best, out }
    }

    /// The root this map was computed from.
    pub fn root(&self) -> Asn {
        self.root
    }

    /// The plane this map was computed on.
    pub fn plane(&self) -> IpVersion {
        self.plane
    }

    /// The shortest valley-free distance to every node, indexed by
    /// [`NodeId`] index — identical to
    /// [`crate::valley::valley_free_distances`] on the current graph.
    pub fn distances(&self) -> &[Option<u32>] {
        &self.out
    }

    /// The distance to one node index (`None` = unreachable, including
    /// indices beyond the map's node range).
    pub fn distance(&self, index: usize) -> Option<u32> {
        self.out.get(index).copied().flatten()
    }

    /// Whether the node at `index` is valley-free reachable from the root.
    pub fn is_reachable(&self, index: usize) -> bool {
        self.distance(index).is_some()
    }

    /// Discard the labels and recompute them with a full BFS.
    pub fn rebuild(&mut self, graph: &AsGraph) {
        let (best, out) = layered_search(graph, self.root, self.plane);
        self.best = best;
        self.out = out;
    }

    /// Repair the map after `correction` was applied to `graph` (the graph
    /// is the *post-change* one: capture the correction with
    /// [`EdgeCorrection::observe`] first, then annotate, then repair).
    ///
    /// Whatever path is taken, the resulting labels equal a full
    /// recomputation on the post-change graph; the outcome only reports
    /// how much work that took.
    pub fn apply_correction(
        &mut self,
        graph: &AsGraph,
        correction: &EdgeCorrection,
    ) -> DeltaOutcome {
        self.apply_correction_with(graph, correction, RemovalPolicy::Rebuild)
    }

    /// [`DistanceMap::apply_correction`] with an explicit policy for
    /// load-bearing removals. `RemovalPolicy::Rebuild` reproduces
    /// `apply_correction` exactly; `RemovalPolicy::Repair` re-derives the
    /// affected region in place instead of rebuilding. Both are exact.
    pub fn apply_correction_with(
        &mut self,
        graph: &AsGraph,
        correction: &EdgeCorrection,
        policy: RemovalPolicy,
    ) -> DeltaOutcome {
        if correction.plane != self.plane {
            // A correction on the other plane cannot touch this map.
            return DeltaOutcome::Unchanged;
        }
        // Annotating can grow the graph (new endpoint ASes); the map's
        // labels are indexed per node, so a size change forces a rebuild.
        if self.best.len() != graph.node_count() {
            self.rebuild(graph);
            return DeltaOutcome::FullRebuild;
        }
        let (Some(na), Some(nb)) = (graph.node(correction.a), graph.node(correction.b)) else {
            // Endpoints absent: annotate rejected the link (self-link), so
            // the graph — and the map — are unchanged.
            return DeltaOutcome::Unchanged;
        };
        if na == nb {
            return DeltaOutcome::Unchanged;
        }

        let old_ab = transitions_of(correction.old);
        let old_ba = transitions_of(correction.old.map(Relationship::reverse));
        let new_ab = transitions_of(Some(correction.new));
        let new_ba = transitions_of(Some(correction.new.reverse()));
        if old_ab == new_ab && old_ba == new_ba {
            return DeltaOutcome::Unchanged;
        }

        // Removal safety: every removed transition that was *tight* (its
        // tail label supported its head label) must have an alternative
        // support in the post-change graph, otherwise old labels may no
        // longer be achievable and the delta is unbounded. Under
        // `RemovalPolicy::Repair` the unsupported heads become seeds for
        // an in-place repair instead of forcing a full rebuild.
        let directions = [(na, nb, &old_ab, &new_ab), (nb, na, &old_ba, &new_ba)];
        let mut removal_seeds: Vec<(u32, NodeId, u8)> = Vec::new();
        for &(u, v, old, new) in &directions {
            for phase in 0..PHASES {
                let removed = match (old[phase], new[phase]) {
                    (Some(q), nq) if nq != Some(q) => q,
                    _ => continue,
                };
                let tail = self.best[u.index()][phase];
                if tail == u32::MAX {
                    continue; // the removed transition was never usable
                }
                let head = self.best[v.index()][removed as usize];
                if head != tail.saturating_add(1) {
                    continue; // not tight: the head never leaned on it
                }
                if !self.has_support(graph, v, removed, head) {
                    match policy {
                        RemovalPolicy::Rebuild => {
                            self.rebuild(graph);
                            return DeltaOutcome::FullRebuild;
                        }
                        RemovalPolicy::Repair => removal_seeds.push((head, v, removed)),
                    }
                }
            }
        }
        let removal_repaired = !removal_seeds.is_empty();
        if removal_repaired {
            self.repair_removals(graph, removal_seeds);
        }

        // Additions only shorten labels: relax the added transitions and
        // propagate improvements. Converges to the exact new fixed point.
        let mut queue: Vec<(NodeId, u8, u32)> = Vec::new();
        for &(u, v, old, new) in &directions {
            for phase in 0..PHASES {
                let added = match (new[phase], old[phase]) {
                    (Some(q), oq) if oq != Some(q) => q,
                    _ => continue,
                };
                let tail = self.best[u.index()][phase];
                if tail == u32::MAX {
                    continue;
                }
                let dist = tail + 1;
                if dist < self.best[v.index()][added as usize] {
                    self.improve(v, added, dist);
                    queue.push((v, added, dist));
                }
            }
        }
        if queue.is_empty() {
            return if removal_repaired {
                DeltaOutcome::Incremental
            } else {
                DeltaOutcome::Unchanged
            };
        }
        // Worklist relaxation: labels only decrease and are bounded below
        // by the true distances, so processing order affects work, not the
        // result. Stale entries (already improved further) are skipped.
        while let Some((node, phase, dist)) = queue.pop() {
            if self.best[node.index()][phase as usize] < dist {
                continue;
            }
            for (next, rel) in graph.neighbors_by_id(node, self.plane) {
                let Some(rel) = rel else { continue };
                let Some(next_phase) = phase_transition(phase, rel) else { continue };
                let next_dist = dist + 1;
                if next_dist < self.best[next.index()][next_phase as usize] {
                    self.improve(next, next_phase, next_dist);
                    queue.push((next, next_phase, next_dist));
                }
            }
        }
        DeltaOutcome::Incremental
    }

    /// In-place repair after load-bearing removals, in the classic
    /// delete-then-recompute shape: first identify every state whose label
    /// transitively leaned on a removed transition (popping a min-heap in
    /// increasing old-label order, so by the time a state's support is
    /// re-checked all of its possibly-affected predecessors — which sit at
    /// strictly smaller labels — carry their final verdict), then
    /// recompute exactly that region from its boundary of intact states.
    ///
    /// `seeds` are `(old label, head node, head phase)` of removed tight
    /// transitions with no alternative support.
    fn repair_removals(&mut self, graph: &AsGraph, seeds: Vec<(u32, NodeId, u8)>) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Phase A: mark the affected region. A popped state is affected
        // iff no surviving in-transition still supports its old label;
        // marking it (label := MAX) can strip support from its old tight
        // successors, which therefore join the heap one label further out.
        let mut heap: BinaryHeap<Reverse<(u32, u32, u8)>> =
            seeds.into_iter().map(|(label, node, phase)| Reverse((label, node.0, phase))).collect();
        let mut affected_states: Vec<(NodeId, u8)> = Vec::new();
        let mut affected = vec![[false; PHASES]; self.best.len()];
        while let Some(Reverse((label, raw, phase))) = heap.pop() {
            let node = NodeId(raw);
            if self.best[node.index()][phase as usize] != label {
                continue; // already marked, or a stale duplicate
            }
            if self.has_support(graph, node, phase, label) {
                continue; // an alternative predecessor still carries it
            }
            self.best[node.index()][phase as usize] = u32::MAX;
            affected[node.index()][phase as usize] = true;
            affected_states.push((node, phase));
            for (next, rel) in graph.neighbors_by_id(node, self.plane) {
                let Some(rel) = rel else { continue };
                let Some(next_phase) = phase_transition(phase, rel) else { continue };
                if self.best[next.index()][next_phase as usize] == label + 1 {
                    heap.push(Reverse((label + 1, next.0, next_phase)));
                }
            }
        }

        // Phase B: recompute the affected states. Seed each from its
        // intact in-neighbors (the region's boundary), then relax inside
        // the region; labels only decrease and are bounded below by the
        // true post-change distances, so order affects work, not results.
        let mut queue: Vec<(NodeId, u8, u32)> = Vec::new();
        for &(node, phase) in &affected_states {
            let mut candidate = u32::MAX;
            for (w, rel) in graph.neighbors_by_id(node, self.plane) {
                let Some(rel) = rel else { continue };
                let towards_node = rel.reverse();
                for from_phase in 0..PHASES {
                    if phase_transition(from_phase as u8, towards_node) != Some(phase) {
                        continue;
                    }
                    let tail = self.best[w.index()][from_phase];
                    if tail != u32::MAX {
                        candidate = candidate.min(tail + 1);
                    }
                }
            }
            if candidate < self.best[node.index()][phase as usize] {
                self.best[node.index()][phase as usize] = candidate;
                queue.push((node, phase, candidate));
            }
        }
        while let Some((node, phase, dist)) = queue.pop() {
            if self.best[node.index()][phase as usize] < dist {
                continue;
            }
            for (next, rel) in graph.neighbors_by_id(node, self.plane) {
                let Some(rel) = rel else { continue };
                let Some(next_phase) = phase_transition(phase, rel) else { continue };
                if !affected[next.index()][next_phase as usize] {
                    continue; // intact states already hold exact labels
                }
                let next_dist = dist + 1;
                if next_dist < self.best[next.index()][next_phase as usize] {
                    self.best[next.index()][next_phase as usize] = next_dist;
                    queue.push((next, next_phase, next_dist));
                }
            }
        }

        // Removals can *raise* distances, which `improve` never does:
        // refresh the min-over-phase view of every touched node.
        let mut touched: Vec<usize> = affected_states.iter().map(|&(n, _)| n.index()).collect();
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            self.out[idx] = self.best[idx].iter().copied().filter(|&d| d != u32::MAX).min();
        }
    }

    /// Lower the label of `(node, phase)` to `dist`, keeping the
    /// min-over-phase view consistent.
    fn improve(&mut self, node: NodeId, phase: u8, dist: u32) {
        self.best[node.index()][phase as usize] = dist;
        let entry = &mut self.out[node.index()];
        if entry.is_none_or(|d| dist < d) {
            *entry = Some(dist);
        }
    }

    /// Does `(v, phase)` have an in-transition in the post-change graph
    /// whose tail label is exactly `label - 1`? (`label` is `(v, phase)`'s
    /// current label.) The root state supports itself at label 0.
    fn has_support(&self, graph: &AsGraph, v: NodeId, phase: u8, label: u32) -> bool {
        if label == 0 {
            return true; // the root's own state needs no predecessor
        }
        for (w, rel) in graph.neighbors_by_id(v, self.plane) {
            let Some(rel) = rel else { continue };
            // The in-transition travels w → v, i.e. the reverse of the
            // stored v → w orientation.
            let towards_v = rel.reverse();
            for from_phase in 0..PHASES {
                if phase_transition(from_phase as u8, towards_v) != Some(phase) {
                    continue;
                }
                let tail = self.best[w.index()][from_phase];
                if tail != u32::MAX && tail + 1 == label {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valley::valley_free_distances;

    /// Assert a map's distances equal a fresh full BFS on `graph`.
    fn assert_matches_full(map: &DistanceMap, graph: &AsGraph) {
        let full = valley_free_distances(graph, map.root(), map.plane());
        assert_eq!(map.distances(), &full[..], "root {} diverged from full BFS", map.root());
    }

    /// The misinferred topology of the impact tests: 10-20 is p2p on v6,
    /// stubs hang off both sides, a grandparent sits above 10.
    fn misinferred_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate(Asn(10), Asn(20), IpVersion::V6, Relationship::PeerToPeer);
        for (p, c) in [(9, 10), (9, 8), (10, 30), (20, 41), (20, 42), (30, 50)] {
            g.annotate(Asn(p), Asn(c), IpVersion::V6, Relationship::ProviderToCustomer);
        }
        g
    }

    #[test]
    fn distance_map_matches_valley_free_distances() {
        let g = misinferred_graph();
        for root in [9u32, 10, 20, 41, 50] {
            let map = DistanceMap::compute(&g, Asn(root), IpVersion::V6);
            assert_matches_full(&map, &g);
            assert_eq!(map.root(), Asn(root));
            assert_eq!(map.plane(), IpVersion::V6);
        }
        let root_idx = g.node(Asn(9)).unwrap().index();
        let map = DistanceMap::compute(&g, Asn(9), IpVersion::V6);
        assert_eq!(map.distance(root_idx), Some(0));
        assert!(map.is_reachable(root_idx));
        assert!(!map.is_reachable(usize::MAX >> 8), "out-of-range index is unreachable");
    }

    #[test]
    fn pure_addition_is_repaired_incrementally() {
        // Annotating a previously unannotated link only adds transitions.
        let mut g = misinferred_graph();
        g.observe_link(Asn(41), Asn(42), IpVersion::V6);
        let mut map = DistanceMap::compute(&g, Asn(41), IpVersion::V6);
        let correction =
            EdgeCorrection::observe(&g, Asn(41), Asn(42), IpVersion::V6, Relationship::PeerToPeer);
        assert_eq!(correction.old, None);
        g.annotate(Asn(41), Asn(42), IpVersion::V6, Relationship::PeerToPeer);
        let outcome = map.apply_correction(&g, &correction);
        assert_eq!(outcome, DeltaOutcome::Incremental);
        assert_matches_full(&map, &g);
    }

    #[test]
    fn correcting_p2p_to_transit_repairs_the_descending_region() {
        // The paper's canonical correction: the 10-20 peering becomes
        // p2c(v6). From 9's perspective routes may now descend through 10
        // into 20's customers — labels improve; nothing old is lost
        // because the removed (climbing → peered) crossing of 10-20 was
        // not supporting any label from 9 at a shorter distance than the
        // descending path the new relationship provides.
        let mut g = misinferred_graph();
        let mut maps: Vec<DistanceMap> = [9u32, 8, 50]
            .iter()
            .map(|&r| DistanceMap::compute(&g, Asn(r), IpVersion::V6))
            .collect();
        let correction = EdgeCorrection::observe(
            &g,
            Asn(10),
            Asn(20),
            IpVersion::V6,
            Relationship::ProviderToCustomer,
        );
        assert_eq!(correction.old, Some(Relationship::PeerToPeer));
        g.annotate(Asn(10), Asn(20), IpVersion::V6, Relationship::ProviderToCustomer);
        for map in &mut maps {
            let outcome = map.apply_correction(&g, &correction);
            assert_ne!(outcome, DeltaOutcome::Unchanged, "root {}", map.root());
            assert_matches_full(map, &g);
        }
    }

    #[test]
    fn unsupported_removal_falls_back_to_full_rebuild() {
        // A two-node graph where the only link flips from p2c to c2p: the
        // old descending label of the far node loses its only support.
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::ProviderToCustomer);
        let mut map = DistanceMap::compute(&g, Asn(1), IpVersion::V6);
        let correction = EdgeCorrection::observe(
            &g,
            Asn(1),
            Asn(2),
            IpVersion::V6,
            Relationship::CustomerToProvider,
        );
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::CustomerToProvider);
        let outcome = map.apply_correction(&g, &correction);
        assert_eq!(outcome, DeltaOutcome::FullRebuild);
        assert_matches_full(&map, &g);
    }

    #[test]
    fn untouched_region_reports_unchanged() {
        // A correction in a disconnected component cannot move any label
        // of a source on the other side, and the repair proves it without
        // re-running the BFS.
        let mut g = misinferred_graph();
        g.annotate(Asn(100), Asn(101), IpVersion::V6, Relationship::PeerToPeer);
        let mut map = DistanceMap::compute(&g, Asn(50), IpVersion::V6);
        let before = map.distances().to_vec();
        let correction = EdgeCorrection::observe(
            &g,
            Asn(100),
            Asn(101),
            IpVersion::V6,
            Relationship::ProviderToCustomer,
        );
        g.annotate(Asn(100), Asn(101), IpVersion::V6, Relationship::ProviderToCustomer);
        assert_eq!(map.apply_correction(&g, &correction), DeltaOutcome::Unchanged);
        assert_eq!(map.distances(), &before[..]);
        assert_matches_full(&map, &g);
    }

    #[test]
    fn identical_relationship_is_a_no_op() {
        let mut g = misinferred_graph();
        let mut map = DistanceMap::compute(&g, Asn(9), IpVersion::V6);
        let correction =
            EdgeCorrection::observe(&g, Asn(10), Asn(20), IpVersion::V6, Relationship::PeerToPeer);
        g.annotate(Asn(10), Asn(20), IpVersion::V6, Relationship::PeerToPeer);
        assert_eq!(map.apply_correction(&g, &correction), DeltaOutcome::Unchanged);
        assert_matches_full(&map, &g);
    }

    #[test]
    fn graph_growth_forces_a_rebuild() {
        // Annotating a link towards a brand-new AS grows the node range;
        // the map must resize via the fallback and still match.
        let mut g = misinferred_graph();
        let mut map = DistanceMap::compute(&g, Asn(9), IpVersion::V6);
        let correction = EdgeCorrection::observe(
            &g,
            Asn(50),
            Asn(60),
            IpVersion::V6,
            Relationship::ProviderToCustomer,
        );
        g.annotate(Asn(50), Asn(60), IpVersion::V6, Relationship::ProviderToCustomer);
        assert_eq!(map.apply_correction(&g, &correction), DeltaOutcome::FullRebuild);
        assert_matches_full(&map, &g);
    }

    #[test]
    fn corrections_on_the_other_plane_are_ignored() {
        let mut g = misinferred_graph();
        g.annotate(Asn(10), Asn(20), IpVersion::V4, Relationship::PeerToPeer);
        let mut map = DistanceMap::compute(&g, Asn(9), IpVersion::V6);
        let correction = EdgeCorrection::observe(
            &g,
            Asn(10),
            Asn(20),
            IpVersion::V4,
            Relationship::ProviderToCustomer,
        );
        g.annotate(Asn(10), Asn(20), IpVersion::V4, Relationship::ProviderToCustomer);
        assert_eq!(map.apply_correction(&g, &correction), DeltaOutcome::Unchanged);
        assert_matches_full(&map, &g);
    }

    #[test]
    fn repeated_corrections_stay_exact() {
        // Drive one map through a chain of flips covering additions,
        // removals with support, and fallback rebuilds.
        let mut g = misinferred_graph();
        let mut map = DistanceMap::compute(&g, Asn(8), IpVersion::V6);
        let flips = [
            (10u32, 20u32, Relationship::ProviderToCustomer),
            (9, 10, Relationship::PeerToPeer),
            (10, 20, Relationship::PeerToPeer),
            (9, 10, Relationship::ProviderToCustomer),
            (20, 41, Relationship::SiblingToSibling),
            (10, 20, Relationship::CustomerToProvider),
        ];
        for (a, b, new) in flips {
            let correction = EdgeCorrection::observe(&g, Asn(a), Asn(b), IpVersion::V6, new);
            g.annotate(Asn(a), Asn(b), IpVersion::V6, new);
            map.apply_correction(&g, &correction);
            assert_matches_full(&map, &g);
        }
    }

    #[test]
    fn repair_policy_handles_unsupported_removal_incrementally() {
        // The exact scenario that forces the default policy into a full
        // rebuild: under `Repair` the far node's orphaned label is
        // repaired in place and the result still matches a full BFS.
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::ProviderToCustomer);
        let mut map = DistanceMap::compute(&g, Asn(1), IpVersion::V6);
        let correction = EdgeCorrection::observe(
            &g,
            Asn(1),
            Asn(2),
            IpVersion::V6,
            Relationship::CustomerToProvider,
        );
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::CustomerToProvider);
        let outcome = map.apply_correction_with(&g, &correction, RemovalPolicy::Repair);
        assert_eq!(outcome, DeltaOutcome::Incremental);
        assert_matches_full(&map, &g);
    }

    #[test]
    fn repair_raises_distances_through_a_detour() {
        // 4 is reachable at distance 2 through 2 and at distance 3 through
        // the 3 → 5 detour. Flipping 2-4 to c2p strips the short support;
        // the repair must *raise* 4's distance to the detour's 3 (a
        // direction the addition worklist alone can never move).
        let mut g = AsGraph::new();
        for (p, c) in [(1u32, 2u32), (2, 4), (1, 3), (3, 5), (5, 4)] {
            g.annotate(Asn(p), Asn(c), IpVersion::V6, Relationship::ProviderToCustomer);
        }
        let mut map = DistanceMap::compute(&g, Asn(1), IpVersion::V6);
        let four = g.node(Asn(4)).unwrap().index();
        assert_eq!(map.distance(four), Some(2));
        let correction = EdgeCorrection::observe(
            &g,
            Asn(2),
            Asn(4),
            IpVersion::V6,
            Relationship::CustomerToProvider,
        );
        g.annotate(Asn(2), Asn(4), IpVersion::V6, Relationship::CustomerToProvider);
        let outcome = map.apply_correction_with(&g, &correction, RemovalPolicy::Repair);
        assert_eq!(outcome, DeltaOutcome::Incremental);
        assert_eq!(map.distance(four), Some(3));
        assert_matches_full(&map, &g);
    }

    #[test]
    fn repair_disconnects_an_orphaned_subtree() {
        // Flipping 30-50 to c2p leaves 50 with no valley-free path from 9
        // at all: the repair must mark it unreachable, not merely longer.
        let mut g = misinferred_graph();
        let mut map = DistanceMap::compute(&g, Asn(9), IpVersion::V6);
        let fifty = g.node(Asn(50)).unwrap().index();
        assert!(map.is_reachable(fifty));
        let correction = EdgeCorrection::observe(
            &g,
            Asn(30),
            Asn(50),
            IpVersion::V6,
            Relationship::CustomerToProvider,
        );
        g.annotate(Asn(30), Asn(50), IpVersion::V6, Relationship::CustomerToProvider);
        let outcome = map.apply_correction_with(&g, &correction, RemovalPolicy::Repair);
        assert_eq!(outcome, DeltaOutcome::Incremental);
        assert!(!map.is_reachable(fifty));
        assert_matches_full(&map, &g);
    }

    #[test]
    fn repair_policy_never_rebuilds_on_a_correction_chain() {
        // The same flip chain as `repeated_corrections_stay_exact`, driven
        // through `Repair`: without graph growth the policy never falls
        // back to a rebuild, and every step still matches a full BFS.
        for root in [8u32, 9, 50] {
            let mut g = misinferred_graph();
            let mut map = DistanceMap::compute(&g, Asn(root), IpVersion::V6);
            let flips = [
                (10u32, 20u32, Relationship::ProviderToCustomer),
                (9, 10, Relationship::PeerToPeer),
                (10, 20, Relationship::PeerToPeer),
                (9, 10, Relationship::ProviderToCustomer),
                (20, 41, Relationship::SiblingToSibling),
                (10, 20, Relationship::CustomerToProvider),
            ];
            for (a, b, new) in flips {
                let correction = EdgeCorrection::observe(&g, Asn(a), Asn(b), IpVersion::V6, new);
                g.annotate(Asn(a), Asn(b), IpVersion::V6, new);
                let outcome = map.apply_correction_with(&g, &correction, RemovalPolicy::Repair);
                assert_ne!(outcome, DeltaOutcome::FullRebuild, "root {root}, flip {a}-{b}");
                assert_matches_full(&map, &g);
            }
        }
    }
}
