//! Arena-backed flat storage for resident snapshots.
//!
//! A resident service keeps one scenario's analysis products alive for
//! millions of queries, so the storage goals flip relative to the
//! build-once pipeline: a snapshot should be a handful of large contiguous
//! allocations (cheap to share behind an `Arc`, friendly to the allocator
//! and the cache) rather than thousands of small per-origin vectors. This
//! module owns the two flatteners the PR 7 CSR work left open:
//!
//! * [`SliceArena`] — variable-length slices of `T` packed into one data
//!   vector, addressed by dense `u32` ids. Used for per-origin RIB path
//!   storage (each observed AS path becomes one slice).
//! * [`LabelArena`] — the full three-phase BFS label arrays of a fixed
//!   set of hot roots, flattened into two vectors. A point query for a hot
//!   root materialises its [`DistanceMap`] by copying one stride out of
//!   the arena instead of re-running the layered BFS.
//!
//! Both report `heap_bytes()` so the service's `memory_footprint()` gauge
//! can break a snapshot down per component.

use std::mem::size_of;

use bgp_types::{Asn, IpVersion};

use crate::delta::DistanceMap;
use crate::graph::AsGraph;
use crate::valley::{layered_search, PHASES};

/// Variable-length slices packed into one contiguous allocation, addressed
/// by dense `u32` ids in push order.
///
/// `offsets` has one entry per slice plus a trailing sentinel, so slice
/// `i` lives at `data[offsets[i]..offsets[i + 1]]` — the same layout the
/// frozen CSR core uses for adjacency.
#[derive(Debug, Clone, Default)]
pub struct SliceArena<T> {
    data: Vec<T>,
    offsets: Vec<u32>,
}

impl<T: Clone> SliceArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        SliceArena { data: Vec::new(), offsets: vec![0] }
    }

    /// Append one slice, returning its dense id (ids count up from 0 in
    /// push order).
    ///
    /// # Panics
    ///
    /// Panics if the packed data would exceed `u32::MAX` items — arenas
    /// index with `u32` by design, like the CSR core.
    pub fn push(&mut self, items: &[T]) -> u32 {
        let id = u32::try_from(self.len()).expect("SliceArena id exceeds u32 range");
        self.data.extend_from_slice(items);
        self.offsets
            .push(u32::try_from(self.data.len()).expect("SliceArena offset exceeds u32 range"));
        id
    }

    /// The slice stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: u32) -> &[T] {
        let i = id as usize;
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of slices stored.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no slice has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total items across all slices.
    pub fn total_items(&self) -> usize {
        self.data.len()
    }

    /// Iterate over all slices in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[T]> + '_ {
        (0..self.len()).map(move |i| self.get(i as u32))
    }

    /// Release over-allocated capacity; a resident snapshot calls this
    /// once after assembly so the reported bytes match what stays live.
    pub fn shrink_to_fit(&mut self) {
        self.data.shrink_to_fit();
        self.offsets.shrink_to_fit();
    }

    /// Estimated heap bytes held by the arena.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * size_of::<T>() + self.offsets.capacity() * size_of::<u32>()
    }
}

/// Sentinel for "unreachable" in the flattened label arrays (the layered
/// BFS already uses `u32::MAX` internally for unlabelled states).
const UNREACHABLE: u32 = u32::MAX;

/// Precomputed three-phase BFS labels for a fixed set of hot roots on one
/// plane, flattened into two contiguous vectors.
///
/// Layout: root stride `r` (position of the root in the sorted `roots`
/// list) owns `best[r * nodes * PHASES..][..nodes * PHASES]` and
/// `out[r * nodes..][..nodes]`, both indexed by [`crate::graph::NodeId`]
/// index. [`LabelArena::distance_map`] copies one stride back out into a
/// mutable [`DistanceMap`], which is exactly the state the delta engine
/// needs to answer a what-if correction without a fresh BFS.
#[derive(Debug, Clone)]
pub struct LabelArena {
    plane: IpVersion,
    nodes: usize,
    roots: Vec<Asn>,
    best: Vec<u32>,
    out: Vec<u32>,
}

impl LabelArena {
    /// Run the layered BFS for each of `roots` (sorted, deduped, roots
    /// absent from the graph dropped) and flatten the labels.
    pub fn build(graph: &AsGraph, plane: IpVersion, roots: &[Asn]) -> Self {
        let mut roots: Vec<Asn> = roots.iter().copied().filter(|&r| graph.contains(r)).collect();
        roots.sort_unstable();
        roots.dedup();
        let nodes = graph.node_count();
        let mut best = Vec::with_capacity(roots.len() * nodes * PHASES);
        let mut out = Vec::with_capacity(roots.len() * nodes);
        for &root in &roots {
            let (b, o) = layered_search(graph, root, plane);
            for labels in &b {
                best.extend_from_slice(labels);
            }
            out.extend(o.iter().map(|d| d.unwrap_or(UNREACHABLE)));
        }
        LabelArena { plane, nodes, roots, best, out }
    }

    /// The plane the labels were computed on.
    pub fn plane(&self) -> IpVersion {
        self.plane
    }

    /// The precomputed roots, sorted ascending.
    pub fn roots(&self) -> &[Asn] {
        &self.roots
    }

    /// Whether `root` has a precomputed stride.
    pub fn contains(&self, root: Asn) -> bool {
        self.roots.binary_search(&root).is_ok()
    }

    /// The min-over-phase distance from `root` to the node at `index`
    /// (`None` when the root is not precomputed or the node unreachable).
    pub fn distance(&self, root: Asn, index: usize) -> Option<u32> {
        let r = self.roots.binary_search(&root).ok()?;
        if index >= self.nodes {
            return None;
        }
        let d = self.out[r * self.nodes + index];
        (d != UNREACHABLE).then_some(d)
    }

    /// Materialise a mutable [`DistanceMap`] for `root` by copying its
    /// stride out of the arena — byte-identical to
    /// [`DistanceMap::compute`] on the same graph, without the BFS.
    pub fn distance_map(&self, root: Asn) -> Option<DistanceMap> {
        let r = self.roots.binary_search(&root).ok()?;
        let best = self.best[r * self.nodes * PHASES..][..self.nodes * PHASES]
            .chunks_exact(PHASES)
            .map(|c| [c[0], c[1], c[2]])
            .collect();
        let out = self.out[r * self.nodes..][..self.nodes]
            .iter()
            .map(|&d| (d != UNREACHABLE).then_some(d))
            .collect();
        Some(DistanceMap::from_parts(root, self.plane, best, out))
    }

    /// Estimated heap bytes held by the arena.
    pub fn heap_bytes(&self) -> usize {
        self.roots.capacity() * size_of::<Asn>()
            + self.best.capacity() * size_of::<u32>()
            + self.out.capacity() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use bgp_types::Relationship;

    use super::*;

    fn sample_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(3), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(4), Relationship::PeerToPeer);
        g.annotate(Asn(4), Asn(5), IpVersion::V6, Relationship::ProviderToCustomer);
        g
    }

    #[test]
    fn slice_arena_round_trips_slices() {
        let mut arena = SliceArena::new();
        assert!(arena.is_empty());
        let a = arena.push(&[1u32, 2, 3]);
        let b = arena.push(&[]);
        let c = arena.push(&[9]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(arena.get(0), &[1, 2, 3]);
        assert_eq!(arena.get(1), &[] as &[u32]);
        assert_eq!(arena.get(2), &[9]);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.total_items(), 4);
        let collected: Vec<&[u32]> = arena.iter().collect();
        assert_eq!(collected.len(), 3);
        arena.shrink_to_fit();
        assert!(arena.heap_bytes() >= 4 * size_of::<u32>() + 4 * size_of::<u32>());
    }

    #[test]
    fn label_arena_matches_fresh_compute() {
        let g = sample_graph();
        let arena = LabelArena::build(&g, IpVersion::V6, &[Asn(1), Asn(4), Asn(4), Asn(99)]);
        assert_eq!(arena.roots(), &[Asn(1), Asn(4)], "sorted, deduped, absent roots dropped");
        for &root in arena.roots() {
            let fresh = DistanceMap::compute(&g, root, IpVersion::V6);
            let cached = arena.distance_map(root).expect("root is precomputed");
            assert_eq!(cached.distances(), fresh.distances());
            for idx in 0..g.node_count() {
                assert_eq!(arena.distance(root, idx), fresh.distance(idx));
            }
        }
        assert!(arena.distance_map(Asn(99)).is_none());
        assert!(!arena.contains(Asn(99)));
        assert!(arena.heap_bytes() > 0);
    }

    #[test]
    fn label_arena_stride_supports_delta_repair() {
        use crate::delta::{EdgeCorrection, RemovalPolicy};
        let mut g = sample_graph();
        let arena = LabelArena::build(&g, IpVersion::V4, &[Asn(1)]);
        let mut cached = arena.distance_map(Asn(1)).expect("root precomputed");
        let c = EdgeCorrection::observe(
            &g,
            Asn(2),
            Asn(4),
            IpVersion::V4,
            Relationship::ProviderToCustomer,
        );
        g.annotate(Asn(2), Asn(4), IpVersion::V4, Relationship::ProviderToCustomer);
        cached.apply_correction_with(&g, &c, RemovalPolicy::Repair);
        let fresh = DistanceMap::compute(&g, Asn(1), IpVersion::V4);
        assert_eq!(cached.distances(), fresh.distances());
    }
}
