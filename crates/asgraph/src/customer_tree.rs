//! Customer trees and cones, and the tree-union path metrics of Figure 2.
//!
//! The *customer tree* of an AS (the paper's terminology, after
//! Dimitropoulos et al.) is the set of ASes the root can reach by
//! descending provider-to-customer links only. It captures "everything the
//! AS sells transit towards". Misclassifying a single p2p link as p2c (or
//! vice versa) can radically change a tree, which is exactly the
//! sensitivity the paper demonstrates in Figures 1 and 2.

use std::collections::VecDeque;

use bgp_types::{Asn, IpVersion, Relationship};

use crate::graph::{AsGraph, NodeId};
use crate::valley::valley_free_distances;

/// The customer tree of `root` on the given plane: every AS reachable from
/// `root` by following only p2c links downward. The root itself is *not*
/// included. Sibling links are treated as transparent (they join
/// organisations, not customers), matching the transit semantics used by
/// the valley-free traversal.
pub fn customer_tree(graph: &AsGraph, root: Asn, plane: IpVersion) -> Vec<Asn> {
    let Some(root_node) = graph.node(root) else { return Vec::new() };
    let mut visited = vec![false; graph.node_count()];
    visited[root_node.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(root_node);
    let mut members = Vec::new();
    while let Some(node) = queue.pop_front() {
        for (next, rel) in graph.neighbors_by_id(node, plane) {
            let descend = matches!(
                rel,
                Some(Relationship::ProviderToCustomer) | Some(Relationship::SiblingToSibling)
            );
            if descend && !visited[next.index()] {
                visited[next.index()] = true;
                // Sibling hops extend the search but only customer hops
                // put the neighbor in the tree; a sibling of the root is
                // not the root's customer.
                if rel == Some(Relationship::ProviderToCustomer) {
                    members.push(graph.asn(next));
                }
                queue.push_back(next);
            }
        }
    }
    members.sort();
    members
}

/// The size of every AS's customer tree (customer cone, in CAIDA terms) on
/// the given plane, as `(asn, size)` pairs sorted by descending size.
pub fn customer_cone_sizes(graph: &AsGraph, plane: IpVersion) -> Vec<(Asn, usize)> {
    let mut sizes: Vec<(Asn, usize)> =
        graph.asns().map(|asn| (asn, customer_tree(graph, asn, plane).len())).collect();
    sizes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    sizes
}

/// The union of all non-empty customer trees on a plane, including the
/// roots of those trees. This is the node set over which the Figure 2
/// metrics are computed.
pub fn customer_tree_union(graph: &AsGraph, plane: IpVersion) -> Vec<Asn> {
    let mut in_union = vec![false; graph.node_count()];
    for asn in graph.asns() {
        let tree = customer_tree(graph, asn, plane);
        if tree.is_empty() {
            continue;
        }
        in_union[graph.node(asn).unwrap().index()] = true;
        for member in tree {
            in_union[graph.node(member).unwrap().index()] = true;
        }
    }
    (0..graph.node_count()).filter(|&i| in_union[i]).map(|i| graph.asn(NodeId(i as u32))).collect()
}

/// Path-length metrics over the union of customer trees: the mean and the
/// maximum (diameter) of the shortest valley-free path lengths between
/// reachable ordered pairs of union members.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TreeMetrics {
    /// Number of ASes in the union of customer trees.
    pub union_size: usize,
    /// Mean shortest valley-free path length over reachable ordered pairs.
    pub avg_path_length: f64,
    /// Maximum shortest valley-free path length (the diameter).
    pub diameter: u32,
    /// Ordered pairs with a valley-free path between them.
    pub reachable_pairs: u64,
    /// Ordered pairs with no valley-free path (the valley-free partition
    /// the paper mentions shows up here).
    pub unreachable_pairs: u64,
}

impl TreeMetrics {
    /// Fraction of ordered pairs that are valley-free reachable.
    pub fn reachability(&self) -> f64 {
        let total = self.reachable_pairs + self.unreachable_pairs;
        if total == 0 {
            0.0
        } else {
            self.reachable_pairs as f64 / total as f64
        }
    }
}

/// Compute [`TreeMetrics`] on the given plane.
///
/// `source_cap` bounds how many union members are used as path sources
/// (targets are always the full union); `None` uses every member. Sources
/// are taken in ascending ASN order so results are deterministic. The
/// paper's own metric is the full all-pairs computation; the cap exists so
/// large synthetic topologies stay tractable inside unit tests.
pub fn tree_union_metrics(
    graph: &AsGraph,
    plane: IpVersion,
    source_cap: Option<usize>,
) -> TreeMetrics {
    let mut union = customer_tree_union(graph, plane);
    union.sort();
    let union_size = union.len();
    if union_size < 2 {
        return TreeMetrics { union_size, ..Default::default() };
    }
    let in_union: Vec<bool> = {
        let mut v = vec![false; graph.node_count()];
        for asn in &union {
            v[graph.node(*asn).unwrap().index()] = true;
        }
        v
    };
    let sources: Vec<Asn> = match source_cap {
        Some(cap) if cap < union.len() => union.iter().copied().take(cap).collect(),
        _ => union.clone(),
    };

    let mut sum = 0u64;
    let mut reachable = 0u64;
    let mut unreachable = 0u64;
    let mut diameter = 0u32;
    for &src in &sources {
        let dist = valley_free_distances(graph, src, plane);
        let src_idx = graph.node(src).unwrap().index();
        for (idx, d) in dist.iter().enumerate() {
            if idx == src_idx || !in_union[idx] {
                continue;
            }
            match d {
                Some(d) => {
                    sum += *d as u64;
                    reachable += 1;
                    diameter = diameter.max(*d);
                }
                None => unreachable += 1,
            }
        }
    }
    let avg = if reachable == 0 { 0.0 } else { sum as f64 / reachable as f64 };
    TreeMetrics {
        union_size,
        avg_path_length: avg,
        diameter,
        reachable_pairs: reachable,
        unreachable_pairs: unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 topology from the paper: five ASes where AS1-AS2 is
    /// either p2c (a) or p2p (b), AS1-AS3 is p2c, AS2-AS4 and AS2-AS5 are
    /// p2c.
    fn figure1(link_1_2: Relationship) -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), link_1_2);
        g.annotate_both(Asn(1), Asn(3), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(4), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(5), Relationship::ProviderToCustomer);
        g
    }

    #[test]
    fn figure1_p2c_tree_contains_everything() {
        // Figure 1(a): when 1-2 is p2c, AS1's customer tree is {2,3,4,5}.
        let g = figure1(Relationship::ProviderToCustomer);
        assert_eq!(customer_tree(&g, Asn(1), IpVersion::V6), vec![Asn(2), Asn(3), Asn(4), Asn(5)]);
    }

    #[test]
    fn figure1_p2p_tree_shrinks_to_as3() {
        // Figure 1(b): when 1-2 is p2p, AS1 can only reach AS3 via p2c.
        let g = figure1(Relationship::PeerToPeer);
        assert_eq!(customer_tree(&g, Asn(1), IpVersion::V6), vec![Asn(3)]);
        // AS2's own tree is unaffected.
        assert_eq!(customer_tree(&g, Asn(2), IpVersion::V6), vec![Asn(4), Asn(5)]);
    }

    #[test]
    fn customer_tree_is_per_plane() {
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V4, Relationship::PeerToPeer);
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::ProviderToCustomer);
        assert!(customer_tree(&g, Asn(1), IpVersion::V4).is_empty());
        assert_eq!(customer_tree(&g, Asn(1), IpVersion::V6), vec![Asn(2)]);
    }

    #[test]
    fn customer_tree_of_unknown_or_stub_as_is_empty() {
        let g = figure1(Relationship::ProviderToCustomer);
        assert!(customer_tree(&g, Asn(999), IpVersion::V6).is_empty());
        assert!(customer_tree(&g, Asn(4), IpVersion::V6).is_empty());
    }

    #[test]
    fn sibling_links_bridge_but_do_not_count() {
        // 1 --s2s-- 2, 2 --p2c--> 3: 3 is in 1's tree (via the sibling), 2 is not.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::SiblingToSibling);
        g.annotate_both(Asn(2), Asn(3), Relationship::ProviderToCustomer);
        assert_eq!(customer_tree(&g, Asn(1), IpVersion::V4), vec![Asn(3)]);
    }

    #[test]
    fn customer_tree_handles_cycles_in_annotation() {
        // A (bogus but possible) p2c cycle must terminate.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(3), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(3), Asn(1), Relationship::ProviderToCustomer);
        assert_eq!(customer_tree(&g, Asn(1), IpVersion::V4), vec![Asn(2), Asn(3)]);
    }

    #[test]
    fn cone_sizes_are_sorted_descending() {
        let g = figure1(Relationship::ProviderToCustomer);
        let sizes = customer_cone_sizes(&g, IpVersion::V6);
        assert_eq!(sizes[0], (Asn(1), 4));
        assert_eq!(sizes[1], (Asn(2), 2));
        assert_eq!(sizes.iter().filter(|(_, s)| *s == 0).count(), 3);
    }

    #[test]
    fn union_contains_roots_and_members() {
        let g = figure1(Relationship::PeerToPeer);
        let mut union = customer_tree_union(&g, IpVersion::V6);
        union.sort();
        // Trees: 1 -> {3}, 2 -> {4,5}; union = {1,2,3,4,5}.
        assert_eq!(union, vec![Asn(1), Asn(2), Asn(3), Asn(4), Asn(5)]);
    }

    /// Figure 1 extended with a provider above AS1 (AS9) and a second
    /// customer of that provider (AS8), so that routes *descend into* AS1
    /// before crossing the 1-2 link. Only then does the p2c/p2p nature of
    /// 1-2 affect valley-free reachability.
    fn figure1_extended(link_1_2: Relationship) -> AsGraph {
        let mut g = figure1(link_1_2);
        g.annotate_both(Asn(9), Asn(1), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(9), Asn(8), Relationship::ProviderToCustomer);
        g
    }

    #[test]
    fn metrics_shrink_when_relationship_is_corrected_to_transit() {
        // This is the Figure 2 effect in miniature: flipping the 1-2 link
        // from (misinferred) p2p to (actual) p2c shortens valley-free paths
        // across the union and removes unreachable pairs, because routes
        // that descend through AS1 may then continue down into AS2's
        // customer tree.
        let peer =
            tree_union_metrics(&figure1_extended(Relationship::PeerToPeer), IpVersion::V6, None);
        let transit = tree_union_metrics(
            &figure1_extended(Relationship::ProviderToCustomer),
            IpVersion::V6,
            None,
        );
        assert_eq!(peer.union_size, 7);
        assert_eq!(transit.union_size, 7);
        // With 1-2 as p2p, AS8 and AS9 cannot reach AS2/AS4/AS5 valley-free.
        assert!(peer.unreachable_pairs > 0);
        assert_eq!(transit.unreachable_pairs, 0);
        assert!(transit.reachability() > peer.reachability());
        // Pairs that were unreachable under the p2p misinference become
        // reachable (at 4 hops: 8-9-1-2-4), so the transit diameter covers
        // the whole union while the p2p one only covers a fragment.
        assert_eq!(transit.diameter, 4);
        assert_eq!(peer.diameter, 3);
        assert!(transit.avg_path_length > 0.0 && peer.avg_path_length > 0.0);
    }

    #[test]
    fn metrics_on_trivial_graphs() {
        let g = AsGraph::new();
        let m = tree_union_metrics(&g, IpVersion::V6, None);
        assert_eq!(m.union_size, 0);
        assert_eq!(m.avg_path_length, 0.0);
        assert_eq!(m.reachability(), 0.0);

        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        let m = tree_union_metrics(&g, IpVersion::V6, None);
        assert_eq!(m.union_size, 2);
        assert_eq!(m.diameter, 1);
        assert_eq!(m.avg_path_length, 1.0);
        assert_eq!(m.reachable_pairs, 2);
        assert_eq!(m.unreachable_pairs, 0);
    }

    #[test]
    fn source_cap_limits_work_but_not_targets() {
        let g = figure1(Relationship::ProviderToCustomer);
        let full = tree_union_metrics(&g, IpVersion::V6, None);
        let capped = tree_union_metrics(&g, IpVersion::V6, Some(2));
        assert_eq!(full.union_size, capped.union_size);
        assert!(capped.reachable_pairs <= full.reachable_pairs);
        assert!(capped.reachable_pairs > 0);
    }
}
