//! A coarse tier classification of ASes (tier-1 / tier-2 / stub).
//!
//! The paper observes that hybrid relationships "usually happen among
//! tier-1 or tier-2 ASes with large numbers of connections". To reproduce
//! that observation we need a tier label per AS; the classification here
//! follows the usual structural definition:
//!
//! * **Tier-1** — an AS with customers but no providers (it does not buy
//!   transit from anyone on that plane).
//! * **Tier-2** — an AS with both customers and at least one provider
//!   (a transit provider that still buys transit).
//! * **Stub** — an AS with no customers (the leaves of the hierarchy).
//!
//! ASes whose links are entirely unannotated fall back to a degree-based
//! guess so the classification is total.

use std::collections::HashMap;

use bgp_types::{Asn, IpVersion};

use crate::graph::AsGraph;

/// The tier of an AS on one plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Transit-free AS: has customers, buys from no one.
    Tier1,
    /// Transit AS that also buys transit.
    Tier2,
    /// No customers.
    Stub,
}

impl Tier {
    /// Short display label.
    pub const fn label(self) -> &'static str {
        match self {
            Tier::Tier1 => "tier-1",
            Tier::Tier2 => "tier-2",
            Tier::Stub => "stub",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The tier of every AS on one plane.
pub type TierMap = HashMap<Asn, Tier>;

/// Degree threshold above which an unannotated AS is guessed to be a
/// transit provider rather than a stub.
const UNANNOTATED_TRANSIT_DEGREE: usize = 20;

/// Classify every AS present on the given plane.
pub fn classify_tiers(graph: &AsGraph, plane: IpVersion) -> TierMap {
    let mut map = TierMap::new();
    for asn in graph.asns() {
        if graph.degree(asn, plane) == 0 {
            continue; // not present on this plane
        }
        let customers = graph.customer_degree(asn, plane);
        let providers = graph.provider_degree(asn, plane);
        let peers = graph.peer_degree(asn, plane);
        let annotated = customers + providers + peers;
        let tier = if annotated == 0 {
            // No relationship information at all: guess by degree.
            if graph.degree(asn, plane) >= UNANNOTATED_TRANSIT_DEGREE {
                Tier::Tier2
            } else {
                Tier::Stub
            }
        } else if customers > 0 && providers == 0 {
            Tier::Tier1
        } else if customers > 0 {
            Tier::Tier2
        } else {
            Tier::Stub
        };
        map.insert(asn, tier);
    }
    map
}

/// Summary counts per tier, convenient for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCounts {
    /// Number of tier-1 ASes.
    pub tier1: usize,
    /// Number of tier-2 ASes.
    pub tier2: usize,
    /// Number of stub ASes.
    pub stubs: usize,
}

impl TierCounts {
    /// Count the tiers in a [`TierMap`].
    pub fn from_map(map: &TierMap) -> Self {
        let mut counts = TierCounts::default();
        for tier in map.values() {
            match tier {
                Tier::Tier1 => counts.tier1 += 1,
                Tier::Tier2 => counts.tier2 += 1,
                Tier::Stub => counts.stubs += 1,
            }
        }
        counts
    }

    /// Total classified ASes.
    pub fn total(&self) -> usize {
        self.tier1 + self.tier2 + self.stubs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Relationship;

    fn hierarchy() -> AsGraph {
        let mut g = AsGraph::new();
        // Two tier-1s peering with each other.
        g.annotate_both(Asn(10), Asn(20), Relationship::PeerToPeer);
        // Tier-2s buying from the tier-1s.
        g.annotate_both(Asn(10), Asn(100), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(20), Asn(200), Relationship::ProviderToCustomer);
        // Stubs buying from the tier-2s.
        g.annotate_both(Asn(100), Asn(1000), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(200), Asn(2000), Relationship::ProviderToCustomer);
        g
    }

    #[test]
    fn hierarchy_is_classified_correctly() {
        let g = hierarchy();
        let tiers = classify_tiers(&g, IpVersion::V6);
        assert_eq!(tiers[&Asn(10)], Tier::Tier1);
        assert_eq!(tiers[&Asn(20)], Tier::Tier1);
        assert_eq!(tiers[&Asn(100)], Tier::Tier2);
        assert_eq!(tiers[&Asn(200)], Tier::Tier2);
        assert_eq!(tiers[&Asn(1000)], Tier::Stub);
        assert_eq!(tiers[&Asn(2000)], Tier::Stub);
    }

    #[test]
    fn counts_and_labels() {
        let g = hierarchy();
        let tiers = classify_tiers(&g, IpVersion::V6);
        let counts = TierCounts::from_map(&tiers);
        assert_eq!(counts, TierCounts { tier1: 2, tier2: 2, stubs: 2 });
        assert_eq!(counts.total(), 6);
        assert_eq!(Tier::Tier1.to_string(), "tier-1");
        assert_eq!(Tier::Tier2.label(), "tier-2");
        assert_eq!(Tier::Stub.label(), "stub");
    }

    #[test]
    fn absent_plane_means_absent_from_map() {
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V4, Relationship::ProviderToCustomer);
        let v6 = classify_tiers(&g, IpVersion::V6);
        assert!(v6.is_empty());
        let v4 = classify_tiers(&g, IpVersion::V4);
        assert_eq!(v4.len(), 2);
    }

    #[test]
    fn peer_only_as_is_a_stub() {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::PeerToPeer);
        let tiers = classify_tiers(&g, IpVersion::V4);
        assert_eq!(tiers[&Asn(1)], Tier::Stub);
        assert_eq!(tiers[&Asn(2)], Tier::Stub);
    }

    #[test]
    fn unannotated_as_is_guessed_by_degree() {
        let mut g = AsGraph::new();
        // A hub with 25 unannotated links and a leaf with one.
        for i in 0..25u32 {
            g.observe_link(Asn(500), Asn(1000 + i), IpVersion::V6);
        }
        let tiers = classify_tiers(&g, IpVersion::V6);
        assert_eq!(tiers[&Asn(500)], Tier::Tier2);
        assert_eq!(tiers[&Asn(1000)], Tier::Stub);
    }

    #[test]
    fn sibling_only_core_still_classifies() {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::SiblingToSibling);
        g.annotate_both(Asn(1), Asn(3), Relationship::ProviderToCustomer);
        let tiers = classify_tiers(&g, IpVersion::V4);
        assert_eq!(tiers[&Asn(1)], Tier::Tier1);
        assert_eq!(tiers[&Asn(2)], Tier::Stub);
    }
}
