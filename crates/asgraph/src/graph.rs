//! The annotated AS-level graph.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bgp_types::{Asn, IpVersion, Relationship};

/// Dense node identifier inside one [`AsGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense edge identifier inside one [`AsGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The index as a usize, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-plane state of one undirected AS link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct PlaneEdge {
    /// The link was observed carrying routes of this plane.
    present: bool,
    /// Relationship oriented from the edge's canonical `a` endpoint to its
    /// `b` endpoint, if known.
    rel: Option<Relationship>,
}

/// One undirected AS link with its per-plane annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    a: NodeId,
    b: NodeId,
    planes: [PlaneEdge; 2],
}

fn plane_index(v: IpVersion) -> usize {
    match v {
        IpVersion::V4 => 0,
        IpVersion::V6 => 1,
    }
}

/// A read-only view of one edge, with endpoints as ASNs and the
/// relationship oriented from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeView {
    /// First endpoint.
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// Whether the link carries IPv4 routes.
    pub present_v4: bool,
    /// Whether the link carries IPv6 routes.
    pub present_v6: bool,
    /// IPv4 relationship oriented `a → b`, if annotated.
    pub rel_v4: Option<Relationship>,
    /// IPv6 relationship oriented `a → b`, if annotated.
    pub rel_v6: Option<Relationship>,
}

impl EdgeView {
    /// The relationship on the requested plane, oriented `a → b`.
    pub fn rel(&self, plane: IpVersion) -> Option<Relationship> {
        match plane {
            IpVersion::V4 => self.rel_v4,
            IpVersion::V6 => self.rel_v6,
        }
    }

    /// Whether the link is present on the requested plane.
    pub fn present(&self, plane: IpVersion) -> bool {
        match plane {
            IpVersion::V4 => self.present_v4,
            IpVersion::V6 => self.present_v6,
        }
    }

    /// True when the link is present on both planes.
    pub fn is_dual_stack(&self) -> bool {
        self.present_v4 && self.present_v6
    }

    /// True when both planes are annotated and the relationships differ —
    /// the paper's hybrid condition.
    pub fn is_hybrid(&self) -> bool {
        matches!((self.rel_v4, self.rel_v6), (Some(r4), Some(r6)) if r4 != r6)
    }
}

/// An undirected AS-level multigraph-free graph where every link carries
/// independent IPv4 and IPv6 presence flags and relationship annotations.
///
/// All mutating methods are idempotent: adding a node or link that already
/// exists returns the existing id.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    asn_to_node: HashMap<Asn, NodeId>,
    node_to_asn: Vec<Asn>,
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<Edge>,
    edge_lookup: HashMap<(NodeId, NodeId), EdgeId>,
}

impl AsGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ASes.
    pub fn node_count(&self) -> usize {
        self.node_to_asn.len()
    }

    /// Number of links, regardless of plane.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of links present on the given plane.
    pub fn plane_edge_count(&self, plane: IpVersion) -> usize {
        let idx = plane_index(plane);
        self.edges.iter().filter(|e| e.planes[idx].present).count()
    }

    /// Add (or look up) a node for an ASN.
    pub fn add_node(&mut self, asn: Asn) -> NodeId {
        if let Some(&id) = self.asn_to_node.get(&asn) {
            return id;
        }
        let id = NodeId(self.node_to_asn.len() as u32);
        self.asn_to_node.insert(asn, id);
        self.node_to_asn.push(asn);
        self.adjacency.push(Vec::new());
        id
    }

    /// The node id of an ASN, if present.
    pub fn node(&self, asn: Asn) -> Option<NodeId> {
        self.asn_to_node.get(&asn).copied()
    }

    /// The ASN of a node id.
    pub fn asn(&self, node: NodeId) -> Asn {
        self.node_to_asn[node.index()]
    }

    /// True if the AS is in the graph.
    pub fn contains(&self, asn: Asn) -> bool {
        self.asn_to_node.contains_key(&asn)
    }

    /// All ASNs, in insertion order.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.node_to_asn.iter().copied()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_to_asn.len() as u32).map(NodeId)
    }

    fn canonical(&self, x: NodeId, y: NodeId) -> (NodeId, NodeId, bool) {
        if x.0 <= y.0 {
            (x, y, false)
        } else {
            (y, x, true)
        }
    }

    /// Add (or look up) the undirected link between two ASes, without
    /// marking it present on any plane. Self-links are rejected.
    pub fn add_link(&mut self, a: Asn, b: Asn) -> Option<EdgeId> {
        if a == b {
            return None;
        }
        let na = self.add_node(a);
        let nb = self.add_node(b);
        let (lo, hi, _) = self.canonical(na, nb);
        if let Some(&eid) = self.edge_lookup.get(&(lo, hi)) {
            return Some(eid);
        }
        let eid = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { a: lo, b: hi, planes: [PlaneEdge::default(); 2] });
        self.edge_lookup.insert((lo, hi), eid);
        self.adjacency[lo.index()].push((hi, eid));
        self.adjacency[hi.index()].push((lo, eid));
        Some(eid)
    }

    /// Mark a link as observed on a plane (creating it if necessary).
    pub fn observe_link(&mut self, a: Asn, b: Asn, plane: IpVersion) -> Option<EdgeId> {
        let eid = self.add_link(a, b)?;
        self.edges[eid.index()].planes[plane_index(plane)].present = true;
        Some(eid)
    }

    /// Annotate the relationship of a link on one plane. `rel` is oriented
    /// `a → b` (e.g. `ProviderToCustomer` means "`a` is `b`'s provider").
    /// The link is created and marked present on that plane if needed.
    pub fn annotate(
        &mut self,
        a: Asn,
        b: Asn,
        plane: IpVersion,
        rel: Relationship,
    ) -> Option<EdgeId> {
        let eid = self.observe_link(a, b, plane)?;
        let edge = &mut self.edges[eid.index()];
        let na = self.asn_to_node[&a];
        let stored = if edge.a == na { rel } else { rel.reverse() };
        edge.planes[plane_index(plane)].rel = Some(stored);
        Some(eid)
    }

    /// Annotate both planes with the same relationship (oriented `a → b`).
    pub fn annotate_both(&mut self, a: Asn, b: Asn, rel: Relationship) -> Option<EdgeId> {
        self.annotate(a, b, IpVersion::V4, rel)?;
        self.annotate(a, b, IpVersion::V6, rel)
    }

    /// Remove the relationship annotation of a link on one plane (the link
    /// itself and its presence flags stay).
    pub fn clear_relationship(&mut self, a: Asn, b: Asn, plane: IpVersion) {
        if let Some(eid) = self.edge_id(a, b) {
            self.edges[eid.index()].planes[plane_index(plane)].rel = None;
        }
    }

    /// The edge id of a link, if it exists.
    pub fn edge_id(&self, a: Asn, b: Asn) -> Option<EdgeId> {
        let na = self.node(a)?;
        let nb = self.node(b)?;
        let (lo, hi, _) = self.canonical(na, nb);
        self.edge_lookup.get(&(lo, hi)).copied()
    }

    /// True if the link exists and is present on the plane.
    pub fn has_link(&self, a: Asn, b: Asn, plane: IpVersion) -> bool {
        self.edge_id(a, b)
            .map(|eid| self.edges[eid.index()].planes[plane_index(plane)].present)
            .unwrap_or(false)
    }

    /// The relationship of the link on a plane, oriented `a → b`.
    pub fn relationship(&self, a: Asn, b: Asn, plane: IpVersion) -> Option<Relationship> {
        let eid = self.edge_id(a, b)?;
        let edge = &self.edges[eid.index()];
        let rel = edge.planes[plane_index(plane)].rel?;
        let na = self.node(a)?;
        Some(if edge.a == na { rel } else { rel.reverse() })
    }

    /// A read-only view of an edge by id.
    pub fn edge_view(&self, eid: EdgeId) -> EdgeView {
        let e = &self.edges[eid.index()];
        EdgeView {
            a: self.asn(e.a),
            b: self.asn(e.b),
            present_v4: e.planes[0].present,
            present_v6: e.planes[1].present,
            rel_v4: e.planes[0].rel,
            rel_v6: e.planes[1].rel,
        }
    }

    /// Iterate all edges as views.
    pub fn edges(&self) -> impl Iterator<Item = EdgeView> + '_ {
        (0..self.edges.len() as u32).map(|i| self.edge_view(EdgeId(i)))
    }

    /// Iterate edges present on a plane.
    pub fn plane_edges(&self, plane: IpVersion) -> impl Iterator<Item = EdgeView> + '_ {
        self.edges().filter(move |e| e.present(plane))
    }

    /// Iterate the neighbors of an AS on a plane together with the edge's
    /// relationship oriented `asn → neighbor`.
    pub fn neighbors(
        &self,
        asn: Asn,
        plane: IpVersion,
    ) -> impl Iterator<Item = (Asn, Option<Relationship>)> + '_ {
        let node = self.node(asn);
        let idx = plane_index(plane);
        node.into_iter().flat_map(move |n| {
            self.adjacency[n.index()].iter().filter_map(move |&(other, eid)| {
                let edge = &self.edges[eid.index()];
                if !edge.planes[idx].present {
                    return None;
                }
                let rel = edge.planes[idx].rel.map(|r| if edge.a == n { r } else { r.reverse() });
                Some((self.asn(other), rel))
            })
        })
    }

    /// Adjacency in node-id space: the neighbors of a node on a plane with
    /// the relationship oriented `node → neighbor`. This is the fast path
    /// used by the traversal modules and the route simulator; prefer
    /// [`AsGraph::neighbors`] when working with ASNs.
    pub fn neighbors_by_id(
        &self,
        node: NodeId,
        plane: IpVersion,
    ) -> impl Iterator<Item = (NodeId, Option<Relationship>)> + '_ {
        let idx = plane_index(plane);
        self.adjacency[node.index()].iter().filter_map(move |&(other, eid)| {
            let edge = &self.edges[eid.index()];
            if !edge.planes[idx].present {
                return None;
            }
            let rel = edge.planes[idx].rel.map(|r| if edge.a == node { r } else { r.reverse() });
            Some((other, rel))
        })
    }

    /// The degree of an AS on a plane (number of present links).
    pub fn degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane).count()
    }

    /// The number of customers of an AS on a plane (present links where the
    /// AS is the provider).
    pub fn customer_degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane)
            .filter(|(_, rel)| *rel == Some(Relationship::ProviderToCustomer))
            .count()
    }

    /// The number of providers of an AS on a plane.
    pub fn provider_degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane)
            .filter(|(_, rel)| *rel == Some(Relationship::CustomerToProvider))
            .count()
    }

    /// The number of peers of an AS on a plane.
    pub fn peer_degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane).filter(|(_, rel)| *rel == Some(Relationship::PeerToPeer)).count()
    }

    /// Links present on both planes (the "dual-stack" links the hybrid
    /// analysis inspects).
    pub fn dual_stack_edges(&self) -> impl Iterator<Item = EdgeView> + '_ {
        self.edges().filter(|e| e.is_dual_stack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.annotate(Asn(1), Asn(3), IpVersion::V4, Relationship::PeerToPeer);
        g.annotate(Asn(1), Asn(3), IpVersion::V6, Relationship::ProviderToCustomer);
        g.observe_link(Asn(2), Asn(3), IpVersion::V6);
        g
    }

    #[test]
    fn nodes_are_deduplicated() {
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(10));
        let b = g.add_node(Asn(10));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        assert!(g.contains(Asn(10)));
        assert!(!g.contains(Asn(11)));
        assert_eq!(g.asn(a), Asn(10));
        assert_eq!(g.node(Asn(10)), Some(a));
        assert_eq!(g.node(Asn(11)), None);
    }

    #[test]
    fn links_are_deduplicated_and_undirected() {
        let mut g = AsGraph::new();
        let e1 = g.add_link(Asn(1), Asn(2)).unwrap();
        let e2 = g.add_link(Asn(2), Asn(1)).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_id(Asn(2), Asn(1)), Some(e1));
    }

    #[test]
    fn self_links_are_rejected() {
        let mut g = AsGraph::new();
        assert_eq!(g.add_link(Asn(5), Asn(5)), None);
        assert_eq!(g.annotate_both(Asn(5), Asn(5), Relationship::PeerToPeer), None);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn presence_is_per_plane() {
        let g = small_graph();
        assert!(g.has_link(Asn(1), Asn(2), IpVersion::V4));
        assert!(g.has_link(Asn(1), Asn(2), IpVersion::V6));
        assert!(!g.has_link(Asn(2), Asn(3), IpVersion::V4));
        assert!(g.has_link(Asn(2), Asn(3), IpVersion::V6));
        assert_eq!(g.plane_edge_count(IpVersion::V4), 2);
        assert_eq!(g.plane_edge_count(IpVersion::V6), 3);
        assert!(!g.has_link(Asn(1), Asn(99), IpVersion::V4));
    }

    #[test]
    fn relationship_orientation_is_consistent() {
        let g = small_graph();
        assert_eq!(
            g.relationship(Asn(1), Asn(2), IpVersion::V4),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(
            g.relationship(Asn(2), Asn(1), IpVersion::V4),
            Some(Relationship::CustomerToProvider)
        );
        assert_eq!(g.relationship(Asn(1), Asn(3), IpVersion::V4), Some(Relationship::PeerToPeer));
        assert_eq!(
            g.relationship(Asn(3), Asn(1), IpVersion::V6),
            Some(Relationship::CustomerToProvider)
        );
        // Unannotated plane of an existing link.
        assert_eq!(g.relationship(Asn(2), Asn(3), IpVersion::V6), None);
        // Missing link.
        assert_eq!(g.relationship(Asn(2), Asn(99), IpVersion::V4), None);
    }

    #[test]
    fn annotation_overwrite_and_clear() {
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::PeerToPeer);
        g.annotate(Asn(2), Asn(1), IpVersion::V6, Relationship::ProviderToCustomer);
        assert_eq!(
            g.relationship(Asn(1), Asn(2), IpVersion::V6),
            Some(Relationship::CustomerToProvider)
        );
        g.clear_relationship(Asn(1), Asn(2), IpVersion::V6);
        assert_eq!(g.relationship(Asn(1), Asn(2), IpVersion::V6), None);
        assert!(g.has_link(Asn(1), Asn(2), IpVersion::V6), "presence survives clearing");
    }

    #[test]
    fn neighbors_and_degrees() {
        let g = small_graph();
        let mut v6_neighbors: Vec<_> = g.neighbors(Asn(1), IpVersion::V6).collect();
        v6_neighbors.sort_by_key(|(a, _)| *a);
        assert_eq!(
            v6_neighbors,
            vec![
                (Asn(2), Some(Relationship::ProviderToCustomer)),
                (Asn(3), Some(Relationship::ProviderToCustomer)),
            ]
        );
        assert_eq!(g.degree(Asn(1), IpVersion::V4), 2);
        assert_eq!(g.degree(Asn(1), IpVersion::V6), 2);
        assert_eq!(g.degree(Asn(3), IpVersion::V4), 1);
        assert_eq!(g.customer_degree(Asn(1), IpVersion::V6), 2);
        assert_eq!(g.customer_degree(Asn(1), IpVersion::V4), 1);
        assert_eq!(g.peer_degree(Asn(1), IpVersion::V4), 1);
        assert_eq!(g.provider_degree(Asn(2), IpVersion::V4), 1);
        assert_eq!(g.degree(Asn(999), IpVersion::V4), 0, "unknown AS has degree 0");
    }

    #[test]
    fn edge_views_and_hybrid_flag() {
        let g = small_graph();
        let views: Vec<_> = g.edges().collect();
        assert_eq!(views.len(), 3);
        let hybrid: Vec<_> = g.dual_stack_edges().filter(|e| e.is_hybrid()).collect();
        assert_eq!(hybrid.len(), 1);
        let h = hybrid[0];
        assert_eq!((h.a.min(h.b), h.a.max(h.b)), (Asn(1), Asn(3)));
        assert!(h.is_dual_stack());
        assert_eq!(h.rel(IpVersion::V4), h.rel_v4);
        assert!(h.present(IpVersion::V6));

        let plain = g.edge_view(g.edge_id(Asn(1), Asn(2)).unwrap());
        assert!(!plain.is_hybrid());
        assert!(plain.is_dual_stack());

        let v6_only = g.edge_view(g.edge_id(Asn(2), Asn(3)).unwrap());
        assert!(!v6_only.is_dual_stack());
        assert!(!v6_only.is_hybrid(), "unannotated links are never hybrid");
    }

    #[test]
    fn plane_edges_filters_by_presence() {
        let g = small_graph();
        assert_eq!(g.plane_edges(IpVersion::V4).count(), 2);
        assert_eq!(g.plane_edges(IpVersion::V6).count(), 3);
    }

    #[test]
    fn asns_and_nodes_iterate_everything() {
        let g = small_graph();
        assert_eq!(g.asns().count(), 3);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.dual_stack_edges().count(), 2);
    }

    #[test]
    fn clone_is_independent() {
        let g = small_graph();
        let mut clone = g.clone();
        clone.annotate(Asn(7), Asn(8), IpVersion::V6, Relationship::PeerToPeer);
        assert_eq!(g.node_count(), 3);
        assert_eq!(clone.node_count(), 5);
    }
}
