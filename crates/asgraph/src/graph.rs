//! The annotated AS-level graph.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bgp_types::{Asn, IpVersion, Relationship};

/// Dense node identifier inside one [`AsGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense edge identifier inside one [`AsGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The index as a usize, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-plane state of one undirected AS link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct PlaneEdge {
    /// The link was observed carrying routes of this plane.
    present: bool,
    /// Relationship oriented from the edge's canonical `a` endpoint to its
    /// `b` endpoint, if known.
    rel: Option<Relationship>,
}

/// One undirected AS link with its per-plane annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    a: NodeId,
    b: NodeId,
    planes: [PlaneEdge; 2],
}

fn plane_index(v: IpVersion) -> usize {
    match v {
        IpVersion::V4 => 0,
        IpVersion::V6 => 1,
    }
}

/// Frozen compressed-sparse-row mirror of the adjacency structure: one
/// contiguous neighbor/edge-id array indexed by per-node offsets, with
/// each directed entry's per-plane presence and relationship packed into
/// a single byte (pre-oriented source → target, so the hot loop does no
/// `edges[eid]` chase and no orientation branch). Entry order matches the
/// adjacency lists exactly — CSR traversals visit neighbors in the same
/// order as the map backend, which is what keeps reports byte-identical
/// across the two.
#[derive(Debug, Clone)]
struct CsrCore {
    /// `node_count() + 1` offsets into the directed-entry arrays.
    offsets: Vec<u32>,
    /// Neighbor node id of each directed entry.
    targets: Vec<u32>,
    /// Edge id of each directed entry (used to locate entries when an
    /// annotation-only mutation re-packs them in place).
    edge_ids: Vec<u32>,
    /// Packed per-plane state of each directed entry; see
    /// [`encode_plane`] for the byte layout.
    plane_info: [Vec<u8>; 2],
}

/// Pack one plane of one directed entry: `0` = absent on the plane, `1` =
/// present but unannotated, `2`..`5` = present with the relationship
/// (oriented `source → target`).
fn encode_plane(edge: &Edge, source: NodeId, idx: usize) -> u8 {
    let plane = edge.planes[idx];
    if !plane.present {
        return 0;
    }
    match plane.rel.map(|r| if edge.a == source { r } else { r.reverse() }) {
        None => 1,
        Some(Relationship::ProviderToCustomer) => 2,
        Some(Relationship::CustomerToProvider) => 3,
        Some(Relationship::PeerToPeer) => 4,
        Some(Relationship::SiblingToSibling) => 5,
    }
}

/// Inverse of [`encode_plane`]: `None` = not present on the plane,
/// `Some(rel)` = present with that (possibly missing) annotation.
#[inline]
fn decode_plane(byte: u8) -> Option<Option<Relationship>> {
    match byte {
        0 => None,
        1 => Some(None),
        2 => Some(Some(Relationship::ProviderToCustomer)),
        3 => Some(Some(Relationship::CustomerToProvider)),
        4 => Some(Some(Relationship::PeerToPeer)),
        _ => Some(Some(Relationship::SiblingToSibling)),
    }
}

/// Iterator over a node's plane-present neighbors, returned by
/// [`AsGraph::neighbors_by_id`]. Runs over the frozen CSR arrays when the
/// graph is frozen and over the adjacency-map backend otherwise; both
/// backends yield identical sequences.
pub struct NeighborsById<'g> {
    inner: NeighborsInner<'g>,
}

enum NeighborsInner<'g> {
    Csr { targets: &'g [u32], info: &'g [u8], pos: usize },
    Map { graph: &'g AsGraph, node: NodeId, idx: usize, pos: usize },
}

impl Iterator for NeighborsById<'_> {
    type Item = (NodeId, Option<Relationship>);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            NeighborsInner::Csr { targets, info, pos } => {
                while *pos < targets.len() {
                    let i = *pos;
                    *pos += 1;
                    if let Some(rel) = decode_plane(info[i]) {
                        return Some((NodeId(targets[i]), rel));
                    }
                }
                None
            }
            NeighborsInner::Map { graph, node, idx, pos } => {
                let adj = &graph.adjacency[node.index()];
                while *pos < adj.len() {
                    let (other, eid) = adj[*pos];
                    *pos += 1;
                    let edge = &graph.edges[eid.index()];
                    let plane = edge.planes[*idx];
                    if !plane.present {
                        continue;
                    }
                    let rel = plane.rel.map(|r| if edge.a == *node { r } else { r.reverse() });
                    return Some((other, rel));
                }
                None
            }
        }
    }
}

/// A read-only view of one edge, with endpoints as ASNs and the
/// relationship oriented from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeView {
    /// First endpoint.
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// Whether the link carries IPv4 routes.
    pub present_v4: bool,
    /// Whether the link carries IPv6 routes.
    pub present_v6: bool,
    /// IPv4 relationship oriented `a → b`, if annotated.
    pub rel_v4: Option<Relationship>,
    /// IPv6 relationship oriented `a → b`, if annotated.
    pub rel_v6: Option<Relationship>,
}

impl EdgeView {
    /// The relationship on the requested plane, oriented `a → b`.
    pub fn rel(&self, plane: IpVersion) -> Option<Relationship> {
        match plane {
            IpVersion::V4 => self.rel_v4,
            IpVersion::V6 => self.rel_v6,
        }
    }

    /// Whether the link is present on the requested plane.
    pub fn present(&self, plane: IpVersion) -> bool {
        match plane {
            IpVersion::V4 => self.present_v4,
            IpVersion::V6 => self.present_v6,
        }
    }

    /// True when the link is present on both planes.
    pub fn is_dual_stack(&self) -> bool {
        self.present_v4 && self.present_v6
    }

    /// True when both planes are annotated and the relationships differ —
    /// the paper's hybrid condition.
    pub fn is_hybrid(&self) -> bool {
        matches!((self.rel_v4, self.rel_v6), (Some(r4), Some(r6)) if r4 != r6)
    }
}

/// Per-component byte estimate behind [`AsGraph::memory_footprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBreakdown {
    /// Bytes held by the adjacency-map backend (always resident).
    pub map_bytes: usize,
    /// Bytes held by the frozen CSR mirror (0 while thawed).
    pub csr_bytes: usize,
}

/// An undirected AS-level multigraph-free graph where every link carries
/// independent IPv4 and IPv6 presence flags and relationship annotations.
///
/// All mutating methods are idempotent: adding a node or link that already
/// exists returns the existing id.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    asn_to_node: HashMap<Asn, NodeId>,
    node_to_asn: Vec<Asn>,
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<Edge>,
    edge_lookup: HashMap<(NodeId, NodeId), EdgeId>,
    /// Links currently marked present per plane (kept in sync by
    /// [`AsGraph::observe_link`], so [`AsGraph::plane_edge_count`] is O(1)
    /// instead of an O(E) scan per report).
    plane_present: [usize; 2],
    /// Frozen CSR mirror; `Some` while frozen, dropped by structural
    /// mutation, kept in sync in place by annotation-only mutation.
    csr: Option<CsrCore>,
}

impl AsGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ASes.
    pub fn node_count(&self) -> usize {
        self.node_to_asn.len()
    }

    /// Number of links, regardless of plane.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of links present on the given plane. O(1): the count is
    /// maintained on every presence transition rather than recomputed.
    pub fn plane_edge_count(&self, plane: IpVersion) -> usize {
        self.plane_present[plane_index(plane)]
    }

    /// Add (or look up) a node for an ASN.
    pub fn add_node(&mut self, asn: Asn) -> NodeId {
        if let Some(&id) = self.asn_to_node.get(&asn) {
            return id;
        }
        let id = NodeId(
            u32::try_from(self.node_to_asn.len())
                .expect("AsGraph node count exceeds the u32 id space"),
        );
        self.asn_to_node.insert(asn, id);
        self.node_to_asn.push(asn);
        self.adjacency.push(Vec::new());
        self.csr = None;
        id
    }

    /// The node id of an ASN, if present.
    pub fn node(&self, asn: Asn) -> Option<NodeId> {
        self.asn_to_node.get(&asn).copied()
    }

    /// The ASN of a node id.
    pub fn asn(&self, node: NodeId) -> Asn {
        self.node_to_asn[node.index()]
    }

    /// True if the AS is in the graph.
    pub fn contains(&self, asn: Asn) -> bool {
        self.asn_to_node.contains_key(&asn)
    }

    /// All ASNs, in insertion order.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.node_to_asn.iter().copied()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_to_asn.len() as u32).map(NodeId)
    }

    fn canonical(&self, x: NodeId, y: NodeId) -> (NodeId, NodeId, bool) {
        if x.0 <= y.0 {
            (x, y, false)
        } else {
            (y, x, true)
        }
    }

    /// Add (or look up) the undirected link between two ASes, without
    /// marking it present on any plane. Self-links are rejected.
    pub fn add_link(&mut self, a: Asn, b: Asn) -> Option<EdgeId> {
        if a == b {
            return None;
        }
        let na = self.add_node(a);
        let nb = self.add_node(b);
        let (lo, hi, _) = self.canonical(na, nb);
        if let Some(&eid) = self.edge_lookup.get(&(lo, hi)) {
            return Some(eid);
        }
        let eid = EdgeId(
            u32::try_from(self.edges.len()).expect("AsGraph edge count exceeds the u32 id space"),
        );
        self.edges.push(Edge { a: lo, b: hi, planes: [PlaneEdge::default(); 2] });
        self.edge_lookup.insert((lo, hi), eid);
        self.adjacency[lo.index()].push((hi, eid));
        self.adjacency[hi.index()].push((lo, eid));
        self.csr = None;
        Some(eid)
    }

    /// Mark a link as observed on a plane (creating it if necessary).
    pub fn observe_link(&mut self, a: Asn, b: Asn, plane: IpVersion) -> Option<EdgeId> {
        let eid = self.add_link(a, b)?;
        let slot = &mut self.edges[eid.index()].planes[plane_index(plane)];
        if !slot.present {
            slot.present = true;
            self.plane_present[plane_index(plane)] += 1;
            self.refresh_frozen_edge(eid);
        }
        Some(eid)
    }

    /// Annotate the relationship of a link on one plane. `rel` is oriented
    /// `a → b` (e.g. `ProviderToCustomer` means "`a` is `b`'s provider").
    /// The link is created and marked present on that plane if needed.
    pub fn annotate(
        &mut self,
        a: Asn,
        b: Asn,
        plane: IpVersion,
        rel: Relationship,
    ) -> Option<EdgeId> {
        let eid = self.observe_link(a, b, plane)?;
        let edge = &mut self.edges[eid.index()];
        let na = self.asn_to_node[&a];
        let stored = if edge.a == na { rel } else { rel.reverse() };
        edge.planes[plane_index(plane)].rel = Some(stored);
        self.refresh_frozen_edge(eid);
        Some(eid)
    }

    /// Annotate both planes with the same relationship (oriented `a → b`).
    pub fn annotate_both(&mut self, a: Asn, b: Asn, rel: Relationship) -> Option<EdgeId> {
        self.annotate(a, b, IpVersion::V4, rel)?;
        self.annotate(a, b, IpVersion::V6, rel)
    }

    /// Remove the relationship annotation of a link on one plane (the link
    /// itself and its presence flags stay).
    pub fn clear_relationship(&mut self, a: Asn, b: Asn, plane: IpVersion) {
        if let Some(eid) = self.edge_id(a, b) {
            self.edges[eid.index()].planes[plane_index(plane)].rel = None;
            self.refresh_frozen_edge(eid);
        }
    }

    /// Build the frozen CSR mirror the traversal hot paths consume.
    /// Idempotent. Structural mutation (a new node or link) drops the
    /// mirror; annotation-only mutation (observe / annotate / clear on an
    /// existing link) keeps it in sync in place, so a frozen graph can
    /// still absorb the correction sweep's relationship flips.
    pub fn freeze(&mut self) {
        if self.csr.is_some() {
            return;
        }
        let n = self.node_to_asn.len();
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        u32::try_from(total).expect("AsGraph CSR entry count exceeds the u32 offset space");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(total);
        let mut edge_ids = Vec::with_capacity(total);
        let mut plane_info = [Vec::with_capacity(total), Vec::with_capacity(total)];
        offsets.push(0u32);
        for (node_idx, adj) in self.adjacency.iter().enumerate() {
            // Node ids already fit u32: add_node allocated them checked.
            let source = NodeId(node_idx as u32);
            for &(other, eid) in adj {
                let edge = &self.edges[eid.index()];
                targets.push(other.0);
                edge_ids.push(eid.0);
                for (idx, info) in plane_info.iter_mut().enumerate() {
                    info.push(encode_plane(edge, source, idx));
                }
            }
            offsets
                .push(u32::try_from(targets.len()).expect("AsGraph CSR offset exceeds u32 range"));
        }
        self.csr = Some(CsrCore { offsets, targets, edge_ids, plane_info });
    }

    /// Drop the frozen CSR mirror, returning to map-backed traversal.
    pub fn thaw(&mut self) {
        self.csr = None;
    }

    /// True while a frozen CSR mirror is active.
    pub fn is_frozen(&self) -> bool {
        self.csr.is_some()
    }

    /// An estimate of the bytes resident in the graph: the adjacency-map
    /// backend plus the frozen CSR mirror when one is active. The bench
    /// layer reports this alongside timings so the regression gate can
    /// catch space as well as time regressions.
    pub fn memory_footprint(&self) -> usize {
        let b = self.memory_breakdown();
        b.map_bytes + b.csr_bytes
    }

    /// [`AsGraph::memory_footprint`] split per storage component, so
    /// resident-service gauges can report the map backend and the CSR
    /// mirror separately.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        use std::mem::size_of;
        let adjacency_entries: usize = self.adjacency.iter().map(Vec::capacity).sum();
        let map_bytes = self.node_to_asn.capacity() * size_of::<Asn>()
            + self.adjacency.capacity() * size_of::<Vec<(NodeId, EdgeId)>>()
            + adjacency_entries * size_of::<(NodeId, EdgeId)>()
            + self.edges.capacity() * size_of::<Edge>()
            + self.asn_to_node.capacity() * (size_of::<Asn>() + size_of::<NodeId>())
            + self.edge_lookup.capacity() * (size_of::<(NodeId, NodeId)>() + size_of::<EdgeId>());
        let csr_bytes = self.csr.as_ref().map_or(0, |c| {
            (c.offsets.capacity() + c.targets.capacity() + c.edge_ids.capacity()) * size_of::<u32>()
                + c.plane_info.iter().map(Vec::capacity).sum::<usize>()
        });
        MemoryBreakdown { map_bytes, csr_bytes }
    }

    /// Re-pack the CSR bytes of both directed entries of `eid` after an
    /// annotation-only mutation. O(degree) per endpoint; a no-op when the
    /// graph is not frozen.
    fn refresh_frozen_edge(&mut self, eid: EdgeId) {
        let edge = self.edges[eid.index()];
        let Some(csr) = self.csr.as_mut() else { return };
        for source in [edge.a, edge.b] {
            let lo = csr.offsets[source.index()] as usize;
            let hi = csr.offsets[source.index() + 1] as usize;
            let k = csr.edge_ids[lo..hi]
                .iter()
                .position(|&e| e == eid.0)
                .expect("frozen CSR is missing a directed entry for an existing edge");
            for (idx, info) in csr.plane_info.iter_mut().enumerate() {
                info[lo + k] = encode_plane(&edge, source, idx);
            }
        }
    }

    /// The edge id of a link, if it exists.
    pub fn edge_id(&self, a: Asn, b: Asn) -> Option<EdgeId> {
        let na = self.node(a)?;
        let nb = self.node(b)?;
        let (lo, hi, _) = self.canonical(na, nb);
        self.edge_lookup.get(&(lo, hi)).copied()
    }

    /// True if the link exists and is present on the plane.
    pub fn has_link(&self, a: Asn, b: Asn, plane: IpVersion) -> bool {
        self.edge_id(a, b)
            .map(|eid| self.edges[eid.index()].planes[plane_index(plane)].present)
            .unwrap_or(false)
    }

    /// The relationship of the link on a plane, oriented `a → b`.
    pub fn relationship(&self, a: Asn, b: Asn, plane: IpVersion) -> Option<Relationship> {
        let eid = self.edge_id(a, b)?;
        let edge = &self.edges[eid.index()];
        let rel = edge.planes[plane_index(plane)].rel?;
        let na = self.node(a)?;
        Some(if edge.a == na { rel } else { rel.reverse() })
    }

    /// A read-only view of an edge by id.
    pub fn edge_view(&self, eid: EdgeId) -> EdgeView {
        let e = &self.edges[eid.index()];
        EdgeView {
            a: self.asn(e.a),
            b: self.asn(e.b),
            present_v4: e.planes[0].present,
            present_v6: e.planes[1].present,
            rel_v4: e.planes[0].rel,
            rel_v6: e.planes[1].rel,
        }
    }

    /// Iterate all edges as views.
    pub fn edges(&self) -> impl Iterator<Item = EdgeView> + '_ {
        (0..self.edges.len() as u32).map(|i| self.edge_view(EdgeId(i)))
    }

    /// Iterate edges present on a plane.
    pub fn plane_edges(&self, plane: IpVersion) -> impl Iterator<Item = EdgeView> + '_ {
        self.edges().filter(move |e| e.present(plane))
    }

    /// Iterate the neighbors of an AS on a plane together with the edge's
    /// relationship oriented `asn → neighbor`.
    pub fn neighbors(
        &self,
        asn: Asn,
        plane: IpVersion,
    ) -> impl Iterator<Item = (Asn, Option<Relationship>)> + '_ {
        self.node(asn).into_iter().flat_map(move |n| {
            self.neighbors_by_id(n, plane).map(|(other, rel)| (self.asn(other), rel))
        })
    }

    /// Adjacency in node-id space: the neighbors of a node on a plane with
    /// the relationship oriented `node → neighbor`. This is the fast path
    /// used by the traversal modules and the route simulator; prefer
    /// [`AsGraph::neighbors`] when working with ASNs. On a frozen graph
    /// (see [`AsGraph::freeze`]) it runs over the flat CSR arrays instead
    /// of chasing `edges[eid]`; both backends yield the same sequence.
    pub fn neighbors_by_id(&self, node: NodeId, plane: IpVersion) -> NeighborsById<'_> {
        let idx = plane_index(plane);
        let inner = match &self.csr {
            Some(csr) => {
                let lo = csr.offsets[node.index()] as usize;
                let hi = csr.offsets[node.index() + 1] as usize;
                NeighborsInner::Csr {
                    targets: &csr.targets[lo..hi],
                    info: &csr.plane_info[idx][lo..hi],
                    pos: 0,
                }
            }
            None => NeighborsInner::Map { graph: self, node, idx, pos: 0 },
        };
        NeighborsById { inner }
    }

    /// The degree of an AS on a plane (number of present links).
    pub fn degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane).count()
    }

    /// The number of customers of an AS on a plane (present links where the
    /// AS is the provider).
    pub fn customer_degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane)
            .filter(|(_, rel)| *rel == Some(Relationship::ProviderToCustomer))
            .count()
    }

    /// The number of providers of an AS on a plane.
    pub fn provider_degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane)
            .filter(|(_, rel)| *rel == Some(Relationship::CustomerToProvider))
            .count()
    }

    /// The number of peers of an AS on a plane.
    pub fn peer_degree(&self, asn: Asn, plane: IpVersion) -> usize {
        self.neighbors(asn, plane).filter(|(_, rel)| *rel == Some(Relationship::PeerToPeer)).count()
    }

    /// Links present on both planes (the "dual-stack" links the hybrid
    /// analysis inspects).
    pub fn dual_stack_edges(&self) -> impl Iterator<Item = EdgeView> + '_ {
        self.edges().filter(|e| e.is_dual_stack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.annotate(Asn(1), Asn(3), IpVersion::V4, Relationship::PeerToPeer);
        g.annotate(Asn(1), Asn(3), IpVersion::V6, Relationship::ProviderToCustomer);
        g.observe_link(Asn(2), Asn(3), IpVersion::V6);
        g
    }

    #[test]
    fn nodes_are_deduplicated() {
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(10));
        let b = g.add_node(Asn(10));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        assert!(g.contains(Asn(10)));
        assert!(!g.contains(Asn(11)));
        assert_eq!(g.asn(a), Asn(10));
        assert_eq!(g.node(Asn(10)), Some(a));
        assert_eq!(g.node(Asn(11)), None);
    }

    #[test]
    fn links_are_deduplicated_and_undirected() {
        let mut g = AsGraph::new();
        let e1 = g.add_link(Asn(1), Asn(2)).unwrap();
        let e2 = g.add_link(Asn(2), Asn(1)).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_id(Asn(2), Asn(1)), Some(e1));
    }

    #[test]
    fn self_links_are_rejected() {
        let mut g = AsGraph::new();
        assert_eq!(g.add_link(Asn(5), Asn(5)), None);
        assert_eq!(g.annotate_both(Asn(5), Asn(5), Relationship::PeerToPeer), None);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn presence_is_per_plane() {
        let g = small_graph();
        assert!(g.has_link(Asn(1), Asn(2), IpVersion::V4));
        assert!(g.has_link(Asn(1), Asn(2), IpVersion::V6));
        assert!(!g.has_link(Asn(2), Asn(3), IpVersion::V4));
        assert!(g.has_link(Asn(2), Asn(3), IpVersion::V6));
        assert_eq!(g.plane_edge_count(IpVersion::V4), 2);
        assert_eq!(g.plane_edge_count(IpVersion::V6), 3);
        assert!(!g.has_link(Asn(1), Asn(99), IpVersion::V4));
    }

    #[test]
    fn relationship_orientation_is_consistent() {
        let g = small_graph();
        assert_eq!(
            g.relationship(Asn(1), Asn(2), IpVersion::V4),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(
            g.relationship(Asn(2), Asn(1), IpVersion::V4),
            Some(Relationship::CustomerToProvider)
        );
        assert_eq!(g.relationship(Asn(1), Asn(3), IpVersion::V4), Some(Relationship::PeerToPeer));
        assert_eq!(
            g.relationship(Asn(3), Asn(1), IpVersion::V6),
            Some(Relationship::CustomerToProvider)
        );
        // Unannotated plane of an existing link.
        assert_eq!(g.relationship(Asn(2), Asn(3), IpVersion::V6), None);
        // Missing link.
        assert_eq!(g.relationship(Asn(2), Asn(99), IpVersion::V4), None);
    }

    #[test]
    fn annotation_overwrite_and_clear() {
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::PeerToPeer);
        g.annotate(Asn(2), Asn(1), IpVersion::V6, Relationship::ProviderToCustomer);
        assert_eq!(
            g.relationship(Asn(1), Asn(2), IpVersion::V6),
            Some(Relationship::CustomerToProvider)
        );
        g.clear_relationship(Asn(1), Asn(2), IpVersion::V6);
        assert_eq!(g.relationship(Asn(1), Asn(2), IpVersion::V6), None);
        assert!(g.has_link(Asn(1), Asn(2), IpVersion::V6), "presence survives clearing");
    }

    #[test]
    fn neighbors_and_degrees() {
        let g = small_graph();
        let mut v6_neighbors: Vec<_> = g.neighbors(Asn(1), IpVersion::V6).collect();
        v6_neighbors.sort_by_key(|(a, _)| *a);
        assert_eq!(
            v6_neighbors,
            vec![
                (Asn(2), Some(Relationship::ProviderToCustomer)),
                (Asn(3), Some(Relationship::ProviderToCustomer)),
            ]
        );
        assert_eq!(g.degree(Asn(1), IpVersion::V4), 2);
        assert_eq!(g.degree(Asn(1), IpVersion::V6), 2);
        assert_eq!(g.degree(Asn(3), IpVersion::V4), 1);
        assert_eq!(g.customer_degree(Asn(1), IpVersion::V6), 2);
        assert_eq!(g.customer_degree(Asn(1), IpVersion::V4), 1);
        assert_eq!(g.peer_degree(Asn(1), IpVersion::V4), 1);
        assert_eq!(g.provider_degree(Asn(2), IpVersion::V4), 1);
        assert_eq!(g.degree(Asn(999), IpVersion::V4), 0, "unknown AS has degree 0");
    }

    #[test]
    fn edge_views_and_hybrid_flag() {
        let g = small_graph();
        let views: Vec<_> = g.edges().collect();
        assert_eq!(views.len(), 3);
        let hybrid: Vec<_> = g.dual_stack_edges().filter(|e| e.is_hybrid()).collect();
        assert_eq!(hybrid.len(), 1);
        let h = hybrid[0];
        assert_eq!((h.a.min(h.b), h.a.max(h.b)), (Asn(1), Asn(3)));
        assert!(h.is_dual_stack());
        assert_eq!(h.rel(IpVersion::V4), h.rel_v4);
        assert!(h.present(IpVersion::V6));

        let plain = g.edge_view(g.edge_id(Asn(1), Asn(2)).unwrap());
        assert!(!plain.is_hybrid());
        assert!(plain.is_dual_stack());

        let v6_only = g.edge_view(g.edge_id(Asn(2), Asn(3)).unwrap());
        assert!(!v6_only.is_dual_stack());
        assert!(!v6_only.is_hybrid(), "unannotated links are never hybrid");
    }

    #[test]
    fn plane_edges_filters_by_presence() {
        let g = small_graph();
        assert_eq!(g.plane_edges(IpVersion::V4).count(), 2);
        assert_eq!(g.plane_edges(IpVersion::V6).count(), 3);
    }

    #[test]
    fn asns_and_nodes_iterate_everything() {
        let g = small_graph();
        assert_eq!(g.asns().count(), 3);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.dual_stack_edges().count(), 2);
    }

    #[test]
    fn clone_is_independent() {
        let g = small_graph();
        let mut clone = g.clone();
        clone.annotate(Asn(7), Asn(8), IpVersion::V6, Relationship::PeerToPeer);
        assert_eq!(g.node_count(), 3);
        assert_eq!(clone.node_count(), 5);
    }

    #[test]
    fn plane_edge_counters_track_add_present_and_reannotate() {
        let mut g = AsGraph::new();
        let counts =
            |g: &AsGraph| (g.plane_edge_count(IpVersion::V4), g.plane_edge_count(IpVersion::V6));
        assert_eq!(counts(&g), (0, 0));
        // A bare link is not present on any plane.
        g.add_link(Asn(1), Asn(2));
        assert_eq!(counts(&g), (0, 0));
        g.observe_link(Asn(1), Asn(2), IpVersion::V4);
        assert_eq!(counts(&g), (1, 0));
        // Re-observing is idempotent — no double count.
        g.observe_link(Asn(2), Asn(1), IpVersion::V4);
        assert_eq!(counts(&g), (1, 0));
        // Annotating marks the plane present.
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::PeerToPeer);
        assert_eq!(counts(&g), (1, 1));
        // Re-annotating an already-present plane changes nothing.
        g.annotate(Asn(2), Asn(1), IpVersion::V6, Relationship::ProviderToCustomer);
        assert_eq!(counts(&g), (1, 1));
        // Clearing the relationship keeps the presence (and the count).
        g.clear_relationship(Asn(1), Asn(2), IpVersion::V6);
        assert_eq!(counts(&g), (1, 1));
        g.annotate_both(Asn(2), Asn(3), Relationship::SiblingToSibling);
        assert_eq!(counts(&g), (2, 2));
        // The counters agree with the O(E) definition on a mixed graph.
        let g = small_graph();
        for plane in [IpVersion::V4, IpVersion::V6] {
            assert_eq!(g.plane_edge_count(plane), g.plane_edges(plane).count());
        }
    }

    /// Every (node, plane) neighbor sequence of a graph, for backend
    /// comparison.
    fn all_neighbor_seqs(g: &AsGraph) -> Vec<Vec<(NodeId, Option<Relationship>)>> {
        let mut out = Vec::new();
        for node in g.nodes() {
            for plane in [IpVersion::V4, IpVersion::V6] {
                out.push(g.neighbors_by_id(node, plane).collect());
            }
        }
        out
    }

    #[test]
    fn frozen_csr_matches_map_traversal_in_order() {
        let mut g = small_graph();
        let map_seqs = all_neighbor_seqs(&g);
        assert!(!g.is_frozen());
        g.freeze();
        assert!(g.is_frozen());
        assert_eq!(all_neighbor_seqs(&g), map_seqs, "CSR must mirror adjacency order exactly");
        // Freezing twice is a no-op; thawing restores the map backend.
        g.freeze();
        g.thaw();
        assert!(!g.is_frozen());
        assert_eq!(all_neighbor_seqs(&g), map_seqs);
    }

    #[test]
    fn frozen_csr_absorbs_annotation_only_mutations_in_place() {
        let mut g = small_graph();
        g.freeze();
        // Re-annotate an existing edge, annotate a present-but-bare edge,
        // observe a new plane of an existing edge, and clear a rel: all
        // annotation-only, so the graph must stay frozen and exact.
        g.annotate(Asn(3), Asn(1), IpVersion::V4, Relationship::CustomerToProvider);
        g.annotate(Asn(2), Asn(3), IpVersion::V6, Relationship::PeerToPeer);
        g.observe_link(Asn(2), Asn(3), IpVersion::V4);
        g.clear_relationship(Asn(1), Asn(2), IpVersion::V6);
        assert!(g.is_frozen());
        let frozen_seqs = all_neighbor_seqs(&g);
        let frozen_counts = (g.plane_edge_count(IpVersion::V4), g.plane_edge_count(IpVersion::V6));
        g.thaw();
        assert_eq!(all_neighbor_seqs(&g), frozen_seqs);
        assert_eq!(
            (g.plane_edge_count(IpVersion::V4), g.plane_edge_count(IpVersion::V6)),
            frozen_counts
        );
        assert_eq!(
            g.relationship(Asn(1), Asn(3), IpVersion::V4),
            Some(Relationship::ProviderToCustomer),
            "orientation flip in the re-annotation is respected"
        );
    }

    #[test]
    fn structural_mutation_invalidates_the_frozen_csr() {
        let mut g = small_graph();
        g.freeze();
        g.add_node(Asn(99));
        assert!(!g.is_frozen(), "a new node drops the mirror");
        g.freeze();
        g.add_link(Asn(99), Asn(1));
        assert!(!g.is_frozen(), "a new link drops the mirror");
        // annotate() on a brand-new link is structural too.
        g.freeze();
        g.annotate(Asn(50), Asn(51), IpVersion::V4, Relationship::PeerToPeer);
        assert!(!g.is_frozen());
    }

    #[test]
    fn memory_footprint_counts_the_csr_mirror() {
        let mut g = small_graph();
        let before = g.memory_footprint();
        assert!(before > 0);
        g.freeze();
        assert!(g.memory_footprint() > before, "freezing adds the CSR arrays");
        g.thaw();
        assert_eq!(g.memory_footprint(), before);
    }
}
