//! Valley-free path validation and valley-free shortest-path traversal.
//!
//! The *valley-free* rule (Gao 2001) says a legitimate AS path, read from
//! one end to the other, climbs zero or more customer-to-provider links,
//! optionally crosses exactly one peer-to-peer link, then descends zero or
//! more provider-to-customer links. Sibling links may appear anywhere.
//!
//! The paper relies on this twice: to count how many observed IPv6 paths
//! *violate* the rule (13% do), and to compute shortest *valley-free*
//! paths over the customer-tree union for Figure 2.

use std::collections::VecDeque;

use bgp_types::{Asn, IpVersion, Relationship};

use crate::graph::{AsGraph, NodeId};

/// The verdict on one AS path, given a relationship annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathValidity {
    /// The path obeys the valley-free rule.
    ValleyFree,
    /// The path violates the valley-free rule; the index is the position
    /// (0-based, in links) of the first offending link.
    Valley {
        /// Index of the first link that breaks the rule.
        violation_index: usize,
    },
    /// At least one link on the path has no relationship annotation on the
    /// requested plane, so the path cannot be judged.
    Unknown {
        /// Index of the first unannotated link.
        missing_index: usize,
    },
}

impl PathValidity {
    /// True for [`PathValidity::ValleyFree`].
    pub fn is_valley_free(&self) -> bool {
        matches!(self, PathValidity::ValleyFree)
    }

    /// True for [`PathValidity::Valley`].
    pub fn is_valley(&self) -> bool {
        matches!(self, PathValidity::Valley { .. })
    }
}

/// State machine position while walking a path from its first AS toward
/// its origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Still allowed to climb (c2p), peer once, or start descending.
    Climbing,
    /// Crossed the single allowed peering link; only descending is allowed.
    Peered,
    /// Started descending (p2c); only further descending is allowed.
    Descending,
}

/// Check the valley-free rule for a sequence of link relationships along a
/// path. Each relationship is oriented in the direction of travel: the
/// relationship of hop `i` is "AS_i → AS_{i+1}".
///
/// Sibling links are transparent: they never change the phase and never
/// violate the rule.
pub fn is_valley_free(rels: &[Relationship]) -> bool {
    first_violation(rels).is_none()
}

/// The index of the first link that violates the valley-free rule, if any.
pub fn first_violation(rels: &[Relationship]) -> Option<usize> {
    let mut phase = Phase::Climbing;
    for (i, rel) in rels.iter().enumerate() {
        phase = match (phase, rel) {
            (_, Relationship::SiblingToSibling) => phase,
            (Phase::Climbing, Relationship::CustomerToProvider) => Phase::Climbing,
            (Phase::Climbing, Relationship::PeerToPeer) => Phase::Peered,
            (Phase::Climbing, Relationship::ProviderToCustomer) => Phase::Descending,
            (Phase::Peered | Phase::Descending, Relationship::ProviderToCustomer) => {
                Phase::Descending
            }
            // Climbing or peering after the peak is a valley.
            (Phase::Peered | Phase::Descending, _) => return Some(i),
        };
    }
    None
}

/// Map an AS path (as a slice of ASNs) to the relationships of its links on
/// the given plane. Returns `Err(index)` with the first link that is
/// missing from the graph or unannotated.
pub fn path_relationships(
    graph: &AsGraph,
    path: &[Asn],
    plane: IpVersion,
) -> Result<Vec<Relationship>, usize> {
    let mut rels = Vec::with_capacity(path.len().saturating_sub(1));
    for (i, pair) in path.windows(2).enumerate() {
        match graph.relationship(pair[0], pair[1], plane) {
            Some(rel) => rels.push(rel),
            None => return Err(i),
        }
    }
    Ok(rels)
}

/// Classify an AS path against the graph's relationship annotation.
pub fn classify_path(graph: &AsGraph, path: &[Asn], plane: IpVersion) -> PathValidity {
    match path_relationships(graph, path, plane) {
        Err(missing_index) => PathValidity::Unknown { missing_index },
        Ok(rels) => match first_violation(&rels) {
            None => PathValidity::ValleyFree,
            Some(violation_index) => PathValidity::Valley { violation_index },
        },
    }
}

/// Number of phases in the valley-free traversal automaton.
pub(crate) const PHASES: usize = 3;

/// One step of the valley-free traversal automaton. Phases are encoded as
/// `0` = climbing, `1` = peered, `2` = descending; `rel` is oriented in
/// the direction of travel. Returns the phase after crossing the link, or
/// `None` when the crossing would create a valley. This single function is
/// the rule both the full BFS below and the incremental repair in
/// [`crate::delta`] traverse with — they must never disagree.
#[inline]
pub(crate) fn phase_transition(phase: u8, rel: Relationship) -> Option<u8> {
    match (phase, rel) {
        (_, Relationship::SiblingToSibling) => Some(phase),
        (0, Relationship::CustomerToProvider) => Some(0),
        (0, Relationship::PeerToPeer) => Some(1),
        (0..=2, Relationship::ProviderToCustomer) => Some(2),
        _ => None,
    }
}

/// The full valley-free BFS over the phase-layered graph: per node, the
/// shortest distance at which the root reaches it in each phase (`u32::MAX`
/// = unreachable in that phase), plus the min-over-phases distance view.
/// This is the ground-truth computation the incremental engine repairs
/// towards; both index by [`NodeId`].
pub(crate) fn layered_search(
    graph: &AsGraph,
    root: Asn,
    plane: IpVersion,
) -> (Vec<[u32; PHASES]>, Vec<Option<u32>>) {
    let n = graph.node_count();
    let mut best = vec![[u32::MAX; PHASES]; n];
    let mut out = vec![None; n];
    let Some(root_node) = graph.node(root) else {
        return (best, out);
    };

    // A route the root uses to reach a destination climbs through the
    // root's providers, crosses at most one peering, then descends.
    let mut queue: VecDeque<(NodeId, u8, u32)> = VecDeque::new();
    best[root_node.index()] = [0; PHASES];
    out[root_node.index()] = Some(0);
    queue.push_back((root_node, 0, 0));

    while let Some((node, phase, dist)) = queue.pop_front() {
        if best[node.index()][phase as usize] < dist {
            continue;
        }
        for (next, rel) in graph.neighbors_by_id(node, plane) {
            let Some(rel) = rel else { continue };
            let Some(next_phase) = phase_transition(phase, rel) else { continue };
            let next_dist = dist + 1;
            if next_dist < best[next.index()][next_phase as usize] {
                best[next.index()][next_phase as usize] = next_dist;
                let entry = &mut out[next.index()];
                if entry.is_none_or(|d| next_dist < d) {
                    *entry = Some(next_dist);
                }
                queue.push_back((next, next_phase, next_dist));
            }
        }
    }
    (best, out)
}

/// Shortest valley-free distances (in AS hops) from `root` to every AS in
/// the graph on the given plane.
///
/// The traversal walks paths *from the root outward*, i.e. it asks "what is
/// the shortest AS path the root could use to reach X under export
/// policies consistent with the annotated relationships". Links without a
/// relationship annotation are not traversed. Returns `None` for
/// unreachable ASes (including ASes not in the graph's node range).
///
/// The result vector is indexed by [`NodeId`] index.
pub fn valley_free_distances(graph: &AsGraph, root: Asn, plane: IpVersion) -> Vec<Option<u32>> {
    layered_search(graph, root, plane).1
}

/// The set of ASes reachable from `root` through valley-free paths on the
/// given plane (always contains the root itself if it is in the graph).
pub fn valley_free_reachable(graph: &AsGraph, root: Asn, plane: IpVersion) -> Vec<Asn> {
    valley_free_distances(graph, root, plane)
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|_| graph.asn(NodeId(i as u32))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use Relationship::*;

    #[test]
    fn valley_free_rule_accepts_canonical_shapes() {
        // pure uphill
        assert!(is_valley_free(&[CustomerToProvider, CustomerToProvider]));
        // pure downhill
        assert!(is_valley_free(&[ProviderToCustomer, ProviderToCustomer]));
        // up, peer, down
        assert!(is_valley_free(&[CustomerToProvider, PeerToPeer, ProviderToCustomer]));
        // up then down without peering
        assert!(is_valley_free(&[CustomerToProvider, ProviderToCustomer]));
        // single link of any kind
        for r in Relationship::ALL {
            assert!(is_valley_free(&[r]));
        }
        // empty path (single AS)
        assert!(is_valley_free(&[]));
    }

    #[test]
    fn valley_free_rule_rejects_valleys() {
        // down then up: classic valley
        assert!(!is_valley_free(&[ProviderToCustomer, CustomerToProvider]));
        assert_eq!(first_violation(&[ProviderToCustomer, CustomerToProvider]), Some(1));
        // peer then up
        assert!(!is_valley_free(&[PeerToPeer, CustomerToProvider]));
        // two peering links
        assert!(!is_valley_free(&[PeerToPeer, PeerToPeer]));
        // peer after descending
        assert!(!is_valley_free(&[ProviderToCustomer, PeerToPeer]));
        // leak: up, peer, up
        assert_eq!(first_violation(&[CustomerToProvider, PeerToPeer, CustomerToProvider]), Some(2));
    }

    #[test]
    fn siblings_are_transparent() {
        assert!(is_valley_free(&[SiblingToSibling, CustomerToProvider, SiblingToSibling]));
        assert!(is_valley_free(&[ProviderToCustomer, SiblingToSibling, ProviderToCustomer]));
        assert!(is_valley_free(&[
            CustomerToProvider,
            SiblingToSibling,
            PeerToPeer,
            SiblingToSibling,
            ProviderToCustomer
        ]));
        // A sibling link does not reset the phase: still a valley.
        assert!(!is_valley_free(&[ProviderToCustomer, SiblingToSibling, CustomerToProvider]));
    }

    /// A small annotated topology used by the traversal tests:
    ///
    /// ```text
    ///        10 ---- 20        (10-20 p2p)
    ///       /  \       \
    ///      1    2       3      (10 provider of 1,2; 20 provider of 3)
    ///            \     /
    ///             4   /        (2 provider of 4; 3 p2p 4 on v6 only)
    /// ```
    fn topology() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(10), Asn(20), Relationship::PeerToPeer);
        g.annotate_both(Asn(10), Asn(1), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(10), Asn(2), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(20), Asn(3), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(4), Relationship::ProviderToCustomer);
        g.annotate(Asn(3), Asn(4), IpVersion::V6, Relationship::PeerToPeer);
        g
    }

    #[test]
    fn classify_path_on_graph() {
        let g = topology();
        // 1 climbs to 10, peers to 20, descends to 3: valley-free.
        assert_eq!(
            classify_path(&g, &[Asn(1), Asn(10), Asn(20), Asn(3)], IpVersion::V4),
            PathValidity::ValleyFree
        );
        // 1 -> 10 -> 2 -> 4: up then down, fine.
        assert!(
            classify_path(&g, &[Asn(1), Asn(10), Asn(2), Asn(4)], IpVersion::V4).is_valley_free()
        );
        // 10 -> 1 (down) then 1 -> 10 is a loop, but 10 -> 2 -> 4 -> 3 on v6:
        // down, down, then peer after descending = valley at link index 2.
        assert_eq!(
            classify_path(&g, &[Asn(10), Asn(2), Asn(4), Asn(3)], IpVersion::V6),
            PathValidity::Valley { violation_index: 2 }
        );
        // Same path on v4: the 4-3 link is not annotated (not even present).
        assert_eq!(
            classify_path(&g, &[Asn(10), Asn(2), Asn(4), Asn(3)], IpVersion::V4),
            PathValidity::Unknown { missing_index: 2 }
        );
        assert!(PathValidity::Valley { violation_index: 2 }.is_valley());
        assert!(!PathValidity::Valley { violation_index: 2 }.is_valley_free());
    }

    #[test]
    fn valley_free_distances_from_stub() {
        let g = topology();
        let dist = valley_free_distances(&g, Asn(1), IpVersion::V4);
        let d = |asn: u32| dist[g.node(Asn(asn)).unwrap().index()];
        assert_eq!(d(1), Some(0));
        assert_eq!(d(10), Some(1));
        assert_eq!(d(2), Some(2)); // 1 up 10 down 2
        assert_eq!(d(4), Some(3)); // 1 up 10 down 2 down 4
        assert_eq!(d(20), Some(2)); // 1 up 10 peer 20
        assert_eq!(d(3), Some(3)); // 1 up 10 peer 20 down 3
    }

    #[test]
    fn valley_free_distances_respect_the_rule() {
        let g = topology();
        // From 4 on the v4 plane: 4 can climb to 2, to 10, peer to 20, down to 3.
        let dist = valley_free_distances(&g, Asn(4), IpVersion::V4);
        let d = |asn: u32| dist[g.node(Asn(asn)).unwrap().index()];
        assert_eq!(d(3), Some(4));
        // On the v6 plane the 4-3 peering gives a 1-hop path.
        let dist6 = valley_free_distances(&g, Asn(4), IpVersion::V6);
        let d6 = |asn: u32| dist6[g.node(Asn(asn)).unwrap().index()];
        assert_eq!(d6(3), Some(1));
        // But from 3's side, 3 cannot reach 1 via 4 (peer then up is a
        // valley); it must go 3 up 20 peer 10 down 1 = 3 hops.
        let dist3 = valley_free_distances(&g, Asn(3), IpVersion::V6);
        let d3 = |asn: u32| dist3[g.node(Asn(asn)).unwrap().index()];
        assert_eq!(d3(1), Some(3));
    }

    #[test]
    fn peer_only_islands_are_unreachable_beyond_one_hop() {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::PeerToPeer);
        g.annotate_both(Asn(2), Asn(3), Relationship::PeerToPeer);
        let dist = valley_free_distances(&g, Asn(1), IpVersion::V4);
        let d = |asn: u32| dist[g.node(Asn(asn)).unwrap().index()];
        assert_eq!(d(2), Some(1));
        assert_eq!(d(3), None, "two consecutive peering links are a valley");
    }

    #[test]
    fn unannotated_links_are_not_traversed() {
        let mut g = AsGraph::new();
        g.observe_link(Asn(1), Asn(2), IpVersion::V6);
        g.annotate(Asn(2), Asn(3), IpVersion::V6, Relationship::ProviderToCustomer);
        let dist = valley_free_distances(&g, Asn(1), IpVersion::V6);
        assert_eq!(dist[g.node(Asn(2)).unwrap().index()], None);
        assert_eq!(dist[g.node(Asn(3)).unwrap().index()], None);
    }

    #[test]
    fn unknown_root_yields_all_none() {
        let g = topology();
        let dist = valley_free_distances(&g, Asn(999), IpVersion::V4);
        assert!(dist.iter().all(|d| d.is_none()));
    }

    #[test]
    fn reachable_set_matches_distances() {
        let g = topology();
        let reach = valley_free_reachable(&g, Asn(1), IpVersion::V4);
        assert_eq!(reach.len(), 6);
        let reach6 = valley_free_reachable(&g, Asn(3), IpVersion::V6);
        assert!(reach6.contains(&Asn(3)));
        assert!(reach6.contains(&Asn(4)));
    }

    #[test]
    fn sibling_links_extend_reachability() {
        // 1 --s2s-- 2 --p2c--> 3 ; from 3, climbing to 2, sibling to 1 is legal.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::SiblingToSibling);
        g.annotate_both(Asn(2), Asn(3), Relationship::ProviderToCustomer);
        let dist = valley_free_distances(&g, Asn(3), IpVersion::V4);
        assert_eq!(dist[g.node(Asn(1)).unwrap().index()], Some(2));
        // And descending across a sibling after the peak is legal too.
        let dist1 = valley_free_distances(&g, Asn(1), IpVersion::V4);
        assert_eq!(dist1[g.node(Asn(3)).unwrap().index()], Some(2));
    }
}
