//! # asgraph
//!
//! A compact AS-level topology graph with *per-plane* (IPv4/IPv6) link
//! presence and relationship annotations, plus the graph algorithms the
//! paper's analysis needs:
//!
//! * [`graph::AsGraph`] — node/edge storage with dense `u32` node ids,
//!   undirected adjacency, and an independent relationship annotation for
//!   each IP plane (the core requirement for studying *hybrid* links).
//! * [`valley`] — valley-free path validation and the three-state
//!   (uphill / peer / downhill) BFS that computes shortest valley-free
//!   paths and valley-free reachability.
//! * [`delta`] — a reusable [`delta::DistanceMap`] that repairs a
//!   valley-free distance map incrementally when one edge's relationship
//!   changes (frontier re-expansion with a proven full-BFS fallback),
//!   the engine behind the Figure 2 correction sweep.
//! * [`customer_tree`](mod@customer_tree) — customer trees and cones ("all ASes reachable
//!   from a root through p2c links"), the metric Figure 2 of the paper is
//!   built on.
//! * [`tiers`] — a simple transit-degree tier classification (tier-1 /
//!   tier-2 / stub) used to characterise where hybrid links sit.
//! * [`metrics`] — degree statistics, connected components, and plain
//!   (non-policy) shortest-path metrics.
//! * [`arena`] — contiguous slice/label arenas for resident snapshots:
//!   flat per-origin path storage and precomputed BFS label strides that
//!   materialise a [`delta::DistanceMap`] without re-running the search.
//!
//! ```
//! use asgraph::{AsGraph, Relationship, IpVersion};
//! use bgp_types::Asn;
//!
//! let mut g = AsGraph::new();
//! // AS1 is the provider of AS2 on both planes...
//! g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
//! // ...but AS1-AS3 is a peering on IPv4 and transit on IPv6 (hybrid).
//! g.annotate(Asn(1), Asn(3), IpVersion::V4, Relationship::PeerToPeer);
//! g.annotate(Asn(1), Asn(3), IpVersion::V6, Relationship::ProviderToCustomer);
//!
//! assert_eq!(g.relationship(Asn(1), Asn(3), IpVersion::V4), Some(Relationship::PeerToPeer));
//! assert_eq!(g.relationship(Asn(3), Asn(1), IpVersion::V6), Some(Relationship::CustomerToProvider));
//! let tree = asgraph::customer_tree::customer_tree(&g, Asn(1), IpVersion::V6);
//! assert_eq!(tree.len(), 2, "AS2 and AS3 are both in AS1's IPv6 customer tree");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod customer_tree;
pub mod delta;
pub mod graph;
pub mod metrics;
pub mod tiers;
pub mod valley;

pub use arena::{LabelArena, SliceArena};
pub use bgp_types::{Asn, IpVersion, Relationship};
pub use customer_tree::{customer_cone_sizes, customer_tree, tree_union_metrics, TreeMetrics};
pub use delta::{DeltaOutcome, DistanceMap, EdgeCorrection, RemovalPolicy};
pub use graph::{AsGraph, EdgeId, EdgeView, MemoryBreakdown, NeighborsById, NodeId};
pub use metrics::{connected_components, degree_stats, GraphSummary};
pub use tiers::{classify_tiers, Tier, TierMap};
pub use valley::{classify_path, is_valley_free, valley_free_distances, PathValidity};
