//! # hybridd
//!
//! The resident query daemon: build one scenario snapshot ([`hybrid_tor::
//! service::ResidentState`]) and serve relationship, customer-tree,
//! visibility and what-if queries over a hand-rolled length-prefixed
//! binary protocol on `std::net` — no async runtime, vendor-shim
//! friendly.
//!
//! * [`protocol`] — the wire format: framed requests/responses with
//!   strict decoding (truncation, oversizing and trailing bytes are all
//!   errors).
//! * [`server`] — the accept loop: per-connection batching, deterministic
//!   [`routesim::shard_map`] fan-out, and copy-on-write epoch snapshots
//!   ([`routesim::EpochCell`]) so reloads never block queries.
//! * [`loadgen`] — closed-loop clients replaying a deterministic ChaCha8
//!   query mix, recording throughput and p50/p99 latency, optionally
//!   byte-checking every response against a locally rebuilt snapshot.
//!
//! The crate ships two binaries: `hybridd` (the daemon) and `loadgen`
//! (the measurement/validation client). See the repository README's
//! "Resident service" section for the frame layout and a quickstart.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod loadgen;
pub mod protocol;
pub mod server;

pub use loadgen::{query_mix, Connection, LoadgenConfig, LoadgenReport};
pub use protocol::{read_frame, write_frame, Request, Response, WireError, MAX_FRAME};
pub use server::{answer, Rebuild, Server, ServerConfig};
