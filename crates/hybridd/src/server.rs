//! The resident daemon: accept loop, per-connection batching, epoch-aware
//! snapshot sharing.
//!
//! Architecture (the performance story of the crate):
//!
//! * **Immutable snapshots.** The scenario state lives in a
//!   [`routesim::EpochCell`] as an `Arc<Versioned<ResidentState>>`. Every
//!   connection holds its own handle; a reload builds the replacement
//!   outside any lock and publishes it with one pointer swap, so queries
//!   never block on a rebuild.
//! * **Batching.** A connection reads one request (blocking), then drains
//!   whatever complete frames the read buffer already holds — up to the
//!   configured batch size — and answers the whole batch against the
//!   snapshot captured at its start.
//! * **Fan-out.** A batch is answered through [`routesim::shard_map`],
//!   the same deterministic in-order worker pool the pipeline uses, so
//!   responses come back in request order at any worker count.
//!
//! Responses are a pure function of (snapshot, request) — the what-if
//! scratch graph is restored after every query — so the byte stream a
//! client sees is independent of worker count, batch size, and connection
//! interleaving. The service determinism suite pins exactly that.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hybrid_tor::service::ResidentState;
use routesim::{shard_map, EpochCell, Versioned};

use crate::protocol::{read_frame, write_frame, Request, Response};

/// How a reloaded snapshot is produced: a closure rebuilding the resident
/// state from the daemon's original inputs.
pub type Rebuild = Arc<dyn Fn() -> ResidentState + Send + Sync>;

/// Execution knobs of one server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads for per-batch query fan-out (resolved; `>= 1`).
    pub workers: usize,
    /// Maximum requests answered per batch tick (`>= 1`).
    pub batch: usize,
    /// How stale a connection's snapshot handle may grow before it
    /// re-checks the epoch cell, in milliseconds (`0` = every batch).
    pub epoch_check_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 1, batch: 32, epoch_check_ms: 50 }
    }
}

/// A bound daemon, ready to serve.
pub struct Server {
    listener: TcpListener,
    cell: Arc<EpochCell<ResidentState>>,
    rebuild: Rebuild,
    config: ServerConfig,
}

impl Server {
    /// Bind to `addr` with an initial snapshot and a rebuild recipe for
    /// [`Request::Reload`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        state: ResidentState,
        rebuild: Rebuild,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, cell: Arc::new(EpochCell::new(state)), rebuild, config })
    }

    /// The address the server actually bound (port 0 resolves here).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The epoch cell, for callers that publish reloads out of band.
    pub fn cell(&self) -> Arc<EpochCell<ResidentState>> {
        Arc::clone(&self.cell)
    }

    /// Accept connections forever, one handler thread per connection.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let cell = Arc::clone(&self.cell);
            let rebuild = Arc::clone(&self.rebuild);
            let config = self.config.clone();
            std::thread::spawn(move || {
                // A failed connection only ends that connection.
                let _ = handle_connection(stream, cell, rebuild, &config);
            });
        }
        Ok(())
    }
}

/// What one batch slot resolved to before the sequential write-back pass.
enum Planned {
    /// A pure response, computed on the worker pool.
    Pure(Response),
    /// A reload: published (and answered) sequentially, in stream order.
    Reload,
}

fn handle_connection(
    stream: TcpStream,
    cell: Arc<EpochCell<ResidentState>>,
    rebuild: Rebuild,
    config: &ServerConfig,
) -> Result<(), crate::protocol::WireError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut snapshot: Arc<Versioned<ResidentState>> = cell.load();
    let mut checked = Instant::now();
    loop {
        // Block for the first request of the tick; stop serving on EOF or
        // a transport-level framing violation (a peer that sends garbage
        // lengths cannot be resynchronised).
        let first = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(_) => return Ok(()),
        };
        let mut frames = vec![first];
        // Greedily drain already-buffered complete frames into the batch:
        // pipelined clients get amortised fan-out, single-shot clients
        // keep single-request latency.
        while frames.len() < config.batch && !reader.buffer().is_empty() {
            frames.push(match read_frame(&mut reader) {
                Ok(frame) => frame,
                Err(_) => return Ok(()),
            });
        }

        // Refresh the snapshot handle at batch granularity, rate-limited
        // by the epoch-check knob (load() is cheap but not free).
        if checked.elapsed() >= Duration::from_millis(config.epoch_check_ms) {
            snapshot = cell.load();
            checked = Instant::now();
        }

        let requests: Vec<Result<Request, crate::protocol::WireError>> =
            frames.iter().map(|frame| Request::decode(frame)).collect();
        let state = snapshot.value();
        let planned: Vec<Planned> = shard_map(&requests, config.workers, |request| {
            match request {
                Ok(Request::Reload) => Planned::Reload,
                Ok(request) => Planned::Pure(answer(state, request)),
                // A malformed payload is an application-level error: the
                // framing is intact, so the stream stays usable.
                Err(e) => Planned::Pure(Response::Error(e.to_string())),
            }
        });
        for plan in planned {
            let response = match plan {
                Planned::Pure(response) => response,
                Planned::Reload => {
                    let epoch = cell.publish((rebuild)());
                    snapshot = cell.load();
                    checked = Instant::now();
                    Response::Reloaded { epoch }
                }
            };
            write_frame(&mut writer, &response.encode())?;
        }
        writer.flush()?;
    }
}

/// Answer one request against one snapshot. Pure: equal `(state, request)`
/// pairs produce equal responses, which is what lets the server fan a
/// batch out over workers — and what lets `loadgen --check` recompute the
/// expected bytes locally. [`Request::Reload`] is the one non-pure request
/// and is intercepted by the server loop before this function.
pub fn answer(state: &ResidentState, request: &Request) -> Response {
    match *request {
        Request::Relationship { a, b, plane } => {
            Response::Relationship(state.relationship(a, b, plane))
        }
        Request::CustomerTree { root, plane } => {
            Response::CustomerTree(state.customer_tree(root, plane))
        }
        Request::Visibility { asn } => Response::Visibility(state.visibility(asn)),
        Request::WhatIf { a, b, plane, new, root } => state
            .what_if(a, b, plane, new, root)
            .map(Response::WhatIf)
            .unwrap_or_else(Response::Error),
        Request::Summary => Response::Json(state.summary_json().to_string()),
        Request::ReportJson => Response::Json(state.report_json().to_string()),
        Request::MemStats => Response::MemStats(state.memory()),
        Request::Universe => Response::Universe {
            asns: state.universe().to_vec(),
            hybrid_pairs: state.hybrid_pairs().to_vec(),
        },
        Request::Reload => Response::Error("reload is handled by the server loop".to_string()),
    }
}
