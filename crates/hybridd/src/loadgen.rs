//! Closed-loop load generation with a deterministic query mix.
//!
//! The generator fetches the AS universe from the server once, then runs
//! `clients` closed-loop connections, each replaying a ChaCha8-derived
//! query mix (seeded from `seed` and the client index, so every run with
//! the same inputs issues the same queries in the same per-client order).
//! Per-request round-trip latencies are recorded and folded into p50/p99;
//! with `--check`, every response is byte-compared against a locally
//! rebuilt [`ResidentState`] — the same fresh `Pipeline::run` the server
//! performed — so a passing run proves the resident snapshot answers are
//! byte-equal to freshly computed pipeline results.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use bgp_types::{Asn, IpVersion, Relationship};
use hybrid_tor::service::ResidentState;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::protocol::{read_frame, write_frame, Request, Response, WireError};
use crate::server::answer;

/// One framed connection to a daemon.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Connect once.
    pub fn connect(addr: &str) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connect, retrying for up to `wait` (100 ms between attempts) — for
    /// racing a daemon that is still building its snapshot.
    pub fn connect_with_retry(addr: &str, wait: Duration) -> Result<Self, WireError> {
        let deadline = Instant::now() + wait;
        loop {
            match Self::connect(addr) {
                Ok(conn) => return Ok(conn),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }

    /// Send one request and read the raw response payload.
    pub fn roundtrip_raw(&mut self, request: &Request) -> Result<Vec<u8>, WireError> {
        use std::io::Write;
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        read_frame(&mut self.reader)
    }

    /// Send one request and decode the response.
    pub fn query(&mut self, request: &Request) -> Result<Response, WireError> {
        Response::decode(&self.roundtrip_raw(request)?)
    }
}

/// The deterministic query mix: `count` requests drawn from `universe`
/// (and `hybrid_pairs` for what-ifs) by a ChaCha8 stream seeded with
/// `seed`. Weights: 50% relationship lookups, 15% customer trees, 15%
/// visibility, 12% what-if corrections (falling back to relationship
/// lookups when the snapshot has no hybrids), 4% summaries, 4% memory
/// stats.
pub fn query_mix(
    universe: &[Asn],
    hybrid_pairs: &[(Asn, Asn)],
    seed: u64,
    count: usize,
) -> Vec<Request> {
    assert!(!universe.is_empty(), "cannot draw queries from an empty universe");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pick_asn = |rng: &mut ChaCha8Rng| universe[rng.next_u32() as usize % universe.len()];
    let pick_plane =
        |rng: &mut ChaCha8Rng| if rng.next_u32() & 1 == 0 { IpVersion::V4 } else { IpVersion::V6 };
    (0..count)
        .map(|_| match rng.next_u32() % 100 {
            0..=49 => Request::Relationship {
                a: pick_asn(&mut rng),
                b: pick_asn(&mut rng),
                plane: pick_plane(&mut rng),
            },
            50..=64 => {
                Request::CustomerTree { root: pick_asn(&mut rng), plane: pick_plane(&mut rng) }
            }
            65..=79 => Request::Visibility { asn: pick_asn(&mut rng) },
            80..=91 if !hybrid_pairs.is_empty() => {
                let (a, b) = hybrid_pairs[rng.next_u32() as usize % hybrid_pairs.len()];
                let new = [
                    Relationship::ProviderToCustomer,
                    Relationship::CustomerToProvider,
                    Relationship::PeerToPeer,
                    Relationship::SiblingToSibling,
                ][rng.next_u32() as usize % 4];
                Request::WhatIf { a, b, plane: pick_plane(&mut rng), new, root: pick_asn(&mut rng) }
            }
            80..=91 => Request::Relationship {
                a: pick_asn(&mut rng),
                b: pick_asn(&mut rng),
                plane: pick_plane(&mut rng),
            },
            92..=95 => Request::Summary,
            _ => Request::MemStats,
        })
        .collect()
}

/// Per-client derived seed: decorrelates client streams while staying a
/// pure function of (seed, client index).
fn client_seed(seed: u64, client: usize) -> u64 {
    seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The daemon address (`host:port`).
    pub addr: String,
    /// Total requests across all clients.
    pub requests: usize,
    /// Closed-loop client connections.
    pub clients: usize,
    /// Mix seed.
    pub seed: u64,
    /// How long to retry the initial connection.
    pub wait: Duration,
}

/// What one load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests actually issued (mix requests; the universe fetch and
    /// check probes are not counted).
    pub requests: usize,
    /// Wall-clock of the measurement section.
    pub elapsed: Duration,
    /// Requests per second over the measurement section.
    pub throughput_qps: f64,
    /// Median round-trip latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile round-trip latency, nanoseconds.
    pub p99_ns: u64,
    /// Responses whose bytes differed from the local expectation (always
    /// 0 without a check state).
    pub mismatches: usize,
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Run the generator. With `expected`, every response — plus one
/// report-JSON and one universe probe — is byte-compared against the
/// local state.
pub fn run(
    config: &LoadgenConfig,
    expected: Option<&ResidentState>,
) -> Result<LoadgenReport, WireError> {
    // Fetch the universe (and cross-check the big frames while at it).
    let mut probe = Connection::connect_with_retry(&config.addr, config.wait)?;
    let universe_raw = probe.roundtrip_raw(&Request::Universe)?;
    let mut mismatches = 0usize;
    if let Some(state) = expected {
        if universe_raw != answer(state, &Request::Universe).encode() {
            mismatches += 1;
        }
        let report_raw = probe.roundtrip_raw(&Request::ReportJson)?;
        if report_raw != answer(state, &Request::ReportJson).encode() {
            mismatches += 1;
        }
    }
    let (universe, hybrid_pairs) = match Response::decode(&universe_raw)? {
        Response::Universe { asns, hybrid_pairs } => (asns, hybrid_pairs),
        other => {
            return Err(WireError::Io(std::io::Error::other(format!(
                "universe query answered with {other:?}"
            ))))
        }
    };
    drop(probe);

    let clients = config.clients.max(1);
    let per_client =
        |c: usize| config.requests / clients + usize::from(c < config.requests % clients);
    let started = Instant::now();
    let results: Vec<Result<(Vec<u64>, usize), WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let universe = &universe;
                let hybrid_pairs = &hybrid_pairs;
                scope.spawn(move || {
                    let mix = query_mix(
                        universe,
                        hybrid_pairs,
                        client_seed(config.seed, c),
                        per_client(c),
                    );
                    let mut conn = Connection::connect_with_retry(&config.addr, config.wait)?;
                    let mut latencies = Vec::with_capacity(mix.len());
                    let mut mismatches = 0usize;
                    for request in &mix {
                        let sent = Instant::now();
                        let raw = conn.roundtrip_raw(request)?;
                        latencies
                            .push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        if let Some(state) = expected {
                            if raw != answer(state, request).encode() {
                                mismatches += 1;
                            }
                        }
                    }
                    Ok((latencies, mismatches))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen client panicked")).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies = Vec::with_capacity(config.requests);
    for result in results {
        let (client_latencies, client_mismatches) = result?;
        latencies.extend(client_latencies);
        mismatches += client_mismatches;
    }
    latencies.sort_unstable();
    let requests = latencies.len();
    Ok(LoadgenReport {
        requests,
        elapsed,
        throughput_qps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ns: percentile(&latencies, 50),
        p99_ns: percentile(&latencies, 99),
        mismatches,
    })
}
