//! The resident daemon binary: build one scenario snapshot, then serve
//! queries until killed.
//!
//! ```text
//! hybridd [--tiny | --small | --scale 10k|50k|100k]
//! ```
//!
//! The listen address and execution knobs come from the environment
//! (`HYBRID_ADDR`, `HYBRID_BATCH`, `HYBRID_EPOCH_CHECK_MS`,
//! `HYBRID_WORKERS`); see the repository README's "Resident service"
//! section.

use std::io::Write;
use std::sync::{Arc, Mutex};

use hybrid_tor::ingest::{ApplyStats, LiveRib};
use hybrid_tor::pipeline::PipelineInput;
use hybrid_tor::service::ResidentState;
use hybridd::{Server, ServerConfig};
use routesim::UpdateStreamConfig;

fn main() {
    let scale = bench::scale_from_args();
    let knobs = bench::ExecKnobs::from_env();
    let pipeline = knobs.pipeline();
    let scenario = bench::build_scenario(&scale);

    // With HYBRID_UPDATE_WINDOWS > 0 the daemon runs in streaming mode: it
    // keeps a resident LiveRib and every epoch-reload request (`X`)
    // advances one synthetic update window (cycling) before rebuilding,
    // instead of re-propagating the scenario from scratch.
    let (state, rebuild): (ResidentState, hybridd::Rebuild) = if knobs.update_windows > 0 {
        let dictionary = scenario.registry.build_dictionary();
        let truth = scenario.truth.clone();
        let stream = scenario.update_stream(&UpdateStreamConfig {
            windows: knobs.update_windows,
            ..Default::default()
        });
        let live = LiveRib::from_snapshot(&scenario.pooled_snapshot(knobs.threads()));
        let build_from = {
            let pipeline = pipeline.clone();
            move |live: &LiveRib| {
                let input = PipelineInput::builder()
                    .snapshot(live.snapshot(), dictionary.clone(), Some(truth.clone()))
                    .build()
                    .expect("snapshot sources cannot fail");
                ResidentState::from_input(input, &pipeline)
            }
        };
        let state = build_from(&live);
        let session = Mutex::new((live, 0usize));
        let rebuild: hybridd::Rebuild = Arc::new(move || {
            let mut session = session.lock().expect("ingest session lock");
            let (live, next) = &mut *session;
            if !stream.is_empty() {
                let window = *next % stream.len();
                let mut stats = ApplyStats::default();
                for record in &stream[window] {
                    live.apply_record(record, &mut stats);
                }
                *next += 1;
                println!(
                    "hybridd: applied update window {window} ({} changed, {} redundant, {} routes resident)",
                    stats.changed,
                    stats.redundant,
                    live.len(),
                );
            }
            build_from(live)
        });
        (state, rebuild)
    } else {
        let state = ResidentState::build(&scenario, &pipeline);
        let pipeline = pipeline.clone();
        let rebuild: hybridd::Rebuild =
            Arc::new(move || ResidentState::build(&scenario, &pipeline));
        (state, rebuild)
    };
    let memory = state.memory();

    let config = ServerConfig {
        workers: knobs.threads(),
        batch: knobs.batch,
        epoch_check_ms: knobs.epoch_check_ms,
    };
    let server = Server::bind(knobs.addr, state, rebuild, config)
        .unwrap_or_else(|e| panic!("hybridd: cannot bind {}: {e}", knobs.addr));
    let addr = server.local_addr().expect("bound listener has a local address");

    // Flush explicitly: stdout may be block-buffered under a pipe, and the
    // CI smoke test greps this line to know the daemon is up.
    println!("hybridd: listening on {addr}");
    println!(
        "hybridd: resident memory {} bytes (graph map {} + graph csr {} + rib arena {} + label arena {})",
        memory.total(),
        memory.graph_map_bytes,
        memory.graph_csr_bytes,
        memory.rib_arena_bytes,
        memory.label_arena_bytes,
    );
    std::io::stdout().flush().ok();

    server.run().expect("accept loop failed");
}
