//! The resident daemon binary: build one scenario snapshot, then serve
//! queries until killed.
//!
//! ```text
//! hybridd [--tiny | --small | --scale 10k|50k|100k]
//! ```
//!
//! The listen address and execution knobs come from the environment
//! (`HYBRID_ADDR`, `HYBRID_BATCH`, `HYBRID_EPOCH_CHECK_MS`,
//! `HYBRID_WORKERS`); see the repository README's "Resident service"
//! section.

use std::io::Write;
use std::sync::Arc;

use hybrid_tor::service::ResidentState;
use hybridd::{Server, ServerConfig};

fn main() {
    let scale = bench::scale_from_args();
    let pipeline = bench::configured_pipeline();
    let scenario = bench::build_scenario(&scale);

    let state = ResidentState::build(&scenario, &pipeline);
    let memory = state.memory();

    let config = ServerConfig {
        workers: bench::threads(),
        batch: bench::configured_batch(),
        epoch_check_ms: bench::configured_epoch_check_ms(),
    };
    let rebuild: hybridd::Rebuild = Arc::new(move || ResidentState::build(&scenario, &pipeline));
    let server = Server::bind(bench::configured_addr(), state, rebuild, config)
        .unwrap_or_else(|e| panic!("hybridd: cannot bind {}: {e}", bench::configured_addr()));
    let addr = server.local_addr().expect("bound listener has a local address");

    // Flush explicitly: stdout may be block-buffered under a pipe, and the
    // CI smoke test greps this line to know the daemon is up.
    println!("hybridd: listening on {addr}");
    println!(
        "hybridd: resident memory {} bytes (graph map {} + graph csr {} + rib arena {} + label arena {})",
        memory.total(),
        memory.graph_map_bytes,
        memory.graph_csr_bytes,
        memory.rib_arena_bytes,
        memory.label_arena_bytes,
    );
    std::io::stdout().flush().ok();

    server.run().expect("accept loop failed");
}
