//! The measurement/validation client binary.
//!
//! ```text
//! loadgen [--requests N] [--clients C] [--seed S] [--wait-secs W]
//!         [--check [--tiny | --small | --scale 10k|50k|100k]]
//! ```
//!
//! Connects to `HYBRID_ADDR` (default `127.0.0.1:7411`), replays a
//! deterministic query mix, and prints throughput and p50/p99 latency.
//! With `--check` it also rebuilds the resident state locally — from the
//! given scale flags and the same env-configured pipeline the daemon uses
//! — and byte-compares every response; any mismatch exits non-zero.

use std::process::ExitCode;
use std::time::Duration;

use hybrid_tor::service::ResidentState;
use hybridd::{loadgen, LoadgenConfig};

struct Args {
    requests: usize,
    clients: usize,
    seed: u64,
    wait: Duration,
    check: bool,
    scale_args: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 1000,
        clients: 4,
        seed: 42,
        wait: Duration::from_secs(30),
        check: false,
        scale_args: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value_of =
            |flag: &str| argv.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--requests" => {
                args.requests = parse_count("--requests", &value_of("--requests")?)?;
            }
            "--clients" => {
                args.clients = parse_count("--clients", &value_of("--clients")?)?;
            }
            "--seed" => {
                let raw = value_of("--seed")?;
                args.seed = raw
                    .parse()
                    .map_err(|_| format!("--seed must be an unsigned integer, got {raw:?}"))?;
            }
            "--wait-secs" => {
                let raw = value_of("--wait-secs")?;
                let secs: u64 = raw.parse().map_err(|_| {
                    format!("--wait-secs must be an unsigned integer (seconds), got {raw:?}")
                })?;
                args.wait = Duration::from_secs(secs);
            }
            "--check" => args.check = true,
            // Scale flags are forwarded verbatim to the bench parser so
            // `--check` rebuilds exactly the scenario the daemon serves.
            "--tiny" | "--small" => args.scale_args.push(arg),
            "--scale" => {
                let value = value_of("--scale")?;
                args.scale_args.push(arg);
                args.scale_args.push(value);
            }
            other if other.starts_with("--scale=") => args.scale_args.push(arg),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn parse_count(flag: &str, raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} must be a positive integer (>= 1), got {raw:?}")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            return ExitCode::FAILURE;
        }
    };

    let expected = if args.check {
        let scale =
            bench::scale_from_argv(&args.scale_args).unwrap_or_else(|message| panic!("{message}"));
        let scenario = bench::build_scenario(&scale);
        Some(ResidentState::build(&scenario, &bench::ExecKnobs::from_env().pipeline()))
    } else {
        None
    };

    let config = LoadgenConfig {
        addr: bench::ExecKnobs::from_env().addr.to_string(),
        requests: args.requests,
        clients: args.clients,
        seed: args.seed,
        wait: args.wait,
    };
    let report = match loadgen::run(&config, expected.as_ref()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "loadgen: {} requests in {:.3}s ({:.0} qps), p50 {} ns, p99 {} ns, mismatches {}",
        report.requests,
        report.elapsed.as_secs_f64(),
        report.throughput_qps,
        report.p50_ns,
        report.p99_ns,
        report.mismatches,
    );
    if report.mismatches > 0 {
        eprintln!("loadgen: {} responses differed from the fresh pipeline", report.mismatches);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
