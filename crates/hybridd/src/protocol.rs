//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian payload length followed by the payload. A length of zero is
//! invalid (every payload starts with at least an opcode or status byte)
//! and lengths above [`MAX_FRAME`] are rejected before any allocation, so
//! a malformed or hostile peer cannot make the server reserve gigabytes.
//!
//! Request payloads start with an opcode byte; response payloads start
//! with a status byte (`0` = ok, `1` = error) — ok responses carry a
//! variant tag next, error responses a UTF-8 message. All integers are
//! big-endian; ASNs are `u32`, planes are `0` = IPv4 / `1` = IPv6,
//! relationships are `0` = provider-to-customer, `1` =
//! customer-to-provider, `2` = peer-to-peer, `3` = sibling-to-sibling.
//! Decoding demands full consumption: trailing bytes are an error, so a
//! frame has exactly one valid reading.

use std::fmt;
use std::io::{Read, Write};

use bgp_types::{Asn, IpVersion, Relationship};
use hybrid_tor::service::{ServiceMemory, VisibilityStats, WhatIfReply};

/// Hard cap on one frame's payload bytes (8 MiB — comfortably above the
/// largest legitimate response, the full report JSON at 100k-AS scale).
pub const MAX_FRAME: usize = 8 << 20;

/// Everything that can go wrong encoding, decoding or transporting a
/// frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes clean EOF between frames).
    Io(std::io::Error),
    /// A frame header announced more than [`MAX_FRAME`] payload bytes.
    Oversized(usize),
    /// A frame header announced a zero-length payload.
    Empty,
    /// The payload ended before the announced structure was complete.
    Truncated,
    /// The first request byte is not a known opcode.
    UnknownOpcode(u8),
    /// The response tag byte is not a known variant.
    UnknownTag(u8),
    /// A coded enum field (`plane`, `relationship`, `outcome`, option
    /// marker) held an out-of-range value; the field name is carried.
    BadEnum(&'static str, u8),
    /// An error message or JSON body was not valid UTF-8.
    BadUtf8,
    /// The payload decoded fully but left this many unread bytes.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Empty => write!(f, "zero-length frame"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::UnknownOpcode(op) => write!(f, "unknown request opcode {op}"),
            WireError::UnknownTag(tag) => write!(f, "unknown response tag {tag}"),
            WireError::BadEnum(field, v) => write!(f, "out-of-range {field} value {v}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in text field"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after a complete message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Read one frame's payload from `r`.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 {
        return Err(WireError::Empty);
    }
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one frame (header + payload) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.is_empty() {
        return Err(WireError::Empty);
    }
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// A query the daemon answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// The inferred relationship `a → b` on one plane (opcode 1).
    Relationship {
        /// First endpoint (orientation source).
        a: Asn,
        /// Second endpoint.
        b: Asn,
        /// The plane to read.
        plane: IpVersion,
    },
    /// The customer tree of `root` on one plane (opcode 2).
    CustomerTree {
        /// The tree root.
        root: Asn,
        /// The plane to descend.
        plane: IpVersion,
    },
    /// Per-AS IPv6 path-visibility statistics (opcode 3).
    Visibility {
        /// The AS to report on.
        asn: Asn,
    },
    /// What-if single-link correction: reachability from `root` with the
    /// `a`–`b` relationship on `plane` set to `new` (opcode 4).
    WhatIf {
        /// First endpoint of the corrected link.
        a: Asn,
        /// Second endpoint of the corrected link.
        b: Asn,
        /// The plane the correction applies to.
        plane: IpVersion,
        /// The corrected relationship, oriented `a → b`.
        new: Relationship,
        /// The BFS root whose distances are re-evaluated.
        root: Asn,
    },
    /// The dataset summary as JSON (opcode 5).
    Summary,
    /// The full report as JSON (opcode 6).
    ReportJson,
    /// The snapshot's per-component memory footprint (opcode 7).
    MemStats,
    /// Every AS plus the hybrid pairs — what a load generator needs to
    /// form valid queries (opcode 8).
    Universe,
    /// Rebuild the snapshot and publish it as a new epoch (opcode 9).
    Reload,
}

/// The daemon's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The relationship, or `None` for an absent/unclassified link
    /// (tag 1).
    Relationship(Option<Relationship>),
    /// The sorted customer tree (tag 2).
    CustomerTree(Vec<Asn>),
    /// Visibility statistics (tag 3).
    Visibility(VisibilityStats),
    /// What-if outcome and distance-change counts (tag 4).
    WhatIf(WhatIfReply),
    /// A JSON body — the summary or the full report (tag 5).
    Json(String),
    /// Per-component snapshot bytes (tag 6). Deliberately carries **no
    /// epoch**, so responses stay byte-identical across a live reload of
    /// an identical scenario.
    MemStats(ServiceMemory),
    /// The AS universe and hybrid pairs (tag 7).
    Universe {
        /// Every AS in the snapshot, sorted ascending.
        asns: Vec<Asn>,
        /// The hybrid findings as `(a, b)` pairs, in report order.
        hybrid_pairs: Vec<(Asn, Asn)>,
    },
    /// A reload was published at this epoch (tag 8). The only response
    /// whose bytes legitimately differ across runs.
    Reloaded {
        /// The epoch the rebuilt snapshot was published at.
        epoch: u64,
    },
    /// The request could not be answered (status byte 1, no tag).
    Error(String),
}

fn plane_code(plane: IpVersion) -> u8 {
    match plane {
        IpVersion::V4 => 0,
        IpVersion::V6 => 1,
    }
}

fn rel_code(rel: Relationship) -> u8 {
    match rel {
        Relationship::ProviderToCustomer => 0,
        Relationship::CustomerToProvider => 1,
        Relationship::PeerToPeer => 2,
        Relationship::SiblingToSibling => 3,
    }
}

/// A consuming byte cursor over one frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("take(4) returned 4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("take(8) returned 8 bytes")))
    }

    fn asn(&mut self) -> Result<Asn, WireError> {
        Ok(Asn(self.u32()?))
    }

    fn plane(&mut self) -> Result<IpVersion, WireError> {
        match self.u8()? {
            0 => Ok(IpVersion::V4),
            1 => Ok(IpVersion::V6),
            v => Err(WireError::BadEnum("plane", v)),
        }
    }

    fn relationship(&mut self) -> Result<Relationship, WireError> {
        match self.u8()? {
            0 => Ok(Relationship::ProviderToCustomer),
            1 => Ok(Relationship::CustomerToProvider),
            2 => Ok(Relationship::PeerToPeer),
            3 => Ok(Relationship::SiblingToSibling),
            v => Err(WireError::BadEnum("relationship", v)),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::Trailing(self.bytes.len()))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_asns(out: &mut Vec<u8>, asns: &[Asn]) {
    put_u32(out, u32::try_from(asns.len()).expect("ASN list exceeds u32 range"));
    for asn in asns {
        put_u32(out, asn.0);
    }
}

fn take_asns(c: &mut Cursor<'_>) -> Result<Vec<Asn>, WireError> {
    let n = c.u32()? as usize;
    // Bounded by the frame cap: never trust a length field further than
    // the bytes actually present.
    if c.bytes.len() < n.saturating_mul(4) {
        return Err(WireError::Truncated);
    }
    (0..n).map(|_| c.asn()).collect()
}

impl Request {
    /// Encode into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match *self {
            Request::Relationship { a, b, plane } => {
                out.push(1);
                put_u32(&mut out, a.0);
                put_u32(&mut out, b.0);
                out.push(plane_code(plane));
            }
            Request::CustomerTree { root, plane } => {
                out.push(2);
                put_u32(&mut out, root.0);
                out.push(plane_code(plane));
            }
            Request::Visibility { asn } => {
                out.push(3);
                put_u32(&mut out, asn.0);
            }
            Request::WhatIf { a, b, plane, new, root } => {
                out.push(4);
                put_u32(&mut out, a.0);
                put_u32(&mut out, b.0);
                out.push(plane_code(plane));
                out.push(rel_code(new));
                put_u32(&mut out, root.0);
            }
            Request::Summary => out.push(5),
            Request::ReportJson => out.push(6),
            Request::MemStats => out.push(7),
            Request::Universe => out.push(8),
            Request::Reload => out.push(9),
        }
        out
    }

    /// Decode one frame payload; demands full consumption.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor { bytes: payload };
        let request = match c.u8()? {
            1 => Request::Relationship { a: c.asn()?, b: c.asn()?, plane: c.plane()? },
            2 => Request::CustomerTree { root: c.asn()?, plane: c.plane()? },
            3 => Request::Visibility { asn: c.asn()? },
            4 => Request::WhatIf {
                a: c.asn()?,
                b: c.asn()?,
                plane: c.plane()?,
                new: c.relationship()?,
                root: c.asn()?,
            },
            5 => Request::Summary,
            6 => Request::ReportJson,
            7 => Request::MemStats,
            8 => Request::Universe,
            9 => Request::Reload,
            op => return Err(WireError::UnknownOpcode(op)),
        };
        c.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encode into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Response::Error(message) => {
                out.push(1);
                out.extend_from_slice(message.as_bytes());
                return out;
            }
            Response::Relationship(rel) => {
                out.extend_from_slice(&[0, 1]);
                match rel {
                    None => out.push(0),
                    Some(rel) => {
                        out.push(1);
                        out.push(rel_code(*rel));
                    }
                }
            }
            Response::CustomerTree(tree) => {
                out.extend_from_slice(&[0, 2]);
                put_asns(&mut out, tree);
            }
            Response::Visibility(stats) => {
                out.extend_from_slice(&[0, 3]);
                put_u32(&mut out, stats.paths_through);
                put_u32(&mut out, stats.originated);
                put_u32(&mut out, stats.total_paths);
                put_u32(&mut out, stats.hybrid_incident);
            }
            Response::WhatIf(reply) => {
                out.extend_from_slice(&[0, 4]);
                out.push(match reply.outcome {
                    asgraph::DeltaOutcome::Unchanged => 0,
                    asgraph::DeltaOutcome::Incremental => 1,
                    asgraph::DeltaOutcome::FullRebuild => 2,
                });
                put_u32(&mut out, reply.changed);
                put_u32(&mut out, reply.reachable_before);
                put_u32(&mut out, reply.reachable_after);
            }
            Response::Json(body) => {
                out.extend_from_slice(&[0, 5]);
                out.extend_from_slice(body.as_bytes());
            }
            Response::MemStats(memory) => {
                out.extend_from_slice(&[0, 6]);
                put_u64(&mut out, memory.graph_map_bytes);
                put_u64(&mut out, memory.graph_csr_bytes);
                put_u64(&mut out, memory.rib_arena_bytes);
                put_u64(&mut out, memory.label_arena_bytes);
            }
            Response::Universe { asns, hybrid_pairs } => {
                out.extend_from_slice(&[0, 7]);
                put_asns(&mut out, asns);
                put_u32(
                    &mut out,
                    u32::try_from(hybrid_pairs.len()).expect("hybrid pairs exceed u32 range"),
                );
                for &(a, b) in hybrid_pairs {
                    put_u32(&mut out, a.0);
                    put_u32(&mut out, b.0);
                }
            }
            Response::Reloaded { epoch } => {
                out.extend_from_slice(&[0, 8]);
                put_u64(&mut out, *epoch);
            }
        }
        out
    }

    /// Decode one frame payload; demands full consumption.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor { bytes: payload };
        match c.u8()? {
            1 => {
                let message =
                    String::from_utf8(c.bytes.to_vec()).map_err(|_| WireError::BadUtf8)?;
                return Ok(Response::Error(message));
            }
            0 => {}
            status => return Err(WireError::BadEnum("status", status)),
        }
        let response = match c.u8()? {
            1 => Response::Relationship(match c.u8()? {
                0 => None,
                1 => Some(c.relationship()?),
                v => return Err(WireError::BadEnum("relationship marker", v)),
            }),
            2 => Response::CustomerTree(take_asns(&mut c)?),
            3 => Response::Visibility(VisibilityStats {
                paths_through: c.u32()?,
                originated: c.u32()?,
                total_paths: c.u32()?,
                hybrid_incident: c.u32()?,
            }),
            4 => Response::WhatIf(WhatIfReply {
                outcome: match c.u8()? {
                    0 => asgraph::DeltaOutcome::Unchanged,
                    1 => asgraph::DeltaOutcome::Incremental,
                    2 => asgraph::DeltaOutcome::FullRebuild,
                    v => return Err(WireError::BadEnum("outcome", v)),
                },
                changed: c.u32()?,
                reachable_before: c.u32()?,
                reachable_after: c.u32()?,
            }),
            5 => {
                let body = String::from_utf8(c.bytes.to_vec()).map_err(|_| WireError::BadUtf8)?;
                return Ok(Response::Json(body));
            }
            6 => Response::MemStats(ServiceMemory {
                graph_map_bytes: c.u64()?,
                graph_csr_bytes: c.u64()?,
                rib_arena_bytes: c.u64()?,
                label_arena_bytes: c.u64()?,
            }),
            7 => {
                let asns = take_asns(&mut c)?;
                let m = c.u32()? as usize;
                if c.bytes.len() < m.saturating_mul(8) {
                    return Err(WireError::Truncated);
                }
                let hybrid_pairs =
                    (0..m).map(|_| Ok((c.asn()?, c.asn()?))).collect::<Result<_, WireError>>()?;
                Response::Universe { asns, hybrid_pairs }
            }
            8 => Response::Reloaded { epoch: c.u64()? },
            tag => return Err(WireError::UnknownTag(tag)),
        };
        c.finish()?;
        Ok(response)
    }
}
