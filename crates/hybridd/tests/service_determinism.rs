//! End-to-end determinism: the byte stream a client reads is a pure
//! function of (scenario, query stream) — independent of worker count,
//! batch size, pipelining, and even a live epoch swap mid-stream.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hybrid_tor::service::ResidentState;
use hybrid_tor::Pipeline;
use hybridd::{
    answer, query_mix, read_frame, write_frame, Request, Response, Server, ServerConfig,
};

fn build_state() -> ResidentState {
    let scenario = bench::build_scenario(&bench::tiny_scale());
    ResidentState::build(&scenario, &Pipeline::default())
}

/// Start a daemon on an ephemeral port; the accept thread is detached and
/// dies with the test process.
fn spawn_server(workers: usize, batch: usize, epoch_check_ms: u64) -> std::net::SocketAddr {
    let rebuild: hybridd::Rebuild = Arc::new(build_state);
    let server = Server::bind(
        "127.0.0.1:0",
        build_state(),
        rebuild,
        ServerConfig { workers, batch, epoch_check_ms },
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr().expect("ephemeral port resolved");
    std::thread::spawn(move || server.run());
    addr
}

/// Write every request, then read every response — deliberately pipelined
/// so multi-request batches actually form on the server side.
fn pipelined_exchange(addr: std::net::SocketAddr, requests: &[Request]) -> Vec<Vec<u8>> {
    let stream = TcpStream::connect(addr).expect("connect to the test daemon");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone the stream");
    for request in requests {
        write_frame(&mut writer, &request.encode()).expect("send a request frame");
    }
    writer.flush().expect("flush the request burst");
    let mut reader = std::io::BufReader::new(stream);
    requests.iter().map(|_| read_frame(&mut reader).expect("read a response frame")).collect()
}

fn test_mix(count: usize) -> Vec<Request> {
    let state = build_state();
    let mut mix = query_mix(state.universe(), state.hybrid_pairs(), 7, count);
    // Make sure the heavyweight frames are always exercised too.
    mix.push(Request::ReportJson);
    mix.push(Request::Universe);
    mix
}

#[test]
fn responses_are_byte_identical_across_worker_and_batch_configs() {
    let mix = test_mix(120);
    let baseline = pipelined_exchange(spawn_server(1, 1, 50), &mix);
    for (workers, batch) in [(1, 8), (4, 1), (4, 8), (4, 64)] {
        let got = pipelined_exchange(spawn_server(workers, batch, 50), &mix);
        assert_eq!(
            got, baseline,
            "workers={workers} batch={batch} must produce the baseline byte stream"
        );
    }
}

#[test]
fn responses_match_a_locally_computed_answer() {
    let state = build_state();
    let mix = test_mix(60);
    let got = pipelined_exchange(spawn_server(2, 4, 50), &mix);
    for (request, raw) in mix.iter().zip(&got) {
        assert_eq!(
            *raw,
            answer(&state, request).encode(),
            "{request:?} must answer with the locally computed bytes"
        );
    }
}

#[test]
fn a_live_reload_does_not_change_query_bytes() {
    let state = build_state();
    let mix = test_mix(60);
    // Splice a reload into the middle of the stream; epoch_check_ms = 0 so
    // the refreshed snapshot is picked up by the very next batch.
    let mut spliced = mix.clone();
    spliced.insert(mix.len() / 2, Request::Reload);
    let addr = spawn_server(2, 4, 0);
    let got = pipelined_exchange(addr, &spliced);

    let mut non_reload = Vec::new();
    let mut reload_epochs = Vec::new();
    for (request, raw) in spliced.iter().zip(&got) {
        if matches!(request, Request::Reload) {
            match Response::decode(raw).expect("reload response decodes") {
                Response::Reloaded { epoch } => reload_epochs.push(epoch),
                other => panic!("reload must answer Reloaded, got {other:?}"),
            }
        } else {
            non_reload.push(raw.clone());
        }
    }
    // The initial snapshot is epoch 1; the single published rebuild is 2.
    assert_eq!(reload_epochs, vec![2]);
    // Every query before AND after the swap answers with the same bytes a
    // fresh local snapshot computes: the rebuild is deterministic and the
    // epoch is invisible to query responses (MemStats carries no epoch).
    for (request, raw) in mix.iter().zip(&non_reload) {
        assert_eq!(*raw, answer(&state, request).encode(), "{request:?} changed across a reload");
    }
}

#[test]
fn a_garbage_payload_yields_an_error_response_and_keeps_the_stream_usable() {
    let addr = spawn_server(1, 4, 50);
    let stream = TcpStream::connect(addr).expect("connect to the test daemon");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone the stream");
    // Unknown opcode 0: framing intact, payload malformed.
    write_frame(&mut writer, &[0]).expect("send the garbage frame");
    write_frame(&mut writer, &Request::MemStats.encode()).expect("send a valid frame");
    writer.flush().expect("flush");
    let mut reader = std::io::BufReader::new(stream);
    let first = Response::decode(&read_frame(&mut reader).expect("read the error response"))
        .expect("error response decodes");
    assert!(matches!(first, Response::Error(_)), "garbage must answer Error, got {first:?}");
    let second = Response::decode(&read_frame(&mut reader).expect("read the follow-up response"))
        .expect("follow-up response decodes");
    assert!(matches!(second, Response::MemStats(_)), "stream must stay usable, got {second:?}");
}

#[test]
fn single_shot_clients_and_slow_writers_are_served_promptly() {
    // A non-pipelined client must get an answer without waiting for a full
    // batch to form (the drain is greedy over already-buffered bytes only).
    let addr = spawn_server(2, 64, 50);
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = std::io::BufReader::new(stream);
    for _ in 0..3 {
        write_frame(&mut writer, &Request::Summary.encode()).expect("send");
        writer.flush().expect("flush");
        let raw = read_frame(&mut reader).expect("a lone request is answered without batch-mates");
        assert!(matches!(Response::decode(&raw), Ok(Response::Json(_))));
    }
}
