//! Wire-protocol round-trip and error-path suite: every request and
//! response variant survives encode → frame → decode unchanged, and every
//! malformed input class is rejected with the right [`WireError`].

use asgraph::DeltaOutcome;
use bgp_types::{Asn, IpVersion, Relationship};
use hybrid_tor::service::{ServiceMemory, VisibilityStats, WhatIfReply};
use hybridd::{read_frame, write_frame, Request, Response, WireError, MAX_FRAME};

fn every_request() -> Vec<Request> {
    let mut requests = vec![
        Request::Visibility { asn: Asn(64500) },
        Request::Summary,
        Request::ReportJson,
        Request::MemStats,
        Request::Universe,
        Request::Reload,
    ];
    for plane in [IpVersion::V4, IpVersion::V6] {
        requests.push(Request::Relationship { a: Asn(1), b: Asn(2), plane });
        requests.push(Request::CustomerTree { root: Asn(3), plane });
        for new in Relationship::ALL {
            requests.push(Request::WhatIf { a: Asn(4), b: Asn(5), plane, new, root: Asn(6) });
        }
    }
    requests
}

fn every_response() -> Vec<Response> {
    let mut responses = vec![
        Response::Relationship(None),
        Response::CustomerTree(Vec::new()),
        Response::CustomerTree(vec![Asn(1), Asn(2), Asn(u32::MAX)]),
        Response::Visibility(VisibilityStats {
            paths_through: 7,
            originated: 3,
            total_paths: 100,
            hybrid_incident: 2,
        }),
        Response::Json(String::new()),
        Response::Json("{\"dataset\":{}}".to_string()),
        Response::MemStats(ServiceMemory {
            graph_map_bytes: 1,
            graph_csr_bytes: u64::MAX,
            rib_arena_bytes: 0,
            label_arena_bytes: 9,
        }),
        Response::Universe { asns: Vec::new(), hybrid_pairs: Vec::new() },
        Response::Universe {
            asns: vec![Asn(10), Asn(20)],
            hybrid_pairs: vec![(Asn(10), Asn(20)), (Asn(20), Asn(10))],
        },
        Response::Reloaded { epoch: 0 },
        Response::Reloaded { epoch: u64::MAX },
        Response::Error(String::new()),
        Response::Error("no such AS 99".to_string()),
    ];
    for rel in Relationship::ALL {
        responses.push(Response::Relationship(Some(rel)));
    }
    for outcome in [DeltaOutcome::Unchanged, DeltaOutcome::Incremental, DeltaOutcome::FullRebuild] {
        responses.push(Response::WhatIf(WhatIfReply {
            outcome,
            changed: 4,
            reachable_before: 10,
            reachable_after: 8,
        }));
    }
    responses
}

#[test]
fn every_request_round_trips_through_a_frame() {
    for request in every_request() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &request.encode()).expect("encode fits a frame");
        let payload = read_frame(&mut wire.as_slice()).expect("frame reads back");
        assert_eq!(Request::decode(&payload).unwrap(), request);
    }
}

#[test]
fn every_response_round_trips_through_a_frame() {
    for response in every_response() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &response.encode()).expect("encode fits a frame");
        let payload = read_frame(&mut wire.as_slice()).expect("frame reads back");
        assert_eq!(Response::decode(&payload).unwrap(), response);
    }
}

#[test]
fn zero_length_frames_are_rejected_on_both_sides() {
    assert!(matches!(read_frame(&mut [0, 0, 0, 0].as_slice()), Err(WireError::Empty)));
    assert!(matches!(write_frame(&mut Vec::new(), &[]), Err(WireError::Empty)));
}

#[test]
fn oversized_frames_are_rejected_before_allocation() {
    // A header announcing 4 GiB must fail fast, without reserving the
    // announced bytes.
    let header = (u32::MAX).to_be_bytes();
    match read_frame(&mut header.as_slice()) {
        Err(WireError::Oversized(n)) => assert_eq!(n, u32::MAX as usize),
        other => panic!("expected Oversized, got {other:?}"),
    }
    let too_big = vec![0u8; MAX_FRAME + 1];
    assert!(matches!(write_frame(&mut Vec::new(), &too_big), Err(WireError::Oversized(_))));
}

#[test]
fn a_frame_cut_short_is_an_io_error() {
    // Header promises 8 payload bytes; only 3 arrive before EOF.
    let mut wire = 8u32.to_be_bytes().to_vec();
    wire.extend_from_slice(&[1, 2, 3]);
    assert!(matches!(read_frame(&mut wire.as_slice()), Err(WireError::Io(_))));
}

#[test]
fn truncated_request_payloads_are_rejected() {
    for request in every_request() {
        let full = request.encode();
        // Every strict prefix (including the empty payload) must fail to
        // decode — no variant may be ambiguous under truncation.
        for cut in 0..full.len() {
            assert!(
                matches!(Request::decode(&full[..cut]), Err(WireError::Truncated)),
                "prefix of {cut} bytes of {request:?} must be Truncated"
            );
        }
    }
}

#[test]
fn trailing_request_bytes_are_rejected() {
    for request in every_request() {
        let mut padded = request.encode();
        padded.push(0);
        match Request::decode(&padded) {
            Err(WireError::Trailing(1)) => {}
            other => panic!("{request:?} + 1 byte must be Trailing(1), got {other:?}"),
        }
    }
}

#[test]
fn trailing_response_bytes_are_rejected_for_fixed_layouts() {
    // Json and Error consume the rest of the payload by definition, so
    // only the structured variants can detect trailing garbage.
    for response in every_response() {
        if matches!(response, Response::Json(_) | Response::Error(_)) {
            continue;
        }
        let mut padded = response.encode();
        padded.push(7);
        match Response::decode(&padded) {
            Err(WireError::Trailing(1)) => {}
            other => panic!("{response:?} + 1 byte must be Trailing(1), got {other:?}"),
        }
    }
}

#[test]
fn unknown_opcodes_tags_and_enum_codes_are_rejected() {
    assert!(matches!(Request::decode(&[0]), Err(WireError::UnknownOpcode(0))));
    assert!(matches!(Request::decode(&[10]), Err(WireError::UnknownOpcode(10))));
    assert!(matches!(Request::decode(&[255]), Err(WireError::UnknownOpcode(255))));
    assert!(matches!(Response::decode(&[0, 0]), Err(WireError::UnknownTag(0))));
    assert!(matches!(Response::decode(&[0, 9]), Err(WireError::UnknownTag(9))));
    assert!(matches!(Response::decode(&[2]), Err(WireError::BadEnum("status", 2))));

    // Relationship request with an out-of-range plane code.
    let mut bad_plane =
        Request::Relationship { a: Asn(1), b: Asn(2), plane: IpVersion::V4 }.encode();
    *bad_plane.last_mut().unwrap() = 2;
    assert!(matches!(Request::decode(&bad_plane), Err(WireError::BadEnum("plane", 2))));

    // What-if request with an out-of-range relationship code.
    let mut bad_rel = Request::WhatIf {
        a: Asn(1),
        b: Asn(2),
        plane: IpVersion::V4,
        new: Relationship::PeerToPeer,
        root: Asn(3),
    }
    .encode();
    bad_rel[10] = 4;
    assert!(matches!(Request::decode(&bad_rel), Err(WireError::BadEnum("relationship", 4))));

    // Relationship response with an out-of-range option marker.
    assert!(matches!(
        Response::decode(&[0, 1, 2]),
        Err(WireError::BadEnum("relationship marker", 2))
    ));
    // What-if response with an out-of-range outcome code.
    assert!(matches!(Response::decode(&[0, 4, 3]), Err(WireError::BadEnum("outcome", 3))));
}

#[test]
fn hostile_length_fields_cannot_force_allocation() {
    // A customer-tree response claiming u32::MAX ASNs but carrying none:
    // the decoder must bound the count by the bytes present.
    let mut payload = vec![0, 2];
    payload.extend_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(Response::decode(&payload), Err(WireError::Truncated)));

    // Same for the hybrid-pair count of a universe response.
    let mut payload = vec![0, 7];
    payload.extend_from_slice(&0u32.to_be_bytes());
    payload.extend_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(Response::decode(&payload), Err(WireError::Truncated)));
}

#[test]
fn invalid_utf8_text_bodies_are_rejected() {
    assert!(matches!(Response::decode(&[1, 0xFF, 0xFE]), Err(WireError::BadUtf8)));
    assert!(matches!(Response::decode(&[0, 5, 0xFF, 0xFE]), Err(WireError::BadUtf8)));
}
