//! # topogen
//!
//! Synthetic AS-level Internet topologies with *per-plane* ground truth.
//!
//! The paper measures the August 2010 Internet through RouteViews and RIPE
//! RIS. We cannot redistribute those archives, so this crate generates
//! topologies with the same structural ingredients, under a seed, so every
//! experiment is reproducible:
//!
//! * a tier-1 clique, a preferential-attachment transit hierarchy of
//!   tier-2 providers, and a large population of stub ASes;
//! * partial IPv6 adoption (tier-1s first, stubs last), so only a subset
//!   of ASes and links appear on the IPv6 plane;
//! * extra IPv6-only peering links (the relaxed v6 peering policies of the
//!   era), so a realistic share of IPv6 links has no IPv4 counterpart;
//! * **hybrid relationship injection**: a configurable fraction of
//!   dual-stack links receives a *different* relationship on the IPv6
//!   plane, with the composition the paper reports (67% "p2p in IPv4 but
//!   transit in IPv6", the rest "p2c in IPv4 but p2p in IPv6", plus one
//!   link with opposite transit directions);
//! * a small number of sibling links.
//!
//! The output is a [`GroundTruth`]: the annotated [`asgraph::AsGraph`]
//! plus the book-keeping (tier of every AS, the exact hybrid links and
//! their classes) that experiments validate inference results against.
//!
//! ```
//! use topogen::{TopologyConfig, generate};
//!
//! let truth = generate(&TopologyConfig { stub_count: 200, tier2_count: 40, ..Default::default() });
//! assert!(truth.graph.node_count() > 200);
//! assert!(!truth.hybrid_links.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod fixtures;
pub mod generate;
pub mod ground_truth;

pub use config::TopologyConfig;
pub use generate::generate;
pub use ground_truth::{GroundTruth, HybridClass, HybridLink, PlannedTier};
