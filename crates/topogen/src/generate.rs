//! The topology generation algorithm.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use bgp_types::{Asn, IpVersion, Relationship, RelationshipPair};

use crate::config::TopologyConfig;
use crate::ground_truth::{GroundTruth, HybridClass, HybridLink, PlannedTier};

/// Generate a topology from a configuration.
///
/// # Panics
///
/// Panics if the configuration fails [`TopologyConfig::validate`]; the
/// experiment harness validates configurations before calling this, so a
/// panic here always indicates a programming error.
pub fn generate(config: &TopologyConfig) -> GroundTruth {
    config.validate().expect("invalid topology configuration");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut truth = GroundTruth { seed: config.seed, ..Default::default() };

    // ---- ASN allocation -------------------------------------------------
    let mut next_asn = config.first_asn;
    let mut allocate = |count: usize| -> Vec<Asn> {
        let block: Vec<Asn> = (0..count).map(|i| Asn(next_asn + i as u32)).collect();
        next_asn += count as u32;
        block
    };
    let tier1 = allocate(config.tier1_count);
    let tier2 = allocate(config.tier2_count);
    let stubs = allocate(config.stub_count);

    for &asn in &tier1 {
        truth.tiers.insert(asn, PlannedTier::Tier1);
    }
    for &asn in &tier2 {
        truth.tiers.insert(asn, PlannedTier::Tier2);
    }
    for &asn in &stubs {
        truth.tiers.insert(asn, PlannedTier::Stub);
    }

    // ---- IPv6 adoption --------------------------------------------------
    for &asn in &tier1 {
        truth.ipv6_capable.insert(asn, true);
    }
    for &asn in &tier2 {
        truth.ipv6_capable.insert(asn, rng.gen_bool(config.tier2_ipv6_adoption));
    }
    for &asn in &stubs {
        truth.ipv6_capable.insert(asn, rng.gen_bool(config.stub_ipv6_adoption));
    }

    // All base relationships are recorded here as (a, b, rel a->b) and
    // materialised into the graph afterwards, so the hybrid pass can
    // rewrite a selection of them per plane.
    let mut base_links: Vec<(Asn, Asn, Relationship)> = Vec::new();
    // Running IPv4 degree, used for preferential attachment — the
    // HashMap serves the later degree *reads* (v6-only peering, hybrid
    // weighting), the per-pool Fenwick samplers serve the weighted
    // provider *draws*.
    let mut degree: HashMap<Asn, usize> = HashMap::new();
    let mut tier1_sampler = DegreeSampler::new(&tier1);
    let mut tier2_sampler = DegreeSampler::new(&tier2);
    fn bump(degree: &mut HashMap<Asn, usize>, samplers: [&mut DegreeSampler; 2], a: Asn, b: Asn) {
        for asn in [a, b] {
            *degree.entry(asn).or_insert(0) += 1;
        }
        for sampler in samplers {
            sampler.bump(a);
            sampler.bump(b);
        }
    }

    // ---- Tier-1 clique ---------------------------------------------------
    for i in 0..tier1.len() {
        for j in (i + 1)..tier1.len() {
            base_links.push((tier1[i], tier1[j], Relationship::PeerToPeer));
            bump(&mut degree, [&mut tier1_sampler, &mut tier2_sampler], tier1[i], tier1[j]);
        }
    }

    // ---- Tier-2 transit --------------------------------------------------
    for &asn in &tier2 {
        let providers = rng.gen_range(config.tier2_providers.0..=config.tier2_providers.1);
        let chosen = tier1_sampler.pick(providers, &mut rng);
        for provider in chosen {
            base_links.push((provider, asn, Relationship::ProviderToCustomer));
            bump(&mut degree, [&mut tier1_sampler, &mut tier2_sampler], provider, asn);
        }
    }

    // ---- Tier-2 peering mesh ----------------------------------------------
    if tier2.len() > 1 {
        let expected = (config.tier2_peering_degree * tier2.len() as f64 / 2.0).round() as usize;
        for _ in 0..expected {
            let a = tier2[rng.gen_range(0..tier2.len())];
            let b = tier2[rng.gen_range(0..tier2.len())];
            if a != b {
                base_links.push((a, b, Relationship::PeerToPeer));
                bump(&mut degree, [&mut tier1_sampler, &mut tier2_sampler], a, b);
            }
        }
    }

    // ---- Stubs -------------------------------------------------------------
    for &asn in &stubs {
        let providers = rng.gen_range(config.stub_providers.0..=config.stub_providers.1);
        for _ in 0..providers {
            let provider = if rng.gen_bool(config.stub_direct_tier1_probability) {
                *tier1_sampler.pick(1, &mut rng).first().unwrap()
            } else {
                *tier2_sampler.pick(1, &mut rng).first().unwrap()
            };
            base_links.push((provider, asn, Relationship::ProviderToCustomer));
            bump(&mut degree, [&mut tier1_sampler, &mut tier2_sampler], provider, asn);
        }
    }

    // ---- Stub IXP peering ---------------------------------------------------
    if stubs.len() > 1 {
        let expected = (config.stub_peering_degree * stubs.len() as f64 / 2.0).round() as usize;
        for _ in 0..expected {
            let a = stubs[rng.gen_range(0..stubs.len())];
            let b = stubs[rng.gen_range(0..stubs.len())];
            if a != b {
                base_links.push((a, b, Relationship::PeerToPeer));
                bump(&mut degree, [&mut tier1_sampler, &mut tier2_sampler], a, b);
            }
        }
    }

    // ---- Sibling rewrite -----------------------------------------------------
    // A small fraction of provider links become sibling links (organisations
    // running several ASes).
    for link in base_links.iter_mut() {
        if link.2 == Relationship::ProviderToCustomer && rng.gen_bool(config.sibling_fraction) {
            link.2 = Relationship::SiblingToSibling;
        }
    }

    // ---- Materialise the base (IPv4 everywhere, IPv6 where active) -----------
    for &(a, b, rel) in &base_links {
        truth.graph.annotate(a, b, IpVersion::V4, rel);
        let both_capable = truth.ipv6_capable[&a] && truth.ipv6_capable[&b];
        if both_capable && rng.gen_bool(config.link_ipv6_activation) {
            truth.graph.annotate(a, b, IpVersion::V6, rel);
        }
    }

    // ---- IPv6-only peering links ----------------------------------------------
    let v6_ases: Vec<Asn> =
        truth.ipv6_capable.iter().filter(|(_, capable)| **capable).map(|(asn, _)| *asn).collect();
    let mut v6_ases = v6_ases;
    v6_ases.sort();
    if v6_ases.len() > 1 {
        let expected =
            (config.v6_only_peering_degree * v6_ases.len() as f64 / 2.0).round() as usize;
        for _ in 0..expected {
            let a = v6_ases[rng.gen_range(0..v6_ases.len())];
            let b = v6_ases[rng.gen_range(0..v6_ases.len())];
            if a == b || truth.graph.has_link(a, b, IpVersion::V4) {
                continue;
            }
            // Relaxed v6 policies: mostly peering, occasionally free transit
            // from the better-connected side.
            let rel = if rng.gen_bool(0.85) {
                Relationship::PeerToPeer
            } else if degree.get(&a).unwrap_or(&0) >= degree.get(&b).unwrap_or(&0) {
                Relationship::ProviderToCustomer
            } else {
                Relationship::CustomerToProvider
            };
            truth.graph.annotate(a, b, IpVersion::V6, rel);
        }
    }

    // ---- Hybrid injection --------------------------------------------------------
    inject_hybrids(config, &mut truth, &degree, &mut rng);

    truth
}

/// Preferential-attachment sampler over a fixed pool: slot `i` carries
/// weight `degree(pool[i]) + 1`, maintained in a Fenwick (binary indexed)
/// tree so one weighted draw costs `O(log n)` instead of the `O(n)`
/// sum-and-prefix-scan the original `pick_weighted` paid per attempt —
/// the difference between minutes and sub-second topology generation at
/// the 100k-AS scale, where every stub scans the 15k-member tier-2 pool.
///
/// Draw-for-draw RNG-identical to the linear version: the same single
/// `gen_range(0..total)` per attempt, and the tree descent selects
/// exactly the slot the prefix scan selected (the one whose cumulative
/// weight interval contains the target), so pre-existing topologies are
/// byte-identical.
struct DegreeSampler {
    pool: Vec<Asn>,
    slot: HashMap<Asn, usize>,
    /// One-based Fenwick tree over the per-slot weights.
    tree: Vec<usize>,
    total: usize,
}

impl DegreeSampler {
    fn new(pool: &[Asn]) -> Self {
        let mut sampler = DegreeSampler {
            pool: pool.to_vec(),
            slot: pool.iter().enumerate().map(|(i, &a)| (a, i)).collect(),
            tree: vec![0; pool.len() + 1],
            total: 0,
        };
        for i in 0..pool.len() {
            // Every AS starts at degree 0, i.e. weight 1.
            sampler.add(i, 1);
        }
        sampler
    }

    fn add(&mut self, index: usize, delta: usize) {
        self.total += delta;
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Register one more link endpoint at `asn` (a no-op for ASes outside
    /// this sampler's pool).
    fn bump(&mut self, asn: Asn) {
        if let Some(&index) = self.slot.get(&asn) {
            self.add(index, 1);
        }
    }

    /// The slot whose cumulative-weight interval contains `target` — the
    /// largest index whose prefix sum is `<= target`, which is the slot
    /// the linear `if target < w { pick } else { target -= w }` scan
    /// stopped at.
    fn locate(&self, mut target: usize) -> usize {
        let mut pos = 0;
        let mut mask = self.tree.len().next_power_of_two() >> 1;
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos
    }

    /// Pick `count` distinct members of the pool, weighted by
    /// `degree + 1`. Falls back to returning the whole pool when it is
    /// no larger than `count`, and to one uniform choice if rejection
    /// sampling never lands a new member within the attempt budget.
    fn pick<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<Asn> {
        if self.pool.len() <= count {
            return self.pool.clone();
        }
        let mut chosen = Vec::with_capacity(count);
        let mut attempts = 0;
        while chosen.len() < count && attempts < count * 20 {
            attempts += 1;
            let target = rng.gen_range(0..self.total);
            let pick = self.pool[self.locate(target)];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        if chosen.is_empty() {
            chosen.push(*self.pool.choose(rng).expect("pool checked non-empty"));
        }
        chosen
    }
}

/// Select dual-stack links (degree-biased) and flip their IPv6 relationship
/// so the configured fraction of dual-stack links becomes hybrid, with the
/// paper's class mix.
fn inject_hybrids<R: Rng>(
    config: &TopologyConfig,
    truth: &mut GroundTruth,
    degree: &HashMap<Asn, usize>,
    rng: &mut R,
) {
    // Candidates: dual-stack, non-sibling links.
    let mut candidates: Vec<(Asn, Asn, Relationship)> = truth
        .graph
        .dual_stack_edges()
        .filter_map(|e| {
            let rel = e.rel_v4?;
            (!rel.is_sibling()).then_some((e.a, e.b, rel))
        })
        .collect();
    candidates.sort_by_key(|(a, b, _)| (*a, *b));
    if candidates.is_empty() {
        return;
    }
    let dual_total = truth.graph.dual_stack_edges().count();
    let target = ((dual_total as f64) * config.hybrid_fraction).round() as usize;
    let target = target.min(candidates.len());
    if target == 0 {
        return;
    }

    // Degree-biased sampling without replacement.
    let mut weights: Vec<f64> = candidates
        .iter()
        .map(|(a, b, _)| {
            let da = *degree.get(a).unwrap_or(&0) as f64 + 1.0;
            let db = *degree.get(b).unwrap_or(&0) as f64 + 1.0;
            (da * db).powf(config.hybrid_degree_bias)
        })
        .collect();
    let mut selected: Vec<usize> = Vec::with_capacity(target);
    for _ in 0..target {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut t = rng.gen::<f64>() * total;
        let mut chosen = None;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if t < *w {
                chosen = Some(i);
                break;
            }
            t -= *w;
        }
        let idx = chosen.unwrap_or_else(|| weights.iter().position(|w| *w > 0.0).unwrap());
        selected.push(idx);
        weights[idx] = 0.0;
    }

    // Assign classes: opposite-transit first (fixed count), then the
    // p2p4/transit6 share, remainder transit4/p2p6.
    let opposite_count = config.hybrid_opposite_transit_count.min(selected.len());
    let p2p4_count = (((selected.len() - opposite_count) as f64)
        * config.hybrid_p2p4_transit6_share)
        .round() as usize;

    for (rank, &idx) in selected.iter().enumerate() {
        let (a, b, v4_rel) = candidates[idx];
        let class = if rank < opposite_count {
            HybridClass::OppositeTransit
        } else if rank < opposite_count + p2p4_count {
            HybridClass::PeeringV4TransitV6
        } else {
            HybridClass::TransitV4PeeringV6
        };
        let (new_v4, new_v6) = match class {
            HybridClass::PeeringV4TransitV6 => {
                // Force v4 to peering; v6 transit flows from the
                // better-connected side (free v6 transit offers).
                let v6 = if degree.get(&a).unwrap_or(&0) >= degree.get(&b).unwrap_or(&0) {
                    Relationship::ProviderToCustomer
                } else {
                    Relationship::CustomerToProvider
                };
                (Relationship::PeerToPeer, v6)
            }
            HybridClass::TransitV4PeeringV6 => {
                // Keep (or force) a transit v4 relationship, peer on v6.
                let v4 =
                    if v4_rel.is_transit() { v4_rel } else { Relationship::ProviderToCustomer };
                (v4, Relationship::PeerToPeer)
            }
            HybridClass::OppositeTransit => {
                let v4 =
                    if v4_rel.is_transit() { v4_rel } else { Relationship::ProviderToCustomer };
                (v4, v4.reverse())
            }
        };
        truth.graph.annotate(a, b, IpVersion::V4, new_v4);
        truth.graph.annotate(a, b, IpVersion::V6, new_v6);
        truth.hybrid_links.push(HybridLink {
            a,
            b,
            relationships: RelationshipPair::new(new_v4, new_v6),
            class,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::metrics::connected_components;
    use asgraph::valley::classify_path;

    fn truth_small() -> GroundTruth {
        generate(&TopologyConfig::small())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TopologyConfig::tiny());
        let b = generate(&TopologyConfig::tiny());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.hybrid_links, b.hybrid_links);
        let mut c = TopologyConfig::tiny();
        c.seed = 999;
        let d = generate(&c);
        assert_ne!(
            a.hybrid_links, d.hybrid_links,
            "different seeds should produce different hybrids"
        );
    }

    #[test]
    fn every_planned_as_is_in_the_graph() {
        let truth = truth_small();
        let config = TopologyConfig::small();
        assert_eq!(truth.tiers.len(), config.total_as_count());
        // Tier-1s and tier-2s always have links; a stub could in principle
        // be isolated only if it had zero providers, which the config forbids.
        for (&asn, _) in truth.tiers.iter() {
            assert!(truth.graph.contains(asn), "AS{asn} missing from graph");
        }
    }

    #[test]
    fn ipv4_plane_is_connected() {
        let truth = truth_small();
        let comps = connected_components(&truth.graph, IpVersion::V4);
        assert_eq!(comps.len(), 1, "IPv4 plane must be one connected component");
    }

    #[test]
    fn ipv6_plane_is_a_strict_subset_of_ases() {
        let truth = truth_small();
        let v6_ases = truth.ipv6_as_count();
        assert!(v6_ases < truth.tiers.len());
        assert!(v6_ases > truth.tiers.len() / 10);
        // Links present on v6 between v4-capable ASes must connect
        // IPv6-capable endpoints.
        for edge in truth.graph.plane_edges(IpVersion::V6) {
            assert!(truth.ipv6_capable[&edge.a], "v6 link endpoint {} not capable", edge.a);
            assert!(truth.ipv6_capable[&edge.b], "v6 link endpoint {} not capable", edge.b);
        }
    }

    #[test]
    fn some_ipv6_links_have_no_ipv4_counterpart() {
        let truth = truth_small();
        let v6_total = truth.plane_link_count(IpVersion::V6);
        let dual = truth.dual_stack_link_count();
        assert!(v6_total > dual, "expected v6-only links");
        // And the v6-only share should be substantial but not dominant
        // (paper: ~28%).
        let v6_only_share = (v6_total - dual) as f64 / v6_total as f64;
        assert!(v6_only_share > 0.05 && v6_only_share < 0.6, "share {v6_only_share}");
    }

    #[test]
    fn hybrid_fraction_matches_configuration() {
        let truth = truth_small();
        let config = TopologyConfig::small();
        let fraction = truth.hybrid_fraction();
        assert!(
            (fraction - config.hybrid_fraction).abs() < 0.02,
            "hybrid fraction {fraction} far from configured {}",
            config.hybrid_fraction
        );
        // Every recorded hybrid link must actually be hybrid in the graph.
        for link in &truth.hybrid_links {
            let pair = truth.relationship_pair(link.a, link.b).unwrap();
            assert!(pair.is_hybrid(), "{}-{} recorded hybrid but graph disagrees", link.a, link.b);
            assert_eq!(pair, link.relationships);
            assert_eq!(HybridClass::classify(pair), Some(link.class));
        }
    }

    #[test]
    fn hybrid_class_mix_matches_the_paper() {
        let truth = generate(&TopologyConfig::small());
        let counts = truth.hybrid_class_counts();
        let total = truth.hybrid_links.len() as f64;
        assert!(total >= 20.0, "need a meaningful number of hybrids, got {total}");
        let p2p4 = *counts.get(&HybridClass::PeeringV4TransitV6).unwrap_or(&0) as f64;
        assert!((p2p4 / total - 0.67).abs() < 0.1, "p2p4/transit6 share {}", p2p4 / total);
        assert_eq!(*counts.get(&HybridClass::OppositeTransit).unwrap_or(&0), 1);
    }

    #[test]
    fn hybrids_prefer_well_connected_ases() {
        let truth = truth_small();
        let mean_degree_all: f64 =
            truth.graph.asns().map(|a| truth.graph.degree(a, IpVersion::V4) as f64).sum::<f64>()
                / truth.graph.node_count() as f64;
        let mean_degree_hybrid: f64 = truth
            .hybrid_links
            .iter()
            .flat_map(|l| [l.a, l.b])
            .map(|a| truth.graph.degree(a, IpVersion::V4) as f64)
            .sum::<f64>()
            / (2 * truth.hybrid_links.len()) as f64;
        assert!(
            mean_degree_hybrid > mean_degree_all * 2.0,
            "hybrid endpoints should be well-connected: {mean_degree_hybrid} vs {mean_degree_all}"
        );
    }

    #[test]
    fn tier1_clique_is_fully_meshed_with_peering() {
        let truth = truth_small();
        let tier1 = truth.ases_of_tier(PlannedTier::Tier1);
        for (i, &a) in tier1.iter().enumerate() {
            for &b in tier1.iter().skip(i + 1) {
                assert!(truth.graph.has_link(a, b, IpVersion::V4));
                let rel = truth.graph.relationship(a, b, IpVersion::V4).unwrap();
                // Hybrid injection can turn a clique link into transit on v6
                // but the v4 side may also be rewritten only to peering.
                assert!(rel.is_peering() || rel.is_transit());
            }
        }
    }

    #[test]
    fn customer_provider_paths_are_valley_free_on_v4() {
        // A stub's path up through its provider chain to a tier-1 must be
        // valley-free under the ground-truth annotation.
        let truth = truth_small();
        let stub = truth.ases_of_tier(PlannedTier::Stub)[0];
        // Walk up: pick any provider repeatedly.
        let mut path = vec![stub];
        let mut current = stub;
        for _ in 0..6 {
            let provider = truth
                .graph
                .neighbors(current, IpVersion::V4)
                .find(|(_, rel)| *rel == Some(Relationship::CustomerToProvider))
                .map(|(asn, _)| asn);
            match provider {
                Some(p) if !path.contains(&p) => {
                    path.push(p);
                    current = p;
                }
                _ => break,
            }
        }
        if path.len() > 1 {
            assert!(classify_path(&truth.graph, &path, IpVersion::V4).is_valley_free());
        }
    }

    #[test]
    fn sibling_links_exist_but_are_rare() {
        let truth = generate(&TopologyConfig::default());
        let sibling_count = truth
            .graph
            .plane_edges(IpVersion::V4)
            .filter(|e| e.rel_v4 == Some(Relationship::SiblingToSibling))
            .count();
        let total = truth.plane_link_count(IpVersion::V4);
        assert!(sibling_count > 0);
        assert!((sibling_count as f64) < total as f64 * 0.05);
    }

    #[test]
    fn asns_stay_in_16_bit_space() {
        let truth = truth_small();
        for asn in truth.graph.asns() {
            assert!(asn.is_16bit(), "{asn} exceeds 16 bits");
            assert!(asn.is_public(), "{asn} is reserved");
        }
    }

    /// The original linear-scan weighted picker, kept verbatim as the
    /// reference [`DegreeSampler`] must match draw for draw.
    fn pick_weighted_reference<R: Rng>(
        pool: &[Asn],
        degree: &HashMap<Asn, usize>,
        count: usize,
        rng: &mut R,
    ) -> Vec<Asn> {
        if pool.len() <= count {
            return pool.to_vec();
        }
        let mut chosen = Vec::with_capacity(count);
        let mut attempts = 0;
        while chosen.len() < count && attempts < count * 20 {
            attempts += 1;
            let total: usize = pool.iter().map(|a| degree.get(a).unwrap_or(&0) + 1).sum();
            let mut target = rng.gen_range(0..total);
            let mut pick = pool[0];
            for &candidate in pool {
                let w = degree.get(&candidate).unwrap_or(&0) + 1;
                if target < w {
                    pick = candidate;
                    break;
                }
                target -= w;
            }
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        if chosen.is_empty() {
            chosen.push(*pool.choose(rng).expect("pool checked non-empty"));
        }
        chosen
    }

    #[test]
    fn fenwick_sampler_matches_the_linear_reference_draw_for_draw() {
        // Random pools and degree histories: the Fenwick-backed sampler
        // must consume the identical RNG stream and return the identical
        // picks as the linear scan it replaced, or every pre-existing
        // topology (and golden) would shift.
        let mut seed_rng = ChaCha8Rng::seed_from_u64(0x5eed);
        for round in 0..50 {
            let pool_size = 1 + (round % 17);
            let pool: Vec<Asn> = (0..pool_size).map(|i| Asn(1000 + i as u32)).collect();
            let mut degree: HashMap<Asn, usize> = HashMap::new();
            let mut sampler = DegreeSampler::new(&pool);
            for _ in 0..(round * 3) {
                let asn = pool[seed_rng.gen_range(0..pool.len())];
                *degree.entry(asn).or_insert(0) += 1;
                sampler.bump(asn);
            }
            for count in [1usize, 2, 3, pool_size, pool_size + 2] {
                let mut rng_a = ChaCha8Rng::seed_from_u64(round as u64 * 31 + count as u64);
                let mut rng_b = rng_a.clone();
                let fast = sampler.pick(count, &mut rng_a);
                let slow = pick_weighted_reference(&pool, &degree, count, &mut rng_b);
                assert_eq!(fast, slow, "round {round} count {count}");
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG streams diverged");
            }
        }
    }

    #[test]
    fn generation_crosses_the_16_bit_asn_boundary_when_allowed() {
        let config =
            TopologyConfig { first_asn: 65_500, allow_32bit_asns: true, ..TopologyConfig::tiny() };
        let truth = generate(&config);
        assert_eq!(truth.tiers.len(), config.total_as_count());
        let wide = truth.graph.asns().filter(|a| !a.is_16bit()).count();
        assert!(wide > 0, "the block must spill past 65535");
        let comps = connected_components(&truth.graph, IpVersion::V4);
        assert_eq!(comps.len(), 1, "32-bit ASes join the same connected topology");
    }
}
