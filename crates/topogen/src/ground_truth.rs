//! The generator's output: the annotated graph plus its book-keeping.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, Relationship, RelationshipPair};

/// The structural role the generator *planned* for an AS. This is the
/// intended role, independent of what a structural classifier would infer
/// from the resulting graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlannedTier {
    /// Member of the transit-free clique.
    Tier1,
    /// Transit provider that buys transit itself.
    Tier2,
    /// Leaf AS.
    Stub,
}

impl PlannedTier {
    /// Short label.
    pub const fn label(self) -> &'static str {
        match self {
            PlannedTier::Tier1 => "tier-1",
            PlannedTier::Tier2 => "tier-2",
            PlannedTier::Stub => "stub",
        }
    }
}

/// The kind of hybrid relationship a link received, following the paper's
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HybridClass {
    /// Peering on IPv4, transit (either direction) on IPv6 — 67% of the
    /// hybrids the paper found.
    PeeringV4TransitV6,
    /// Transit on IPv4, peering on IPv6 — the bulk of the remaining third.
    TransitV4PeeringV6,
    /// Transit on both planes but in opposite directions — the paper found
    /// exactly one such link.
    OppositeTransit,
}

impl HybridClass {
    /// Classify an oriented pair of per-plane relationships; `None` when
    /// the pair is not hybrid (or involves siblings).
    pub fn classify(pair: RelationshipPair) -> Option<HybridClass> {
        if !pair.is_hybrid() {
            return None;
        }
        match (pair.v4, pair.v6) {
            (Relationship::PeerToPeer, r6) if r6.is_transit() => {
                Some(HybridClass::PeeringV4TransitV6)
            }
            (r4, Relationship::PeerToPeer) if r4.is_transit() => {
                Some(HybridClass::TransitV4PeeringV6)
            }
            (r4, r6) if r4.is_transit() && r6.is_transit() && r4 != r6 => {
                Some(HybridClass::OppositeTransit)
            }
            _ => None,
        }
    }

    /// Short label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            HybridClass::PeeringV4TransitV6 => "p2p(v4)/transit(v6)",
            HybridClass::TransitV4PeeringV6 => "transit(v4)/p2p(v6)",
            HybridClass::OppositeTransit => "opposite-transit",
        }
    }
}

/// One link that the generator made hybrid, with its per-plane ground
/// truth (oriented `a → b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridLink {
    /// First endpoint.
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// Ground-truth relationships, oriented `a → b`.
    pub relationships: RelationshipPair,
    /// The hybrid class.
    pub class: HybridClass,
}

/// Everything the generator knows about the topology it produced.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// The annotated graph: per-plane presence and true relationships.
    pub graph: AsGraph,
    /// The planned tier of every AS.
    pub tiers: HashMap<Asn, PlannedTier>,
    /// Which ASes are IPv6-capable.
    pub ipv6_capable: HashMap<Asn, bool>,
    /// Every link that was made hybrid, with its class.
    pub hybrid_links: Vec<HybridLink>,
    /// The configuration seed, for provenance.
    pub seed: u64,
}

impl GroundTruth {
    /// ASes of a given planned tier, sorted.
    pub fn ases_of_tier(&self, tier: PlannedTier) -> Vec<Asn> {
        let mut out: Vec<Asn> =
            self.tiers.iter().filter(|(_, t)| **t == tier).map(|(a, _)| *a).collect();
        out.sort();
        out
    }

    /// Number of IPv6-capable ASes.
    pub fn ipv6_as_count(&self) -> usize {
        self.ipv6_capable.values().filter(|v| **v).count()
    }

    /// Links present on a plane.
    pub fn plane_link_count(&self, plane: IpVersion) -> usize {
        self.graph.plane_edge_count(plane)
    }

    /// Links present on both planes.
    pub fn dual_stack_link_count(&self) -> usize {
        self.graph.dual_stack_edges().count()
    }

    /// The ground-truth relationship pair of a link (oriented `a → b`), if
    /// both planes are annotated.
    pub fn relationship_pair(&self, a: Asn, b: Asn) -> Option<RelationshipPair> {
        let v4 = self.graph.relationship(a, b, IpVersion::V4)?;
        let v6 = self.graph.relationship(a, b, IpVersion::V6)?;
        Some(RelationshipPair::new(v4, v6))
    }

    /// Count hybrids per class.
    pub fn hybrid_class_counts(&self) -> HashMap<HybridClass, usize> {
        let mut counts = HashMap::new();
        for link in &self.hybrid_links {
            *counts.entry(link.class).or_insert(0) += 1;
        }
        counts
    }

    /// Fraction of dual-stack links that are hybrid.
    pub fn hybrid_fraction(&self) -> f64 {
        let dual = self.dual_stack_link_count();
        if dual == 0 {
            0.0
        } else {
            self.hybrid_links.len() as f64 / dual as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Relationship::*;

    #[test]
    fn hybrid_classification() {
        use HybridClass::*;
        assert_eq!(
            HybridClass::classify(RelationshipPair::new(PeerToPeer, ProviderToCustomer)),
            Some(PeeringV4TransitV6)
        );
        assert_eq!(
            HybridClass::classify(RelationshipPair::new(PeerToPeer, CustomerToProvider)),
            Some(PeeringV4TransitV6)
        );
        assert_eq!(
            HybridClass::classify(RelationshipPair::new(ProviderToCustomer, PeerToPeer)),
            Some(TransitV4PeeringV6)
        );
        assert_eq!(
            HybridClass::classify(RelationshipPair::new(ProviderToCustomer, CustomerToProvider)),
            Some(OppositeTransit)
        );
        assert_eq!(
            HybridClass::classify(RelationshipPair::new(CustomerToProvider, ProviderToCustomer)),
            Some(OppositeTransit)
        );
        // Non-hybrid and sibling-involved pairs are not classified.
        assert_eq!(HybridClass::classify(RelationshipPair::new(PeerToPeer, PeerToPeer)), None);
        assert_eq!(
            HybridClass::classify(RelationshipPair::new(SiblingToSibling, PeerToPeer)),
            None
        );
        assert_eq!(HybridClass::PeeringV4TransitV6.label(), "p2p(v4)/transit(v6)");
    }

    #[test]
    fn ground_truth_accessors() {
        let mut truth = GroundTruth::default();
        truth.graph.annotate_both(Asn(1), Asn(2), ProviderToCustomer);
        truth.graph.annotate(Asn(1), Asn(3), IpVersion::V4, PeerToPeer);
        truth.graph.annotate(Asn(1), Asn(3), IpVersion::V6, ProviderToCustomer);
        truth.tiers.insert(Asn(1), PlannedTier::Tier1);
        truth.tiers.insert(Asn(2), PlannedTier::Stub);
        truth.tiers.insert(Asn(3), PlannedTier::Tier2);
        truth.ipv6_capable.insert(Asn(1), true);
        truth.ipv6_capable.insert(Asn(2), true);
        truth.ipv6_capable.insert(Asn(3), false);
        truth.hybrid_links.push(HybridLink {
            a: Asn(1),
            b: Asn(3),
            relationships: RelationshipPair::new(PeerToPeer, ProviderToCustomer),
            class: HybridClass::PeeringV4TransitV6,
        });

        assert_eq!(truth.ases_of_tier(PlannedTier::Tier1), vec![Asn(1)]);
        assert_eq!(truth.ipv6_as_count(), 2);
        assert_eq!(truth.plane_link_count(IpVersion::V4), 2);
        assert_eq!(truth.dual_stack_link_count(), 2);
        assert_eq!(
            truth.relationship_pair(Asn(1), Asn(3)),
            Some(RelationshipPair::new(PeerToPeer, ProviderToCustomer))
        );
        assert_eq!(
            truth.relationship_pair(Asn(3), Asn(1)),
            Some(RelationshipPair::new(PeerToPeer, CustomerToProvider))
        );
        assert_eq!(truth.hybrid_class_counts()[&HybridClass::PeeringV4TransitV6], 1);
        assert!((truth.hybrid_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(PlannedTier::Stub.label(), "stub");
    }
}
