//! Topology generator configuration.

use serde::{Deserialize, Serialize};

/// All knobs of the synthetic topology generator.
///
/// The defaults produce a topology of roughly 6,000 ASes whose IPv6 plane
/// has on the order of 10,000 links — the same order of magnitude as the
/// August 2010 snapshot the paper measured — while staying fast enough for
/// the full pipeline to run in seconds. Every experiment can scale the
/// counts up or down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Seed for the deterministic RNG. Same config + same seed = same
    /// topology, byte for byte.
    pub seed: u64,

    /// Number of tier-1 (transit-free) ASes, fully meshed with p2p links.
    pub tier1_count: usize,
    /// Number of tier-2 transit ASes.
    pub tier2_count: usize,
    /// Number of stub ASes.
    pub stub_count: usize,

    /// Minimum / maximum providers a tier-2 AS buys transit from.
    pub tier2_providers: (usize, usize),
    /// Minimum / maximum providers a stub AS buys transit from.
    pub stub_providers: (usize, usize),
    /// Probability that a stub attaches directly to a tier-1 instead of a
    /// tier-2 for each provider slot.
    pub stub_direct_tier1_probability: f64,

    /// Expected number of tier-2/tier-2 peering links per tier-2 AS.
    pub tier2_peering_degree: f64,
    /// Expected number of IXP-style peerings per stub AS.
    pub stub_peering_degree: f64,

    /// Probability that a tier-2 AS is IPv6-capable (tier-1s always are).
    pub tier2_ipv6_adoption: f64,
    /// Probability that a stub AS is IPv6-capable.
    pub stub_ipv6_adoption: f64,
    /// Probability that a link between two IPv6-capable ASes actually
    /// carries IPv6 routes (dual-stack ASes do not necessarily enable v6
    /// on every session).
    pub link_ipv6_activation: f64,
    /// Expected number of *additional* IPv6-only peering links per
    /// IPv6-capable AS (the relaxed v6 peering the paper describes); these
    /// links have no IPv4 counterpart.
    pub v6_only_peering_degree: f64,

    /// Fraction of dual-stack links that receive a hybrid (different
    /// per-plane) relationship. The paper measured 13%.
    pub hybrid_fraction: f64,
    /// Among hybrid links, the share that are p2p on IPv4 and transit on
    /// IPv6 (the paper measured 67%); the remainder are p2c on IPv4 and
    /// p2p on IPv6, except for `hybrid_opposite_transit_count` links.
    pub hybrid_p2p4_transit6_share: f64,
    /// Number of hybrid links with *opposite* transit direction between
    /// the planes (the paper found exactly one such case).
    pub hybrid_opposite_transit_count: usize,
    /// Bias exponent for picking hybrid links: candidate dual-stack links
    /// are weighted by `(deg(a) * deg(b))^bias`, reproducing the paper's
    /// observation that hybrids sit between well-connected ASes. 0 = no
    /// bias.
    pub hybrid_degree_bias: f64,

    /// Fraction of provider links replaced by sibling (s2s) links.
    pub sibling_fraction: f64,

    /// First ASN allocated; ASNs are sequential from here and by default
    /// must stay in 16-bit space so classic communities can name them.
    pub first_asn: u32,

    /// Allow the allocated ASN block to spill past the 16-bit boundary
    /// (the internet-scale presets need it — 100k ASes cannot fit under
    /// 65536). ASes with 32-bit ASNs participate fully in the topology
    /// and in routing, but — exactly as in the real Internet — classic
    /// communities cannot name them, so they never tag, and the policy
    /// layer gives them an empty community scheme.
    pub allow_32bit_asns: bool,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 20100801,
            tier1_count: 12,
            tier2_count: 700,
            stub_count: 5300,
            tier2_providers: (1, 3),
            stub_providers: (1, 2),
            stub_direct_tier1_probability: 0.05,
            tier2_peering_degree: 3.0,
            stub_peering_degree: 0.4,
            tier2_ipv6_adoption: 0.75,
            stub_ipv6_adoption: 0.32,
            link_ipv6_activation: 0.9,
            v6_only_peering_degree: 0.9,
            hybrid_fraction: 0.13,
            hybrid_p2p4_transit6_share: 0.67,
            hybrid_opposite_transit_count: 1,
            hybrid_degree_bias: 1.0,
            sibling_fraction: 0.01,
            first_asn: 100,
            allow_32bit_asns: false,
        }
    }
}

impl TopologyConfig {
    /// A small configuration (hundreds of ASes) for unit tests and doc
    /// examples; runs in milliseconds.
    pub fn small() -> Self {
        TopologyConfig { tier1_count: 6, tier2_count: 60, stub_count: 400, ..Default::default() }
    }

    /// A tiny configuration (tens of ASes) for property tests that must
    /// run the generator hundreds of times.
    pub fn tiny() -> Self {
        TopologyConfig {
            tier1_count: 4,
            tier2_count: 12,
            stub_count: 40,
            tier2_peering_degree: 1.5,
            stub_peering_degree: 0.3,
            ..Default::default()
        }
    }

    /// A CAIDA-shaped topology at roughly `total` ASes: a 13-member
    /// tier-1 clique (the real Internet's transit-free core has hovered
    /// around that size for a decade), ~15% tier-2 transit providers and
    /// the rest stubs, with the peering knobs left at the defaults
    /// (rank-weighted provider attachment and degree-proportional peering
    /// are properties of the generator itself). Adoption probabilities
    /// stay at the paper-era defaults so the hybrid machinery has the
    /// same relative substrate at every scale.
    fn internet(total: usize) -> Self {
        let tier1_count = 13;
        let tier2_count = total * 15 / 100;
        TopologyConfig {
            tier1_count,
            tier2_count,
            stub_count: total - tier1_count - tier2_count,
            allow_32bit_asns: true,
            ..Default::default()
        }
    }

    /// A 10,000-AS internet-shaped topology (≈ the IPv6 AS count the
    /// years right after the paper).
    pub fn internet_10k() -> Self {
        Self::internet(10_000)
    }

    /// A 50,000-AS internet-shaped topology (≈ the full AS-level
    /// Internet of the mid-2010s).
    pub fn internet_50k() -> Self {
        Self::internet(50_000)
    }

    /// A 100,000-AS internet-shaped topology (beyond today's ~75k ASes —
    /// the headroom scale; overflows the 16-bit ASN space, which
    /// `allow_32bit_asns` permits).
    pub fn internet_100k() -> Self {
        Self::internet(100_000)
    }

    /// Total number of ASes this configuration will generate.
    pub fn total_as_count(&self) -> usize {
        self.tier1_count + self.tier2_count + self.stub_count
    }

    /// Validate structural constraints; returns a human-readable complaint
    /// for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tier1_count < 2 {
            return Err("tier1_count must be at least 2".into());
        }
        if self.tier2_count == 0 {
            return Err("tier2_count must be positive".into());
        }
        if self.tier2_providers.0 == 0 || self.stub_providers.0 == 0 {
            return Err("every non-tier-1 AS needs at least one provider".into());
        }
        if self.tier2_providers.0 > self.tier2_providers.1
            || self.stub_providers.0 > self.stub_providers.1
        {
            return Err("provider ranges must be (min <= max)".into());
        }
        for (name, p) in [
            ("stub_direct_tier1_probability", self.stub_direct_tier1_probability),
            ("tier2_ipv6_adoption", self.tier2_ipv6_adoption),
            ("stub_ipv6_adoption", self.stub_ipv6_adoption),
            ("link_ipv6_activation", self.link_ipv6_activation),
            ("hybrid_fraction", self.hybrid_fraction),
            ("hybrid_p2p4_transit6_share", self.hybrid_p2p4_transit6_share),
            ("sibling_fraction", self.sibling_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1], got {p}"));
            }
        }
        let last_asn = self.first_asn as usize + self.total_as_count();
        if !self.allow_32bit_asns && last_asn > u16::MAX as usize {
            return Err(format!(
                "ASN space overflow: {} ASes starting at {} exceed the 16-bit range needed for classic communities (set allow_32bit_asns to permit this)",
                self.total_as_count(),
                self.first_asn
            ));
        }
        // Even with 32-bit ASNs allowed, the simulator's deterministic
        // origin-prefix mapping has 23 usable bits — far beyond any real
        // AS count, but worth failing loudly instead of colliding.
        if last_asn > 1 << 23 {
            return Err(format!(
                "ASN space overflow: {} ASes starting at {} exceed the 23-bit origin-prefix space",
                self.total_as_count(),
                self.first_asn
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = TopologyConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_as_count(), 12 + 700 + 5300);
    }

    #[test]
    fn presets_are_valid_and_smaller() {
        assert!(TopologyConfig::small().validate().is_ok());
        assert!(TopologyConfig::tiny().validate().is_ok());
        assert!(TopologyConfig::tiny().total_as_count() < TopologyConfig::small().total_as_count());
        assert!(
            TopologyConfig::small().total_as_count() < TopologyConfig::default().total_as_count()
        );
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = TopologyConfig { tier1_count: 1, ..TopologyConfig::default() };
        assert!(c.validate().is_err());

        let c = TopologyConfig { hybrid_fraction: 1.5, ..TopologyConfig::default() };
        assert!(c.validate().unwrap_err().contains("hybrid_fraction"));

        let c = TopologyConfig { stub_providers: (3, 1), ..TopologyConfig::default() };
        assert!(c.validate().is_err());

        let c = TopologyConfig { stub_count: 70_000, ..TopologyConfig::default() };
        assert!(c.validate().unwrap_err().contains("ASN space"));

        let c = TopologyConfig { tier2_count: 0, ..TopologyConfig::default() };
        assert!(c.validate().is_err());

        let c = TopologyConfig { tier2_providers: (0, 2), ..TopologyConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn internet_presets_are_valid_and_sized_as_named() {
        for (preset, total) in [
            (TopologyConfig::internet_10k(), 10_000),
            (TopologyConfig::internet_50k(), 50_000),
            (TopologyConfig::internet_100k(), 100_000),
        ] {
            assert!(preset.validate().is_ok(), "{total}: {:?}", preset.validate());
            assert_eq!(preset.total_as_count(), total);
            assert_eq!(preset.tier1_count, 13, "tier-1 clique is CAIDA-sized");
            let tier2_share = preset.tier2_count as f64 / total as f64;
            assert!((tier2_share - 0.15).abs() < 0.01, "~15% transit, got {tier2_share}");
        }
    }

    #[test]
    fn allow_32bit_asns_lifts_only_the_16_bit_ceiling() {
        // Without the flag the 16-bit check still fires (the regression
        // guard for every pre-existing configuration)...
        let c = TopologyConfig { stub_count: 70_000, ..TopologyConfig::default() };
        assert!(c.validate().unwrap_err().contains("ASN space"));
        // ...with it the same configuration is fine...
        let c = TopologyConfig { allow_32bit_asns: true, ..c };
        assert!(c.validate().is_ok());
        // ...but the origin-prefix ceiling is a hard stop either way.
        let c = TopologyConfig { stub_count: 1 << 23, ..c };
        assert!(c.validate().unwrap_err().contains("23-bit"));
    }

    #[test]
    fn serde_roundtrip() {
        let c = TopologyConfig::small();
        let json = serde_json::to_string(&c).unwrap();
        let back: TopologyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
