//! Small hand-built topologies used by tests, examples and the Figure 1
//! reproduction.

use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, Relationship};

use crate::ground_truth::{GroundTruth, HybridClass, HybridLink, PlannedTier};
use bgp_types::RelationshipPair;

/// The five-AS topology of Figure 1 in the paper.
///
/// AS1 is connected to AS2 and AS3; AS2 is the provider of AS4 and AS5.
/// In variant (a) the 1-2 link is p2c (AS1 provider of AS2), in variant
/// (b) it is p2p. The figure shows how AS1's customer tree changes between
/// the two: {2,3,4,5} in (a) versus {3} in (b).
pub fn figure1_topology(link_1_2_is_transit: bool) -> AsGraph {
    let mut g = AsGraph::new();
    let rel_1_2 = if link_1_2_is_transit {
        Relationship::ProviderToCustomer
    } else {
        Relationship::PeerToPeer
    };
    g.annotate_both(Asn(1), Asn(2), rel_1_2);
    g.annotate_both(Asn(1), Asn(3), Relationship::ProviderToCustomer);
    g.annotate_both(Asn(2), Asn(4), Relationship::ProviderToCustomer);
    g.annotate_both(Asn(2), Asn(5), Relationship::ProviderToCustomer);
    g
}

/// A ten-AS dual-plane topology with one hybrid link, small enough to
/// reason about by hand in integration tests and the quickstart example.
///
/// Structure (ASNs):
///
/// ```text
///          10 ===== 20            tier-1 clique (p2p both planes)
///         /  \     /  \
///       30    40 41    42         tier-2 customers
///       /\     |        \
///     50 51   52         53       stubs
/// ```
///
/// The 10-20 link is hybrid: p2p on IPv4 but 10 gives 20 free transit on
/// IPv6 (p2c). The 30-41 link is an IPv6-only peering.
pub fn two_plane_fixture() -> GroundTruth {
    let mut truth = GroundTruth { seed: 0, ..Default::default() };
    let g = &mut truth.graph;

    // Tier-1 "clique" of two: hybrid link.
    g.annotate(Asn(10), Asn(20), IpVersion::V4, Relationship::PeerToPeer);
    g.annotate(Asn(10), Asn(20), IpVersion::V6, Relationship::ProviderToCustomer);

    // Transit edges, identical on both planes.
    for (p, c) in [(10, 30), (10, 40), (20, 41), (20, 42), (30, 50), (30, 51), (40, 52), (42, 53)] {
        g.annotate_both(Asn(p), Asn(c), Relationship::ProviderToCustomer);
    }
    // An IPv6-only peering between tier-2s 30 and 41.
    g.annotate(Asn(30), Asn(41), IpVersion::V6, Relationship::PeerToPeer);

    truth.hybrid_links.push(HybridLink {
        a: Asn(10),
        b: Asn(20),
        relationships: RelationshipPair::new(
            Relationship::PeerToPeer,
            Relationship::ProviderToCustomer,
        ),
        class: HybridClass::PeeringV4TransitV6,
    });
    for asn in [10, 20] {
        truth.tiers.insert(Asn(asn), PlannedTier::Tier1);
    }
    for asn in [30, 40, 41, 42] {
        truth.tiers.insert(Asn(asn), PlannedTier::Tier2);
    }
    for asn in [50, 51, 52, 53] {
        truth.tiers.insert(Asn(asn), PlannedTier::Stub);
    }
    for asn in [10, 20, 30, 40, 41, 42, 50, 51, 52, 53] {
        truth.ipv6_capable.insert(Asn(asn), true);
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::customer_tree::customer_tree;

    #[test]
    fn figure1_variants_differ_exactly_as_the_paper_describes() {
        let a = figure1_topology(true);
        let b = figure1_topology(false);
        assert_eq!(customer_tree(&a, Asn(1), IpVersion::V6), vec![Asn(2), Asn(3), Asn(4), Asn(5)]);
        assert_eq!(customer_tree(&b, Asn(1), IpVersion::V6), vec![Asn(3)]);
    }

    #[test]
    fn fixture_has_one_hybrid_and_one_v6_only_link() {
        let truth = two_plane_fixture();
        assert_eq!(truth.hybrid_links.len(), 1);
        assert_eq!(truth.hybrid_fraction() * truth.dual_stack_link_count() as f64, 1.0);
        assert!(truth.graph.has_link(Asn(30), Asn(41), IpVersion::V6));
        assert!(!truth.graph.has_link(Asn(30), Asn(41), IpVersion::V4));
        assert_eq!(
            truth.plane_link_count(IpVersion::V6),
            truth.plane_link_count(IpVersion::V4) + 1
        );
        assert_eq!(truth.ipv6_as_count(), 10);
        assert_eq!(truth.ases_of_tier(PlannedTier::Tier1), vec![Asn(10), Asn(20)]);
    }

    #[test]
    fn fixture_hybrid_is_recorded_consistently() {
        let truth = two_plane_fixture();
        let pair = truth.relationship_pair(Asn(10), Asn(20)).unwrap();
        assert!(pair.is_hybrid());
        assert_eq!(HybridClass::classify(pair), Some(HybridClass::PeeringV4TransitV6));
    }
}
