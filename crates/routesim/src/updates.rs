//! Deterministic synthetic BGP4MP_ET update streams over a scenario's
//! pooled RIB.
//!
//! A real measurement replays the "updates" archives a collector records
//! between its periodic TABLE_DUMP_V2 snapshots. The simulator plays that
//! role here: starting from the pooled snapshot a scenario already
//! produced, it flaps a deterministic, seed-driven subset of the table —
//! withdrawing routes, re-announcing them later, and occasionally
//! re-announcing a prefix with the attributes of a different table entry
//! (the path-change shape BGP path hunting produces). Every event is
//! emitted as a `BGP4MP_ET` `MESSAGE_AS4` record with a microsecond
//! timestamp, so replaying the stream exercises the same wire format a
//! RouteViews updates file uses.
//!
//! The stream is windowed: each window models the updates between two
//! consecutive table snapshots, and all records inside one window share a
//! header timestamp (windows are one second apart; the microsecond field
//! orders events within the window). The same `(scenario, config)` pair
//! always yields byte-identical records.

use std::collections::BTreeMap;
use std::net::IpAddr;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use bgp_types::{Asn, PathAttributes, PeerId, Prefix};
use mrt::record::bgp4mp_subtype;
use mrt::{Bgp4mpMessage, MrtHeader, MrtRecord, MrtRecordBody, MrtType};

use crate::scenario::Scenario;

/// Shape of a synthetic update stream (see [`Scenario::update_stream`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStreamConfig {
    /// Number of windows (inter-snapshot intervals) to synthesise.
    pub windows: usize,
    /// Events (withdrawals / announcements) per window.
    pub events_per_window: usize,
    /// Seed for the event choices, independent of the scenario seed.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        UpdateStreamConfig { windows: 4, events_per_window: 24, seed: 11 }
    }
}

/// The ASN the synthetic collector speaks BGP from. Reserved, like a real
/// collector's private peering ASN; it never appears in any AS path.
const COLLECTOR_ASN: Asn = Asn(64_999);

fn collector_addr(peer: IpAddr) -> IpAddr {
    match peer {
        IpAddr::V4(_) => "192.0.2.254".parse().expect("literal parses"),
        IpAddr::V6(_) => "2001:db8::ffff".parse().expect("literal parses"),
    }
}

impl Scenario {
    /// Synthesise a windowed BGP4MP_ET update stream over this scenario's
    /// pooled RIB: per window, `events_per_window` seed-driven withdrawals
    /// and (re-)announcements of entries drawn from the table. Withdrawn
    /// routes are re-announced in later events, usually with their
    /// original attributes, occasionally with the attributes of another
    /// table entry (a path change). The result is deterministic in
    /// `(self, config)` and independent of every execution knob.
    pub fn update_stream(&self, config: &UpdateStreamConfig) -> Vec<Vec<MrtRecord>> {
        // The same collapsed view a streaming consumer keeps: one route
        // per (prefix, peer), last write wins.
        let base = self.pooled_snapshot(1);
        let mut table: BTreeMap<(Prefix, PeerId), PathAttributes> = BTreeMap::new();
        for entry in &base.entries {
            table.insert((entry.prefix, entry.peer), entry.attrs.clone());
        }
        let keys: Vec<(Prefix, PeerId)> = table.keys().copied().collect();
        let originals: Vec<PathAttributes> = table.into_values().collect();

        let mut windows = Vec::with_capacity(config.windows);
        if keys.is_empty() {
            windows.resize_with(config.windows, Vec::new);
            return windows;
        }

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7570_6474);
        let mut alive = vec![true; keys.len()];
        let start = self.sim_config.timestamp + 60;
        for window in 0..config.windows {
            let timestamp = u32::try_from(start + window as u64).unwrap_or(u32::MAX);
            let mut records = Vec::with_capacity(config.events_per_window);
            for event in 0..config.events_per_window {
                let i = rng.gen_range(0..keys.len());
                let (prefix, peer) = keys[i];
                let message = if alive[i] {
                    if rng.gen_bool(0.125) {
                        // Path change: keep the route but borrow another
                        // entry's attributes (path, communities, LocPrf).
                        let j = rng.gen_range(0..keys.len());
                        Bgp4mpMessage::announcement(
                            peer.asn,
                            COLLECTOR_ASN,
                            peer.addr,
                            collector_addr(peer.addr),
                            &originals[j],
                            &prefix,
                        )
                    } else {
                        alive[i] = false;
                        Bgp4mpMessage::withdrawal(
                            peer.asn,
                            COLLECTOR_ASN,
                            peer.addr,
                            collector_addr(peer.addr),
                            &[prefix],
                        )
                    }
                } else {
                    alive[i] = true;
                    Bgp4mpMessage::announcement(
                        peer.asn,
                        COLLECTOR_ASN,
                        peer.addr,
                        collector_addr(peer.addr),
                        &originals[i],
                        &prefix,
                    )
                };
                records.push(MrtRecord {
                    header: MrtHeader {
                        timestamp,
                        mrt_type: MrtType::Bgp4mpEt.code(),
                        subtype: bgp4mp_subtype::MESSAGE_AS4,
                        length: 0,
                    },
                    micros: Some(event as u32 * 1_000),
                    body: MrtRecordBody::Bgp4mp(message),
                });
            }
            windows.push(records);
        }
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use topogen::TopologyConfig;

    fn scenario() -> Scenario {
        Scenario::build(&TopologyConfig::tiny(), &SimConfig::small())
    }

    #[test]
    fn stream_is_deterministic_and_windowed() {
        let scenario = scenario();
        let config = UpdateStreamConfig { windows: 3, events_per_window: 8, seed: 5 };
        let a = scenario.update_stream(&config);
        let b = scenario.update_stream(&config);
        assert_eq!(a, b, "same seed, same records");
        assert_eq!(a.len(), 3);
        for (w, records) in a.iter().enumerate() {
            assert_eq!(records.len(), 8);
            for (e, record) in records.iter().enumerate() {
                assert_eq!(record.header.mrt_type, MrtType::Bgp4mpEt.code());
                assert_eq!(
                    record.header.timestamp as u64,
                    scenario.sim_config.timestamp + 60 + w as u64
                );
                assert_eq!(record.micros, Some(e as u32 * 1_000));
                assert!(matches!(record.body, MrtRecordBody::Bgp4mp(_)));
            }
        }
        let different = scenario.update_stream(&UpdateStreamConfig { seed: 6, ..config });
        assert_ne!(a, different, "the seed steers the event choices");
    }

    #[test]
    fn stream_mixes_withdrawals_and_announcements() {
        let scenario = scenario();
        let stream = scenario.update_stream(&UpdateStreamConfig {
            windows: 4,
            events_per_window: 32,
            seed: 1,
        });
        let mut announced = 0usize;
        let mut withdrawn = 0usize;
        for record in stream.iter().flatten() {
            let MrtRecordBody::Bgp4mp(message) = &record.body else { panic!("bgp4mp only") };
            let update = message.update.as_ref().expect("every event is an UPDATE");
            announced += update.announced.len();
            withdrawn += update.withdrawn.len();
        }
        assert!(announced > 0, "some announcements");
        assert!(withdrawn > 0, "some withdrawals");
    }

    #[test]
    fn empty_table_yields_empty_windows() {
        let mut scenario = scenario();
        scenario.snapshots.clear();
        let stream = scenario.update_stream(&UpdateStreamConfig::default());
        assert_eq!(stream.len(), 4);
        assert!(stream.iter().all(Vec::is_empty));
    }
}
