//! Deterministic sharding of per-item work across scoped worker threads.
//!
//! The whole workspace's parallelism runs through [`shard_map`]: the input
//! slice is striped across `std::thread::scope` workers (worker `w` maps
//! items `w, w + workers, w + 2·workers, …`) and the results are
//! reassembled in input order. Because every item is mapped by a pure
//! function of the item itself, the output is element-for-element
//! identical to the sequential `items.iter().map(f)` whatever the worker
//! count — which is what lets the determinism suite demand byte-identical
//! reports at any `concurrency` setting. Striping (rather than contiguous
//! chunking) keeps the shards balanced when per-item cost is skewed, as
//! it is for propagation: origin lists are sorted by ASN and the
//! generated topologies give low ASNs to the high-degree tier-1/tier-2
//! ASes, so the expensive origins cluster at the head of the list.

/// Resolve a `concurrency` knob to a worker count: `0` means "all
/// available parallelism", any other value is taken literally (`1` is the
/// fully sequential path).
pub fn effective_concurrency(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        requested
    }
}

/// Map `f` over `items` on up to `workers` scoped threads, preserving
/// input order.
///
/// `workers` is used as given (resolve `0 = auto` with
/// [`effective_concurrency`] first). With one worker — or one item — no
/// thread is spawned at all, so `workers = 1` is exactly the sequential
/// path, not a single-thread simulation of the parallel one.
pub fn shard_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // Stripe items across workers (worker w handles items w, w+workers,
    // …): deterministic, and it spreads a cost-skewed head of the list
    // over every worker instead of loading it onto shard 0.
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope
                    .spawn(move || items.iter().skip(w).step_by(workers).map(f).collect::<Vec<U>>())
            })
            .collect();
        shards = handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
    });
    // Inverse of the striping: item i is element i / workers of shard
    // i % workers, so a round-robin drain restores input order.
    let mut drains: Vec<std::vec::IntoIter<U>> = shards.into_iter().map(Vec::into_iter).collect();
    (0..items.len())
        .map(|i| drains[i % workers].next().expect("stripes cover every index exactly once"))
        .collect()
}

/// [`shard_map`] over owned items: `f` consumes each item instead of
/// borrowing it, which lets workers mutate heavyweight per-item state in
/// place (the incremental sweep moves each dirty source's distance map
/// through its repair without cloning it). Same striping, same in-order
/// reassembly, same sequential fast path — and therefore the same
/// determinism contract as [`shard_map`].
pub fn shard_map_owned<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Pre-stripe the owned items into one bucket per worker (item i goes
    // to bucket i % workers, preserving relative order within a bucket).
    let mut buckets: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push(item);
    }
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| scope.spawn(move || bucket.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        shards = handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
    });
    let total: usize = shards.iter().map(Vec::len).sum();
    let mut drains: Vec<std::vec::IntoIter<U>> = shards.into_iter().map(Vec::into_iter).collect();
    (0..total)
        .map(|i| drains[i % workers].next().expect("stripes cover every index exactly once"))
        .collect()
}

/// Stripe a frontier scan across up to `workers` scoped threads and
/// return the concatenated per-item results in frontier order.
///
/// This is the within-origin counterpart of [`shard_map`]: one level of a
/// level-synchronous BFS hands its frontier here, `scan` emits each
/// frontier node's candidate routes into the provided buffer, and the
/// merged vector is exactly what the sequential
/// `for node in frontier { scan(node, &mut out) }` loop would have
/// produced — every worker count yields the same candidate sequence, so
/// the caller's deterministic merge (and therefore the report bytes)
/// never depends on `workers`. With one worker — or one frontier node —
/// no thread is spawned at all.
pub fn shard_frontier<T, U, F>(frontier: &[T], workers: usize, scan: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, &mut Vec<U>) + Sync,
{
    let workers = workers.clamp(1, frontier.len().max(1));
    if workers <= 1 {
        let mut out = Vec::new();
        for item in frontier {
            scan(item, &mut out);
        }
        return out;
    }
    // Worker w scans frontier items w, w+workers, … into one buffer per
    // item, so the round-robin drain below can interleave the buffers
    // back into frontier order even though items emit different numbers
    // of candidates.
    let mut shards: Vec<Vec<Vec<U>>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let scan = &scan;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    frontier
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(|item| {
                            let mut out = Vec::new();
                            scan(item, &mut out);
                            out
                        })
                        .collect::<Vec<Vec<U>>>()
                })
            })
            .collect();
        shards = handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
    });
    let mut drains: Vec<std::vec::IntoIter<Vec<U>>> =
        shards.into_iter().map(Vec::into_iter).collect();
    let mut merged = Vec::new();
    for i in 0..frontier.len() {
        merged.extend(drains[i % workers].next().expect("stripes cover every index exactly once"));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_concurrency_resolves_zero_to_at_least_one() {
        assert!(effective_concurrency(0) >= 1);
        assert_eq!(effective_concurrency(1), 1);
        assert_eq!(effective_concurrency(7), 7);
    }

    #[test]
    fn shard_map_preserves_order_for_any_worker_count() {
        let items: Vec<u32> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for workers in [0, 1, 2, 3, 8, 200] {
            let got = shard_map(&items, workers, |&x| u64::from(x) * 3);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn shard_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(shard_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(shard_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn shard_frontier_matches_the_sequential_scan_for_any_worker_count() {
        // Items emit variable-length runs (item x emits x % 4 values), so
        // the merge has to interleave buffers, not just concatenate.
        let frontier: Vec<u32> = (0..97).collect();
        let scan = |&x: &u32, out: &mut Vec<u64>| {
            for k in 0..(x % 4) {
                out.push(u64::from(x) * 10 + u64::from(k));
            }
        };
        let mut expected = Vec::new();
        for item in &frontier {
            scan(item, &mut expected);
        }
        for workers in [0usize, 1, 2, 3, 8, 200] {
            let got = shard_frontier(&frontier, workers, scan);
            assert_eq!(got, expected, "workers={workers}");
        }
        assert!(shard_frontier(&Vec::<u32>::new(), 4, scan).is_empty());
    }

    #[test]
    fn shard_map_owned_preserves_order_and_moves_items() {
        // Non-Clone payloads prove the items are moved, not copied.
        struct Payload(u32);
        for workers in [0usize, 1, 2, 3, 8, 200] {
            let items: Vec<Payload> = (0..101).map(Payload).collect();
            let got = shard_map_owned(items, workers, |p| u64::from(p.0) * 3);
            let expected: Vec<u64> = (0..101u32).map(|x| u64::from(x) * 3).collect();
            assert_eq!(got, expected, "workers={workers}");
        }
        assert!(shard_map_owned(Vec::<u32>::new(), 4, |x| x).is_empty());
        assert_eq!(shard_map_owned(vec![9u32], 4, |x| x + 1), vec![10]);
    }
}
