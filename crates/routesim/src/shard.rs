//! Deterministic sharding of per-item work across scoped worker threads.
//!
//! The whole workspace's parallelism runs through [`shard_map`]: the input
//! slice is striped across `std::thread::scope` workers (worker `w` maps
//! items `w, w + workers, w + 2·workers, …`) and the results are
//! reassembled in input order. Because every item is mapped by a pure
//! function of the item itself, the output is element-for-element
//! identical to the sequential `items.iter().map(f)` whatever the worker
//! count — which is what lets the determinism suite demand byte-identical
//! reports at any `concurrency` setting. Striping (rather than contiguous
//! chunking) keeps the shards balanced when per-item cost is skewed, as
//! it is for propagation: origin lists are sorted by ASN and the
//! generated topologies give low ASNs to the high-degree tier-1/tier-2
//! ASes, so the expensive origins cluster at the head of the list.

/// Resolve a `concurrency` knob to a worker count: `0` means "all
/// available parallelism", any other value is taken literally (`1` is the
/// fully sequential path).
pub fn effective_concurrency(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        requested
    }
}

/// Map `f` over `items` on up to `workers` scoped threads, preserving
/// input order.
///
/// `workers` is used as given (resolve `0 = auto` with
/// [`effective_concurrency`] first). With one worker — or one item — no
/// thread is spawned at all, so `workers = 1` is exactly the sequential
/// path, not a single-thread simulation of the parallel one.
pub fn shard_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // Stripe items across workers (worker w handles items w, w+workers,
    // …): deterministic, and it spreads a cost-skewed head of the list
    // over every worker instead of loading it onto shard 0.
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope
                    .spawn(move || items.iter().skip(w).step_by(workers).map(f).collect::<Vec<U>>())
            })
            .collect();
        shards = handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
    });
    // Inverse of the striping: item i is element i / workers of shard
    // i % workers, so a round-robin drain restores input order.
    let mut drains: Vec<std::vec::IntoIter<U>> = shards.into_iter().map(Vec::into_iter).collect();
    (0..items.len())
        .map(|i| drains[i % workers].next().expect("stripes cover every index exactly once"))
        .collect()
}

/// [`shard_map`] over owned items: `f` consumes each item instead of
/// borrowing it, which lets workers mutate heavyweight per-item state in
/// place (the incremental sweep moves each dirty source's distance map
/// through its repair without cloning it). Same striping, same in-order
/// reassembly, same sequential fast path — and therefore the same
/// determinism contract as [`shard_map`].
pub fn shard_map_owned<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Pre-stripe the owned items into one bucket per worker (item i goes
    // to bucket i % workers, preserving relative order within a bucket).
    let mut buckets: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push(item);
    }
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| scope.spawn(move || bucket.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        shards = handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
    });
    let total: usize = shards.iter().map(Vec::len).sum();
    let mut drains: Vec<std::vec::IntoIter<U>> = shards.into_iter().map(Vec::into_iter).collect();
    (0..total)
        .map(|i| drains[i % workers].next().expect("stripes cover every index exactly once"))
        .collect()
}

/// [`shard_map`] with degree-aware load balancing: items are assigned to
/// workers by LPT (longest-processing-time-first) binning on a caller
/// supplied work estimate, and the results are scattered back into input
/// order.
///
/// Striping balances a cost-skewed *head* of the list; LPT balances any
/// skew the weight function can see — for propagation the estimate is the
/// origin's out-degree, which tracks how wide its customer climb and
/// provider descent fan out. The binning is fully deterministic: weights
/// are sorted descending with the input index as tie-break, each item
/// goes to the least-loaded bin (lowest index on ties), and every result
/// is written back to its item's input slot — so the output is
/// element-for-element the sequential `items.iter().map(f)` whatever the
/// worker count or weight function, exactly like [`shard_map`].
pub fn shard_map_lpt<T, U, W, F>(items: &[T], workers: usize, weight: W, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    W: Fn(&T) -> u64,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let weights: Vec<u64> = items.iter().map(&weight).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut loads: Vec<u64> = vec![0; workers];
    for i in order {
        // min_by_key returns the first minimum, so load ties break to the
        // lowest-index bin — deterministic whatever the weights.
        let b = (0..workers).min_by_key(|&b| loads[b]).expect("workers >= 1");
        bins[b].push(i);
        // Zero-weight items still cost *something* to dispatch; counting
        // them as one unit keeps a run of them spread over the bins.
        loads[b] += weights[i].max(1);
    }
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = bins
            .iter()
            .map(|bin| {
                scope.spawn(move || {
                    bin.iter().map(|&i| (i, f(&items[i]))).collect::<Vec<(usize, U)>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("shard worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("bins cover every index exactly once")).collect()
}

/// Stripe a frontier scan across up to `workers` scoped threads and
/// return the concatenated per-item results in frontier order.
///
/// This is the within-origin counterpart of [`shard_map`]: one level of a
/// level-synchronous BFS hands its frontier here, `scan` emits each
/// frontier node's candidate routes into the provided buffer, and the
/// merged vector is exactly what the sequential
/// `for node in frontier { scan(node, &mut out) }` loop would have
/// produced — every worker count yields the same candidate sequence, so
/// the caller's deterministic merge (and therefore the report bytes)
/// never depends on `workers`. With one worker — or one frontier node —
/// no thread is spawned at all.
pub fn shard_frontier<T, U, F>(frontier: &[T], workers: usize, scan: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, &mut Vec<U>) + Sync,
{
    let workers = workers.clamp(1, frontier.len().max(1));
    if workers <= 1 {
        let mut out = Vec::new();
        for item in frontier {
            scan(item, &mut out);
        }
        return out;
    }
    // Worker w scans frontier items w, w+workers, … into one buffer per
    // item, so the round-robin drain below can interleave the buffers
    // back into frontier order even though items emit different numbers
    // of candidates.
    let mut shards: Vec<Vec<Vec<U>>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let scan = &scan;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    frontier
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(|item| {
                            let mut out = Vec::new();
                            scan(item, &mut out);
                            out
                        })
                        .collect::<Vec<Vec<U>>>()
                })
            })
            .collect();
        shards = handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
    });
    let mut drains: Vec<std::vec::IntoIter<Vec<U>>> =
        shards.into_iter().map(Vec::into_iter).collect();
    let mut merged = Vec::new();
    for i in 0..frontier.len() {
        merged.extend(drains[i % workers].next().expect("stripes cover every index exactly once"));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_concurrency_resolves_zero_to_at_least_one() {
        assert!(effective_concurrency(0) >= 1);
        assert_eq!(effective_concurrency(1), 1);
        assert_eq!(effective_concurrency(7), 7);
    }

    #[test]
    fn shard_map_preserves_order_for_any_worker_count() {
        let items: Vec<u32> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for workers in [0, 1, 2, 3, 8, 200] {
            let got = shard_map(&items, workers, |&x| u64::from(x) * 3);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn shard_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(shard_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(shard_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn shard_map_lpt_preserves_order_for_any_worker_count_and_weighting() {
        let items: Vec<u32> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        // Uniform, skewed, inverted and degenerate (all-zero) weights must
        // all be invisible in the output.
        let weightings: [fn(&u32) -> u64; 4] =
            [|_| 1, |&x| u64::from(x) * u64::from(x), |&x| u64::from(100 - x), |_| 0];
        for weight in weightings {
            for workers in [0usize, 1, 2, 3, 8, 200] {
                let got = shard_map_lpt(&items, workers, weight, |&x| u64::from(x) * 3);
                assert_eq!(got, expected, "workers={workers}");
            }
        }
    }

    #[test]
    fn shard_map_lpt_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(shard_map_lpt(&empty, 4, |_| 1, |&x| x).is_empty());
        assert_eq!(shard_map_lpt(&[9u32], 4, |_| 7, |&x| x + 1), vec![10]);
    }

    #[test]
    fn shard_map_lpt_matches_shard_map_exactly() {
        let items: Vec<u32> = (0..57).collect();
        for workers in [1usize, 2, 5, 16] {
            let striped = shard_map(&items, workers, |&x| x.wrapping_mul(17));
            let binned = shard_map_lpt(&items, workers, |&x| u64::from(x), |&x| x.wrapping_mul(17));
            assert_eq!(binned, striped, "workers={workers}");
        }
    }

    #[test]
    fn shard_frontier_matches_the_sequential_scan_for_any_worker_count() {
        // Items emit variable-length runs (item x emits x % 4 values), so
        // the merge has to interleave buffers, not just concatenate.
        let frontier: Vec<u32> = (0..97).collect();
        let scan = |&x: &u32, out: &mut Vec<u64>| {
            for k in 0..(x % 4) {
                out.push(u64::from(x) * 10 + u64::from(k));
            }
        };
        let mut expected = Vec::new();
        for item in &frontier {
            scan(item, &mut expected);
        }
        for workers in [0usize, 1, 2, 3, 8, 200] {
            let got = shard_frontier(&frontier, workers, scan);
            assert_eq!(got, expected, "workers={workers}");
        }
        assert!(shard_frontier(&Vec::<u32>::new(), 4, scan).is_empty());
    }

    #[test]
    fn shard_map_owned_preserves_order_and_moves_items() {
        // Non-Clone payloads prove the items are moved, not copied.
        struct Payload(u32);
        for workers in [0usize, 1, 2, 3, 8, 200] {
            let items: Vec<Payload> = (0..101).map(Payload).collect();
            let got = shard_map_owned(items, workers, |p| u64::from(p.0) * 3);
            let expected: Vec<u64> = (0..101u32).map(|x| u64::from(x) * 3).collect();
            assert_eq!(got, expected, "workers={workers}");
        }
        assert!(shard_map_owned(Vec::<u32>::new(), 4, |x| x).is_empty());
        assert_eq!(shard_map_owned(vec![9u32], 4, |x| x + 1), vec![10]);
    }
}
