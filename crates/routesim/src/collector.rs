//! Route collectors and their feeder ASes.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use rand::seq::SliceRandom;
use rand::Rng;

use bgp_types::{Asn, CollectorId, IpVersion, PeerId};
use topogen::GroundTruth;

use crate::config::SimConfig;

/// Whether a feeder exports its full attribute set to the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeederKind {
    /// An iBGP-style feed: LocPrf (and MED) are visible, as with the
    /// RouteViews/RIS peers whose LocPrf the paper could read.
    Full,
    /// A plain eBGP feed: AS path and communities only.
    Partial,
}

/// One feeder session of a collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feeder {
    /// The feeder's ASN.
    pub asn: Asn,
    /// Full or partial feed.
    pub kind: FeederKind,
    /// Whether the feeder has an IPv6 session (IPv6-capable ASes only).
    pub feeds_ipv6: bool,
}

impl Feeder {
    /// The peering address used for the given plane. Addresses are derived
    /// deterministically from the ASN so MRT files are reproducible.
    pub fn peer_addr(&self, plane: IpVersion) -> IpAddr {
        let asn = self.asn.value();
        match plane {
            IpVersion::V4 => {
                IpAddr::V4(Ipv4Addr::new(198, 18, ((asn >> 8) & 0xFF) as u8, (asn & 0xFF) as u8))
            }
            IpVersion::V6 => IpAddr::V6(Ipv6Addr::new(
                0x2001,
                0xdb8,
                0xffff,
                0,
                0,
                0,
                (asn >> 16) as u16,
                (asn & 0xFFFF) as u16,
            )),
        }
    }

    /// The peer identity for the given plane.
    pub fn peer_id(&self, plane: IpVersion) -> PeerId {
        PeerId::new(self.asn, self.peer_addr(plane))
    }
}

/// One collector with its feeders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorSetup {
    /// Collector name, e.g. `sim-rv0`.
    pub id: CollectorId,
    /// The feeder sessions.
    pub feeders: Vec<Feeder>,
}

impl CollectorSetup {
    /// Feeders that have a session on the given plane.
    pub fn plane_feeders(&self, plane: IpVersion) -> Vec<&Feeder> {
        self.feeders.iter().filter(|f| plane == IpVersion::V4 || f.feeds_ipv6).collect()
    }
}

/// Select collectors and feeders for a scenario.
///
/// Feeders are drawn without replacement across all collectors (each AS
/// feeds at most one collector, which keeps the merged view free of
/// duplicate peer identities), preferring well-connected ASes the way real
/// collector operators recruit large transit networks, while reserving a
/// minority of slots for smaller networks.
pub fn build_collectors<R: Rng>(
    truth: &GroundTruth,
    config: &SimConfig,
    rng: &mut R,
) -> Vec<CollectorSetup> {
    // Rank candidate feeders by IPv4 degree, descending.
    let mut candidates: Vec<Asn> = truth.graph.asns().collect();
    candidates.sort_by_key(|a| std::cmp::Reverse(truth.graph.degree(*a, IpVersion::V4)));

    let total_needed = config.collector_count * config.feeders_per_collector;
    // Take the top candidates, plus a shuffled tail sample for diversity.
    let head_count = (total_needed * 3 / 4).min(candidates.len());
    let mut pool: Vec<Asn> = candidates[..head_count].to_vec();
    let mut tail: Vec<Asn> = candidates[head_count..].to_vec();
    tail.shuffle(rng);
    pool.extend(tail.into_iter().take(total_needed.saturating_sub(head_count)));

    let mut collectors = Vec::with_capacity(config.collector_count);
    let mut pool_iter = pool.into_iter();
    for c in 0..config.collector_count {
        let mut feeders = Vec::with_capacity(config.feeders_per_collector);
        for _ in 0..config.feeders_per_collector {
            let Some(asn) = pool_iter.next() else { break };
            let kind = if rng.gen_bool(config.full_feeder_fraction) {
                FeederKind::Full
            } else {
                FeederKind::Partial
            };
            let feeds_ipv6 = truth.ipv6_capable.get(&asn).copied().unwrap_or(false);
            feeders.push(Feeder { asn, kind, feeds_ipv6 });
        }
        collectors.push(CollectorSetup { id: CollectorId::new(format!("sim-rv{c}")), feeders });
    }
    collectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use topogen::TopologyConfig;

    fn setup() -> (GroundTruth, Vec<CollectorSetup>) {
        let truth = topogen::generate(&TopologyConfig::small());
        let config = SimConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let collectors = build_collectors(&truth, &config, &mut rng);
        (truth, collectors)
    }

    #[test]
    fn collectors_have_the_configured_shape() {
        let (_, collectors) = setup();
        let config = SimConfig::default();
        assert_eq!(collectors.len(), config.collector_count);
        for c in &collectors {
            assert_eq!(c.feeders.len(), config.feeders_per_collector);
            assert!(c.id.name().starts_with("sim-rv"));
        }
    }

    #[test]
    fn feeders_are_unique_across_collectors() {
        let (_, collectors) = setup();
        let mut all: Vec<Asn> =
            collectors.iter().flat_map(|c| c.feeders.iter().map(|f| f.asn)).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "an AS feeds two collectors");
    }

    #[test]
    fn feeders_prefer_well_connected_ases() {
        let (truth, collectors) = setup();
        let mean_all: f64 =
            truth.graph.asns().map(|a| truth.graph.degree(a, IpVersion::V4) as f64).sum::<f64>()
                / truth.graph.node_count() as f64;
        let feeder_degrees: Vec<f64> = collectors
            .iter()
            .flat_map(|c| c.feeders.iter())
            .map(|f| truth.graph.degree(f.asn, IpVersion::V4) as f64)
            .collect();
        let mean_feeders = feeder_degrees.iter().sum::<f64>() / feeder_degrees.len() as f64;
        assert!(mean_feeders > mean_all, "{mean_feeders} vs {mean_all}");
    }

    #[test]
    fn ipv6_sessions_only_for_capable_feeders() {
        let (truth, collectors) = setup();
        for c in &collectors {
            for f in &c.feeders {
                assert_eq!(f.feeds_ipv6, truth.ipv6_capable[&f.asn]);
            }
            let v6 = c.plane_feeders(IpVersion::V6);
            let v4 = c.plane_feeders(IpVersion::V4);
            assert!(v6.len() <= v4.len());
            assert_eq!(v4.len(), c.feeders.len());
        }
    }

    #[test]
    fn peer_addresses_are_deterministic_and_plane_appropriate() {
        let f = Feeder { asn: Asn(0x1234), kind: FeederKind::Full, feeds_ipv6: true };
        assert_eq!(f.peer_addr(IpVersion::V4), f.peer_addr(IpVersion::V4));
        assert!(f.peer_addr(IpVersion::V4).is_ipv4());
        assert!(f.peer_addr(IpVersion::V6).is_ipv6());
        assert_eq!(f.peer_id(IpVersion::V6).asn, Asn(0x1234));
        assert_eq!(f.peer_id(IpVersion::V6).plane(), IpVersion::V6);
        assert_eq!(f.peer_id(IpVersion::V4).plane(), IpVersion::V4);
        // Distinct ASNs get distinct addresses.
        let g = Feeder { asn: Asn(0x1235), kind: FeederKind::Full, feeds_ipv6: true };
        assert_ne!(f.peer_addr(IpVersion::V4), g.peer_addr(IpVersion::V4));
        assert_ne!(f.peer_addr(IpVersion::V6), g.peer_addr(IpVersion::V6));
    }
}
