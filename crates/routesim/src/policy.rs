//! Per-AS routing policies: LocPrf bases, community schemes, tagging and
//! scrubbing behaviour.

use std::collections::HashMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use bgp_types::{Asn, Relationship};
use irr::{CommunityScheme, RelationshipTag, SchemeGenerator};
use topogen::{GroundTruth, PlannedTier};

use crate::config::SimConfig;

/// The LocPrf values an AS assigns to routes by the relationship class of
/// the neighbor it learned them from. Real ASes use wildly different
/// absolute values; what is (nearly) universal is the ordering
/// customer > peer > provider, which the paper relies on and which the
/// traffic-engineering filter must not be confused by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocPrfPlan {
    /// LocPrf for routes learned from customers.
    pub customer: u32,
    /// LocPrf for routes learned from peers.
    pub peer: u32,
    /// LocPrf for routes learned from providers.
    pub provider: u32,
    /// LocPrf for routes learned from siblings.
    pub sibling: u32,
    /// LocPrf applied when a route carries this AS's "lower preference"
    /// TE community (backup routing).
    pub lowered: u32,
}

impl LocPrfPlan {
    /// The LocPrf assigned to a route learned over a link with the given
    /// relationship (oriented `this AS → neighbor`).
    pub fn for_relationship(&self, rel: Relationship) -> u32 {
        match rel {
            Relationship::ProviderToCustomer => self.customer,
            Relationship::PeerToPeer => self.peer,
            Relationship::CustomerToProvider => self.provider,
            Relationship::SiblingToSibling => self.sibling,
        }
    }

    /// Sanity: the plan respects the conventional ordering.
    pub fn is_conventional(&self) -> bool {
        self.customer > self.peer && self.peer > self.provider && self.lowered < self.provider
    }
}

/// Everything the simulator needs to know about one AS's behaviour.
#[derive(Debug, Clone)]
pub struct AsPolicy {
    /// The AS.
    pub asn: Asn,
    /// LocPrf assignment plan.
    pub locprf: LocPrfPlan,
    /// The AS's community numbering plan.
    pub scheme: CommunityScheme,
    /// Whether the AS actually tags relationship communities at ingress.
    pub tags_relationships: bool,
    /// Whether the AS strips foreign (other ASes') communities when it
    /// re-exports a route.
    pub scrubs_foreign_communities: bool,
    /// Whether the AS's scheme is documented in the IRR.
    pub documented: bool,
    /// Whether the documentation includes the TE values.
    pub documents_te: bool,
}

impl AsPolicy {
    /// The ingress community this AS attaches for a route learned over a
    /// link with relationship `rel` (oriented `this AS → neighbor`), if it
    /// tags that class.
    pub fn ingress_community(&self, rel: Relationship) -> Option<bgp_types::Community> {
        if !self.tags_relationships {
            return None;
        }
        let tag = match rel {
            Relationship::ProviderToCustomer => RelationshipTag::FromCustomer,
            Relationship::PeerToPeer => RelationshipTag::FromPeer,
            Relationship::CustomerToProvider => RelationshipTag::FromProvider,
            Relationship::SiblingToSibling => RelationshipTag::FromSibling,
        };
        self.scheme.relationship_community(tag)
    }
}

/// The policies of every AS in a scenario.
#[derive(Debug, Clone, Default)]
pub struct PolicyTable {
    policies: HashMap<Asn, AsPolicy>,
}

impl PolicyTable {
    /// Build policies for every AS of a topology, deterministically from
    /// the simulation seed.
    pub fn build(truth: &GroundTruth, config: &SimConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x706f_6c69);
        let scheme_generator = SchemeGenerator::default();
        let mut policies = HashMap::new();

        let mut asns: Vec<Asn> = truth.graph.asns().collect();
        asns.sort();
        for asn in asns {
            let tier = truth.tiers.get(&asn).copied().unwrap_or(PlannedTier::Stub);
            let is_transit = matches!(tier, PlannedTier::Tier1 | PlannedTier::Tier2);
            let tagging_probability = if is_transit {
                config.transit_tagging_probability
            } else {
                config.stub_tagging_probability
            };
            // Classic communities carry the tagging AS in their 16-bit
            // high half, so an AS past that space cannot define a scheme
            // at all — exactly as in the real Internet. The probability
            // draw still happens so the RNG stream (and with it every
            // pre-existing all-16-bit topology) is unchanged.
            let tags_relationships = rng.gen_bool(tagging_probability) && asn.is_16bit();

            // Pick one of a few realistic LocPrf families and jitter it, so
            // values differ across ASes but stay internally ordered.
            let family = rng.gen_range(0..3);
            let jitter = rng.gen_range(0..5) * 2;
            let locprf = match family {
                0 => LocPrfPlan {
                    customer: 300 + jitter,
                    peer: 200 + jitter,
                    provider: 100 + jitter,
                    sibling: 250 + jitter,
                    lowered: 50,
                },
                1 => LocPrfPlan {
                    customer: 120 + jitter,
                    peer: 110 + jitter,
                    provider: 100 + jitter,
                    sibling: 115 + jitter,
                    lowered: 80,
                },
                _ => LocPrfPlan {
                    customer: 900 + jitter,
                    peer: 500 + jitter,
                    provider: 200 + jitter,
                    sibling: 700 + jitter,
                    lowered: 90,
                },
            };

            let scheme = if tags_relationships {
                scheme_generator.generate(asn, &mut rng)
            } else {
                // Non-tagging ASes still have TE/location values defined.
                let mut scheme = CommunityScheme::build(
                    asn,
                    irr::SchemeStyle::ClassicHundreds,
                    &[],
                    rng.gen_range(0..6),
                );
                if !asn.is_16bit() {
                    // A 32-bit AS cannot be named in a classic community:
                    // strip every value (the `as u16` encoding would
                    // alias a real 16-bit AS and poison the inference).
                    scheme.te_values.clear();
                    scheme.location_count = 0;
                }
                scheme
            };

            let documented = tags_relationships && rng.gen_bool(config.documentation_probability);
            let documents_te = documented && rng.gen_bool(config.te_documentation_probability);
            policies.insert(
                asn,
                AsPolicy {
                    asn,
                    locprf,
                    scheme,
                    tags_relationships,
                    scrubs_foreign_communities: rng.gen_bool(config.community_scrub_probability),
                    documented,
                    documents_te,
                },
            );
        }
        PolicyTable { policies }
    }

    /// The policy of one AS (every AS in the topology has one).
    pub fn get(&self, asn: Asn) -> Option<&AsPolicy> {
        self.policies.get(&asn)
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Iterate policies in ascending ASN order.
    pub fn iter(&self) -> impl Iterator<Item = &AsPolicy> {
        let mut asns: Vec<Asn> = self.policies.keys().copied().collect();
        asns.sort();
        asns.into_iter().map(move |a| &self.policies[&a])
    }

    /// ASes that tag relationship communities.
    pub fn tagging_ases(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> =
            self.policies.values().filter(|p| p.tags_relationships).map(|p| p.asn).collect();
        out.sort();
        out
    }

    /// ASes whose schemes are documented in the IRR.
    pub fn documented_ases(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> =
            self.policies.values().filter(|p| p.documented).map(|p| p.asn).collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    fn table() -> (GroundTruth, PolicyTable) {
        let truth = topogen::generate(&TopologyConfig::tiny());
        let policies = PolicyTable::build(&truth, &SimConfig::default());
        (truth, policies)
    }

    #[test]
    fn wide_asns_never_define_community_schemes() {
        // Classic communities cannot name a 32-bit AS; a truncated `as
        // u16` encoding would alias a 16-bit AS and make communities lie.
        let config =
            TopologyConfig { first_asn: 65_500, allow_32bit_asns: true, ..TopologyConfig::tiny() };
        let truth = topogen::generate(&config);
        let policies = PolicyTable::build(&truth, &SimConfig::default());
        let mut wide = 0;
        for asn in truth.graph.asns().filter(|a| !a.is_16bit()) {
            wide += 1;
            let policy = policies.get(asn).expect("every AS has a policy");
            assert!(!policy.tags_relationships, "{asn} must not tag");
            assert!(!policy.scheme.tags_relationships());
            assert!(policy.scheme.te_values.is_empty(), "{asn} must not honour TE");
            assert_eq!(policy.scheme.location_count, 0);
            assert!(!policy.documented, "nothing to document for {asn}");
        }
        assert!(wide > 0, "the fixture must actually cross the boundary");
    }

    #[test]
    fn every_as_has_a_policy() {
        let (truth, policies) = table();
        assert_eq!(policies.len(), truth.graph.node_count());
        assert!(!policies.is_empty());
        for asn in truth.graph.asns() {
            assert!(policies.get(asn).is_some(), "no policy for {asn}");
        }
        assert!(policies.get(Asn(65_123)).is_none());
    }

    #[test]
    fn locprf_plans_are_conventional() {
        let (_, policies) = table();
        for policy in policies.iter() {
            assert!(policy.locprf.is_conventional(), "{:?}", policy.locprf);
            assert_eq!(
                policy.locprf.for_relationship(Relationship::ProviderToCustomer),
                policy.locprf.customer
            );
            assert_eq!(
                policy.locprf.for_relationship(Relationship::CustomerToProvider),
                policy.locprf.provider
            );
            assert_eq!(
                policy.locprf.for_relationship(Relationship::PeerToPeer),
                policy.locprf.peer
            );
            assert_eq!(
                policy.locprf.for_relationship(Relationship::SiblingToSibling),
                policy.locprf.sibling
            );
        }
    }

    #[test]
    fn policy_build_is_deterministic() {
        let truth = topogen::generate(&TopologyConfig::tiny());
        let a = PolicyTable::build(&truth, &SimConfig::default());
        let b = PolicyTable::build(&truth, &SimConfig::default());
        assert_eq!(a.tagging_ases(), b.tagging_ases());
        assert_eq!(a.documented_ases(), b.documented_ases());
        let other = SimConfig { seed: 7, ..SimConfig::default() };
        let c = PolicyTable::build(&truth, &other);
        // Different seed; overwhelmingly likely to differ for 50+ ASes.
        assert!(a.tagging_ases() != c.tagging_ases() || a.documented_ases() != c.documented_ases());
    }

    #[test]
    fn documented_ases_are_a_subset_of_tagging_ases() {
        let (_, policies) = table();
        let tagging = policies.tagging_ases();
        for asn in policies.documented_ases() {
            assert!(tagging.contains(&asn));
        }
        assert!(!policies.tagging_ases().is_empty());
    }

    #[test]
    fn ingress_community_reflects_relationship_and_tagging() {
        let (_, policies) = table();
        let tagger = policies.get(policies.tagging_ases()[0]).unwrap();
        let c = tagger.ingress_community(Relationship::ProviderToCustomer).unwrap();
        assert_eq!(c.asn(), tagger.asn);
        // Peer tag exists too and differs from the customer tag.
        let p = tagger.ingress_community(Relationship::PeerToPeer).unwrap();
        assert_ne!(c, p);

        // A non-tagging AS never emits relationship communities.
        let non_tagger = policies.iter().find(|p| !p.tags_relationships).cloned();
        if let Some(non_tagger) = non_tagger {
            assert_eq!(non_tagger.ingress_community(Relationship::ProviderToCustomer), None);
        }
    }
}
