//! Per-AS routing policies: LocPrf bases, community schemes, tagging and
//! scrubbing behaviour — plus the route-decision policy engine that lets
//! the propagation core dispatch acceptance per AS under adversarial
//! scenarios (route leaks, prefix hijacks) and defensive deployments
//! (ROV, ASPA-lite).

use std::collections::HashMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use asgraph::{AsGraph, NodeId};
use bgp_types::{Asn, IpVersion, Relationship};
use irr::{CommunityScheme, RelationshipTag, SchemeGenerator};
use topogen::{GroundTruth, PlannedTier};

use crate::config::SimConfig;
use crate::propagate::RouteInfo;

/// The LocPrf values an AS assigns to routes by the relationship class of
/// the neighbor it learned them from. Real ASes use wildly different
/// absolute values; what is (nearly) universal is the ordering
/// customer > peer > provider, which the paper relies on and which the
/// traffic-engineering filter must not be confused by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocPrfPlan {
    /// LocPrf for routes learned from customers.
    pub customer: u32,
    /// LocPrf for routes learned from peers.
    pub peer: u32,
    /// LocPrf for routes learned from providers.
    pub provider: u32,
    /// LocPrf for routes learned from siblings.
    pub sibling: u32,
    /// LocPrf applied when a route carries this AS's "lower preference"
    /// TE community (backup routing).
    pub lowered: u32,
}

impl LocPrfPlan {
    /// The LocPrf assigned to a route learned over a link with the given
    /// relationship (oriented `this AS → neighbor`).
    pub fn for_relationship(&self, rel: Relationship) -> u32 {
        match rel {
            Relationship::ProviderToCustomer => self.customer,
            Relationship::PeerToPeer => self.peer,
            Relationship::CustomerToProvider => self.provider,
            Relationship::SiblingToSibling => self.sibling,
        }
    }

    /// Sanity: the plan respects the conventional ordering.
    pub fn is_conventional(&self) -> bool {
        self.customer > self.peer && self.peer > self.provider && self.lowered < self.provider
    }
}

/// Everything the simulator needs to know about one AS's behaviour.
#[derive(Debug, Clone)]
pub struct AsPolicy {
    /// The AS.
    pub asn: Asn,
    /// LocPrf assignment plan.
    pub locprf: LocPrfPlan,
    /// The AS's community numbering plan.
    pub scheme: CommunityScheme,
    /// Whether the AS actually tags relationship communities at ingress.
    pub tags_relationships: bool,
    /// Whether the AS strips foreign (other ASes') communities when it
    /// re-exports a route.
    pub scrubs_foreign_communities: bool,
    /// Whether the AS's scheme is documented in the IRR.
    pub documented: bool,
    /// Whether the documentation includes the TE values.
    pub documents_te: bool,
}

impl AsPolicy {
    /// The ingress community this AS attaches for a route learned over a
    /// link with relationship `rel` (oriented `this AS → neighbor`), if it
    /// tags that class.
    pub fn ingress_community(&self, rel: Relationship) -> Option<bgp_types::Community> {
        if !self.tags_relationships {
            return None;
        }
        let tag = match rel {
            Relationship::ProviderToCustomer => RelationshipTag::FromCustomer,
            Relationship::PeerToPeer => RelationshipTag::FromPeer,
            Relationship::CustomerToProvider => RelationshipTag::FromProvider,
            Relationship::SiblingToSibling => RelationshipTag::FromSibling,
        };
        self.scheme.relationship_community(tag)
    }
}

/// The policies of every AS in a scenario.
#[derive(Debug, Clone, Default)]
pub struct PolicyTable {
    policies: HashMap<Asn, AsPolicy>,
}

impl PolicyTable {
    /// Build policies for every AS of a topology, deterministically from
    /// the simulation seed.
    pub fn build(truth: &GroundTruth, config: &SimConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x706f_6c69);
        let scheme_generator = SchemeGenerator::default();
        let mut policies = HashMap::new();

        let mut asns: Vec<Asn> = truth.graph.asns().collect();
        asns.sort();
        for asn in asns {
            let tier = truth.tiers.get(&asn).copied().unwrap_or(PlannedTier::Stub);
            let is_transit = matches!(tier, PlannedTier::Tier1 | PlannedTier::Tier2);
            let tagging_probability = if is_transit {
                config.transit_tagging_probability
            } else {
                config.stub_tagging_probability
            };
            // Classic communities carry the tagging AS in their 16-bit
            // high half, so an AS past that space cannot define a scheme
            // at all — exactly as in the real Internet. The probability
            // draw still happens so the RNG stream (and with it every
            // pre-existing all-16-bit topology) is unchanged.
            let tags_relationships = rng.gen_bool(tagging_probability) && asn.is_16bit();

            // Pick one of a few realistic LocPrf families and jitter it, so
            // values differ across ASes but stay internally ordered.
            let family = rng.gen_range(0..3);
            let jitter = rng.gen_range(0..5) * 2;
            let locprf = match family {
                0 => LocPrfPlan {
                    customer: 300 + jitter,
                    peer: 200 + jitter,
                    provider: 100 + jitter,
                    sibling: 250 + jitter,
                    lowered: 50,
                },
                1 => LocPrfPlan {
                    customer: 120 + jitter,
                    peer: 110 + jitter,
                    provider: 100 + jitter,
                    sibling: 115 + jitter,
                    lowered: 80,
                },
                _ => LocPrfPlan {
                    customer: 900 + jitter,
                    peer: 500 + jitter,
                    provider: 200 + jitter,
                    sibling: 700 + jitter,
                    lowered: 90,
                },
            };

            let scheme = if tags_relationships {
                scheme_generator.generate(asn, &mut rng)
            } else {
                // Non-tagging ASes still have TE/location values defined.
                let mut scheme = CommunityScheme::build(
                    asn,
                    irr::SchemeStyle::ClassicHundreds,
                    &[],
                    rng.gen_range(0..6),
                );
                if !asn.is_16bit() {
                    // A 32-bit AS cannot be named in a classic community:
                    // strip every value (the `as u16` encoding would
                    // alias a real 16-bit AS and poison the inference).
                    scheme.te_values.clear();
                    scheme.location_count = 0;
                }
                scheme
            };

            let documented = tags_relationships && rng.gen_bool(config.documentation_probability);
            let documents_te = documented && rng.gen_bool(config.te_documentation_probability);
            policies.insert(
                asn,
                AsPolicy {
                    asn,
                    locprf,
                    scheme,
                    tags_relationships,
                    scrubs_foreign_communities: rng.gen_bool(config.community_scrub_probability),
                    documented,
                    documents_te,
                },
            );
        }
        PolicyTable { policies }
    }

    /// The policy of one AS (every AS in the topology has one).
    pub fn get(&self, asn: Asn) -> Option<&AsPolicy> {
        self.policies.get(&asn)
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Iterate policies in ascending ASN order.
    pub fn iter(&self) -> impl Iterator<Item = &AsPolicy> {
        let mut asns: Vec<Asn> = self.policies.keys().copied().collect();
        asns.sort();
        asns.into_iter().map(move |a| &self.policies[&a])
    }

    /// ASes that tag relationship communities.
    pub fn tagging_ases(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> =
            self.policies.values().filter(|p| p.tags_relationships).map(|p| p.asn).collect();
        out.sort();
        out
    }

    /// ASes whose schemes are documented in the IRR.
    pub fn documented_ases(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> =
            self.policies.values().filter(|p| p.documented).map(|p| p.asn).collect();
        out.sort();
        out
    }
}

// ---------------------------------------------------------------------------
// Route-decision policy engine
// ---------------------------------------------------------------------------

/// The adversarial scenario a propagation runs under. `Classic` is the
/// paper's model — every AS runs the valley-free Gao–Rexford export
/// policy — and the default; the others inject one structural deviation
/// each, chosen deterministically from the graph (see
/// [`PolicyEngine::build`]), so the same configuration always produces
/// the same bytes at every worker count.
///
/// Unlike the worker knobs this *changes the output*: it is part of the
/// scenario's output identity, not an execution detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PolicyScenario {
    /// Every AS runs the classic valley-free walk (the default).
    #[default]
    Classic,
    /// A chosen AS re-exports its peer-/provider-learned routes to peers
    /// and providers (a full-table route leak), and the leaked routes
    /// spread downhill from the adopters.
    RouteLeak,
    /// An attacker AS originates the victim's exact prefix; every AS
    /// picks between the two origins by the ordinary route preference.
    PrefixHijack,
    /// An attacker AS originates a more-specific subprefix of the
    /// victim's prefix; longest-prefix match means the attacker's route
    /// wins wherever it is heard at all.
    SubprefixHijack,
}

/// Deterministic per-AS sampler for partial defensive-policy deployment.
///
/// Each AS's draw is an independent ChaCha8 stream seeded from the
/// deployment seed and its own ASN, so whether an AS deploys never
/// depends on iteration order or worker count — the deployment pattern
/// is a pure function of `(fraction, seed, asn)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDeployment {
    /// Fraction of ASes that deploy the scenario's defensive policy,
    /// in `[0, 1]`. `0` (the default) deploys nowhere, `1` everywhere.
    pub fraction: f64,
    /// Seed mixed with each ASN for the per-AS deployment draw.
    pub seed: u64,
}

impl Default for PolicyDeployment {
    fn default() -> Self {
        PolicyDeployment { fraction: 0.0, seed: 0 }
    }
}

impl PolicyDeployment {
    /// Does `asn` deploy the defensive policy under this sampling plan?
    pub fn deploys(&self, asn: Asn) -> bool {
        if self.fraction <= 0.0 {
            return false;
        }
        if self.fraction >= 1.0 {
            return true;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ (u64::from(asn.value()) << 16) ^ 0x6465_706c);
        rng.gen_bool(self.fraction)
    }
}

/// The per-AS route-acceptance decision: given a candidate route, may
/// this AS install it? The propagation core consults this at every
/// adoption point, so a policy can veto routes whatever phase delivers
/// them. Implementations must be pure — acceptance may depend only on
/// the candidate — to keep propagation deterministic and cacheable.
pub trait PolicyModel {
    /// True when the AS accepts (installs) `candidate`.
    fn accepts(&self, candidate: &RouteInfo) -> bool;
}

/// The classic Gao–Rexford acceptor: installs everything the export
/// rules deliver (the pre-refactor behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassicPolicy;

impl PolicyModel for ClassicPolicy {
    fn accepts(&self, _candidate: &RouteInfo) -> bool {
        true
    }
}

/// Route-origin validation: rejects candidates whose origin is a hijack
/// (the [`crate::propagate::RouteTaint::hijacked`] bit), modelling an AS that drops
/// RPKI-invalid announcements.
#[derive(Debug, Clone, Copy, Default)]
pub struct RovPolicy;

impl PolicyModel for RovPolicy {
    fn accepts(&self, candidate: &RouteInfo) -> bool {
        !candidate.taint.hijacked
    }
}

/// ASPA-lite path validation: rejects candidates that traversed a route
/// leak (the [`crate::propagate::RouteTaint::leaked`] bit), modelling provider-set
/// verification of the upstream path.
#[derive(Debug, Clone, Copy, Default)]
pub struct AspaLitePolicy;

impl PolicyModel for AspaLitePolicy {
    fn accepts(&self, candidate: &RouteInfo) -> bool {
        !candidate.taint.leaked
    }
}

/// One AS's route-decision policy, enum-dispatched so the frozen-CSR hot
/// path stays free of virtual calls: each variant forwards to its
/// [`PolicyModel`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// The classic valley-free acceptor ([`ClassicPolicy`]).
    #[default]
    Classic,
    /// Route-origin validation ([`RovPolicy`]).
    Rov,
    /// ASPA-lite path validation ([`AspaLitePolicy`]).
    AspaLite,
}

impl Policy {
    /// Dispatch [`PolicyModel::accepts`] for this policy.
    pub fn accepts(self, candidate: &RouteInfo) -> bool {
        match self {
            Policy::Classic => ClassicPolicy.accepts(candidate),
            Policy::Rov => RovPolicy.accepts(candidate),
            Policy::AspaLite => AspaLitePolicy.accepts(candidate),
        }
    }
}

fn plane_slot(plane: IpVersion) -> usize {
    match plane {
        IpVersion::V4 => 0,
        IpVersion::V6 => 1,
    }
}

/// Everything the propagation core needs to run one scenario: the per-AS
/// policy assignment plus the structurally chosen attacker and leaker
/// nodes. Built once per propagation batch and shared read-only across
/// the origin workers — plain data, so sharing it cannot perturb
/// determinism.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    scenario: PolicyScenario,
    /// Per-node policy, indexed by `NodeId`; empty means "everyone runs
    /// `Policy::Classic`" and keeps the hot path allocation-free.
    policies: Vec<Policy>,
    attacker: [Option<NodeId>; 2],
    leaker: [Option<NodeId>; 2],
}

impl PolicyEngine {
    /// The engine of the default scenario: every AS classic, no attacker,
    /// no leaker. Propagating under this engine reproduces the
    /// pre-refactor walk bit for bit.
    pub fn classic() -> Self {
        PolicyEngine {
            scenario: PolicyScenario::Classic,
            policies: Vec::new(),
            attacker: [None; 2],
            leaker: [None; 2],
        }
    }

    /// Build the engine for `scenario` over `graph`.
    ///
    /// The attacker (hijack scenarios) is the highest-degree AS of each
    /// plane, the leaker ([`PolicyScenario::RouteLeak`]) the
    /// highest-degree AS that has at least one provider — both with ties
    /// broken towards the lowest ASN, a purely structural choice that
    /// ignores the deployment seed. The defensive policy —
    /// [`Policy::AspaLite`] against leaks, [`Policy::Rov`] against
    /// hijacks — is assigned to the ASes `deployment` samples.
    pub fn build(graph: &AsGraph, scenario: PolicyScenario, deployment: PolicyDeployment) -> Self {
        if scenario == PolicyScenario::Classic {
            return PolicyEngine::classic();
        }
        let defense = match scenario {
            PolicyScenario::RouteLeak => Policy::AspaLite,
            _ => Policy::Rov,
        };
        let policies = if deployment.fraction > 0.0 {
            let mut table = vec![Policy::Classic; graph.node_count()];
            for asn in graph.asns() {
                if deployment.deploys(asn) {
                    if let Some(node) = graph.node(asn) {
                        table[node.index()] = defense;
                    }
                }
            }
            table
        } else {
            Vec::new()
        };
        let mut attacker = [None; 2];
        let mut leaker = [None; 2];
        for plane in IpVersion::BOTH {
            let slot = plane_slot(plane);
            attacker[slot] = highest_degree_node(graph, plane, false);
            leaker[slot] = highest_degree_node(graph, plane, true);
        }
        PolicyEngine { scenario, policies, attacker, leaker }
    }

    /// The scenario this engine runs.
    pub fn scenario(&self) -> PolicyScenario {
        self.scenario
    }

    /// The policy assigned to `node`.
    pub fn policy_of(&self, node: NodeId) -> Policy {
        self.policies.get(node.index()).copied().unwrap_or(Policy::Classic)
    }

    /// May `node` install `candidate`? The all-classic fast path answers
    /// without touching the table.
    #[inline]
    pub fn accepts(&self, node: NodeId, candidate: &RouteInfo) -> bool {
        if self.policies.is_empty() {
            return true;
        }
        self.policy_of(node).accepts(candidate)
    }

    /// The hijack-scenario attacker on `plane`, if the plane has one.
    pub fn attacker(&self, plane: IpVersion) -> Option<NodeId> {
        self.attacker[plane_slot(plane)]
    }

    /// The route-leak leaker on `plane`, if the plane has one.
    pub fn leaker(&self, plane: IpVersion) -> Option<NodeId> {
        self.leaker[plane_slot(plane)]
    }
}

/// The highest-degree node of `plane` (ties to the lowest ASN), or the
/// highest-degree node that has a provider when `needs_provider` — the
/// deterministic structural pick for attackers and leakers. Nodes absent
/// from the plane are never picked.
fn highest_degree_node(graph: &AsGraph, plane: IpVersion, needs_provider: bool) -> Option<NodeId> {
    let mut asns: Vec<Asn> = graph.asns().collect();
    asns.sort();
    let mut best: Option<(usize, NodeId)> = None;
    for asn in asns {
        let degree = graph.degree(asn, plane);
        if degree == 0 {
            continue;
        }
        let Some(node) = graph.node(asn) else { continue };
        if needs_provider
            && !graph
                .neighbors_by_id(node, plane)
                .any(|(_, rel)| rel == Some(Relationship::CustomerToProvider))
        {
            continue;
        }
        if best.is_none_or(|(d, _)| degree > d) {
            best = Some((degree, node));
        }
    }
    best.map(|(_, node)| node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    fn table() -> (GroundTruth, PolicyTable) {
        let truth = topogen::generate(&TopologyConfig::tiny());
        let policies = PolicyTable::build(&truth, &SimConfig::default());
        (truth, policies)
    }

    #[test]
    fn wide_asns_never_define_community_schemes() {
        // Classic communities cannot name a 32-bit AS; a truncated `as
        // u16` encoding would alias a 16-bit AS and make communities lie.
        let config =
            TopologyConfig { first_asn: 65_500, allow_32bit_asns: true, ..TopologyConfig::tiny() };
        let truth = topogen::generate(&config);
        let policies = PolicyTable::build(&truth, &SimConfig::default());
        let mut wide = 0;
        for asn in truth.graph.asns().filter(|a| !a.is_16bit()) {
            wide += 1;
            let policy = policies.get(asn).expect("every AS has a policy");
            assert!(!policy.tags_relationships, "{asn} must not tag");
            assert!(!policy.scheme.tags_relationships());
            assert!(policy.scheme.te_values.is_empty(), "{asn} must not honour TE");
            assert_eq!(policy.scheme.location_count, 0);
            assert!(!policy.documented, "nothing to document for {asn}");
        }
        assert!(wide > 0, "the fixture must actually cross the boundary");
    }

    #[test]
    fn every_as_has_a_policy() {
        let (truth, policies) = table();
        assert_eq!(policies.len(), truth.graph.node_count());
        assert!(!policies.is_empty());
        for asn in truth.graph.asns() {
            assert!(policies.get(asn).is_some(), "no policy for {asn}");
        }
        assert!(policies.get(Asn(65_123)).is_none());
    }

    #[test]
    fn locprf_plans_are_conventional() {
        let (_, policies) = table();
        for policy in policies.iter() {
            assert!(policy.locprf.is_conventional(), "{:?}", policy.locprf);
            assert_eq!(
                policy.locprf.for_relationship(Relationship::ProviderToCustomer),
                policy.locprf.customer
            );
            assert_eq!(
                policy.locprf.for_relationship(Relationship::CustomerToProvider),
                policy.locprf.provider
            );
            assert_eq!(
                policy.locprf.for_relationship(Relationship::PeerToPeer),
                policy.locprf.peer
            );
            assert_eq!(
                policy.locprf.for_relationship(Relationship::SiblingToSibling),
                policy.locprf.sibling
            );
        }
    }

    #[test]
    fn policy_build_is_deterministic() {
        let truth = topogen::generate(&TopologyConfig::tiny());
        let a = PolicyTable::build(&truth, &SimConfig::default());
        let b = PolicyTable::build(&truth, &SimConfig::default());
        assert_eq!(a.tagging_ases(), b.tagging_ases());
        assert_eq!(a.documented_ases(), b.documented_ases());
        let other = SimConfig { seed: 7, ..SimConfig::default() };
        let c = PolicyTable::build(&truth, &other);
        // Different seed; overwhelmingly likely to differ for 50+ ASes.
        assert!(a.tagging_ases() != c.tagging_ases() || a.documented_ases() != c.documented_ases());
    }

    #[test]
    fn documented_ases_are_a_subset_of_tagging_ases() {
        let (_, policies) = table();
        let tagging = policies.tagging_ases();
        for asn in policies.documented_ases() {
            assert!(tagging.contains(&asn));
        }
        assert!(!policies.tagging_ases().is_empty());
    }

    #[test]
    fn ingress_community_reflects_relationship_and_tagging() {
        let (_, policies) = table();
        let tagger = policies.get(policies.tagging_ases()[0]).unwrap();
        let c = tagger.ingress_community(Relationship::ProviderToCustomer).unwrap();
        assert_eq!(c.asn(), tagger.asn);
        // Peer tag exists too and differs from the customer tag.
        let p = tagger.ingress_community(Relationship::PeerToPeer).unwrap();
        assert_ne!(c, p);

        // A non-tagging AS never emits relationship communities.
        let non_tagger = policies.iter().find(|p| !p.tags_relationships).cloned();
        if let Some(non_tagger) = non_tagger {
            assert_eq!(non_tagger.ingress_community(Relationship::ProviderToCustomer), None);
        }
    }

    fn tainted(hijacked: bool, leaked: bool) -> RouteInfo {
        RouteInfo {
            class: crate::propagate::RouteClass::Provider,
            path_len: 2,
            next_hop: NodeId(0),
            taint: crate::propagate::RouteTaint { hijacked, leaked },
        }
    }

    #[test]
    fn policy_dispatch_matches_the_model_implementations() {
        for (hijacked, leaked) in [(false, false), (true, false), (false, true), (true, true)] {
            let candidate = tainted(hijacked, leaked);
            assert!(Policy::Classic.accepts(&candidate));
            assert_eq!(Policy::Rov.accepts(&candidate), RovPolicy.accepts(&candidate));
            assert_eq!(Policy::Rov.accepts(&candidate), !hijacked);
            assert_eq!(Policy::AspaLite.accepts(&candidate), AspaLitePolicy.accepts(&candidate));
            assert_eq!(Policy::AspaLite.accepts(&candidate), !leaked);
        }
    }

    #[test]
    fn deployment_sampler_is_deterministic_and_respects_the_bounds() {
        let half = PolicyDeployment { fraction: 0.5, seed: 9 };
        let asns: Vec<Asn> = (1u32..=512).map(Asn).collect();
        let first: Vec<bool> = asns.iter().map(|&a| half.deploys(a)).collect();
        let second: Vec<bool> = asns.iter().rev().map(|&a| half.deploys(a)).collect();
        // Same answers whatever order the ASes are asked in.
        for (i, asn) in asns.iter().enumerate() {
            assert_eq!(first[i], second[asns.len() - 1 - i], "{asn} flipped");
        }
        let deployed = first.iter().filter(|d| **d).count();
        assert!((100..400).contains(&deployed), "0.5 fraction drew {deployed}/512");
        // The endpoints are exact, not sampled.
        let none = PolicyDeployment { fraction: 0.0, seed: 9 };
        let all = PolicyDeployment { fraction: 1.0, seed: 9 };
        assert!(asns.iter().all(|&a| !none.deploys(a)));
        assert!(asns.iter().all(|&a| all.deploys(a)));
        // A different seed draws a different pattern.
        let reseeded = PolicyDeployment { fraction: 0.5, seed: 10 };
        assert!(asns.iter().any(|&a| half.deploys(a) != reseeded.deploys(a)));
    }

    #[test]
    fn classic_engine_accepts_everything_and_names_no_adversaries() {
        let truth = topogen::generate(&TopologyConfig::tiny());
        let engine = PolicyEngine::build(
            &truth.graph,
            PolicyScenario::Classic,
            PolicyDeployment { fraction: 1.0, seed: 3 },
        );
        for plane in IpVersion::BOTH {
            assert_eq!(engine.attacker(plane), None);
            assert_eq!(engine.leaker(plane), None);
        }
        for id in 0..truth.graph.node_count() as u32 {
            assert_eq!(engine.policy_of(NodeId(id)), Policy::Classic);
            assert!(engine.accepts(NodeId(id), &tainted(true, true)));
        }
    }

    #[test]
    fn engine_assigns_the_scenario_defense_to_sampled_ases() {
        let truth = topogen::generate(&TopologyConfig::tiny());
        let deployment = PolicyDeployment { fraction: 0.5, seed: 3 };
        let leak = PolicyEngine::build(&truth.graph, PolicyScenario::RouteLeak, deployment);
        let hijack = PolicyEngine::build(&truth.graph, PolicyScenario::SubprefixHijack, deployment);
        let mut defended = 0;
        for asn in truth.graph.asns() {
            let node = truth.graph.node(asn).unwrap();
            let expected = if deployment.deploys(asn) {
                defended += 1;
                (Policy::AspaLite, Policy::Rov)
            } else {
                (Policy::Classic, Policy::Classic)
            };
            assert_eq!((leak.policy_of(node), hijack.policy_of(node)), expected, "{asn}");
        }
        assert!(defended > 0, "the fixture must actually deploy somewhere");
        // Zero deployment keeps the all-classic fast path.
        let bare = PolicyEngine::build(
            &truth.graph,
            PolicyScenario::RouteLeak,
            PolicyDeployment::default(),
        );
        assert!(bare.accepts(NodeId(0), &tainted(true, true)));
    }

    #[test]
    fn attacker_and_leaker_are_structural_and_deterministic() {
        let truth = topogen::generate(&TopologyConfig::tiny());
        let deployment = PolicyDeployment { fraction: 0.3, seed: 1 };
        let a = PolicyEngine::build(&truth.graph, PolicyScenario::RouteLeak, deployment);
        // The picks ignore the deployment seed entirely.
        let b = PolicyEngine::build(
            &truth.graph,
            PolicyScenario::RouteLeak,
            PolicyDeployment { fraction: 0.9, seed: 77 },
        );
        for plane in IpVersion::BOTH {
            assert_eq!(a.attacker(plane), b.attacker(plane));
            assert_eq!(a.leaker(plane), b.leaker(plane));
            let attacker = a.attacker(plane).expect("the fixture has nodes on both planes");
            let leaker = a.leaker(plane).expect("the fixture has customers on both planes");
            let attacker_asn = truth.graph.asn(attacker);
            let leaker_asn = truth.graph.asn(leaker);
            // The attacker is a (the) highest-degree AS of the plane...
            let max_degree = truth.graph.asns().map(|x| truth.graph.degree(x, plane)).max();
            assert_eq!(Some(truth.graph.degree(attacker_asn, plane)), max_degree);
            // ...and the leaker has a provider to betray.
            assert!(truth
                .graph
                .neighbors_by_id(leaker, plane)
                .any(|(_, rel)| rel == Some(Relationship::CustomerToProvider)));
            assert!(truth.graph.degree(leaker_asn, plane) > 0);
        }
    }
}
