//! Simulation configuration.

use serde::{Deserialize, Serialize};

use crate::policy::PolicyScenario;
use crate::propagate::OriginScheduling;

/// All knobs of the route-propagation and measurement-visibility model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed for the simulator's own RNG (independent of the topology seed
    /// so the same topology can be measured under different conditions).
    pub seed: u64,

    /// Probability that a transit AS (an AS with customers) deploys
    /// ingress relationship tagging communities.
    pub transit_tagging_probability: f64,
    /// Probability that a stub AS deploys ingress relationship tagging.
    pub stub_tagging_probability: f64,
    /// Probability that a *tagging* AS documents its communities in the
    /// IRR. Together with the tagging probabilities this bounds the
    /// inference coverage, the paper's 72%/81% numbers.
    pub documentation_probability: f64,
    /// Probability that a documented object also documents its TE values.
    pub te_documentation_probability: f64,

    /// Probability that an origin attaches a traffic-engineering community
    /// of its provider (asking for lower preference) to an announcement.
    pub te_request_probability: f64,
    /// Probability that an AS attaches an ingress-location community when
    /// it tags a route.
    pub location_tag_probability: f64,

    /// Probability that an AS strips (scrubs) foreign communities when
    /// re-exporting a route. Real transit providers often do; it reduces
    /// how far tags propagate and therefore coverage.
    pub community_scrub_probability: f64,

    /// Allow the IPv6 plane to relax the valley-free export rule for
    /// reachability: an AS with no IPv6 route to a prefix accepts and
    /// re-exports a route from any neighbor. This reproduces the paper's
    /// "relaxation of the valley-free rule to maintain IPv6 reachability".
    pub v6_reachability_relaxation: bool,
    /// Probability that an AS leaks its best route to a neighbor it should
    /// not export it to (plain misconfiguration leaks); applied per
    /// (AS, origin) pair during propagation, on both planes.
    pub leak_probability: f64,

    /// Number of collectors.
    pub collector_count: usize,
    /// Number of feeder ASes per collector (drawn without replacement,
    /// preferring well-connected ASes as real collectors do).
    pub feeders_per_collector: usize,
    /// Fraction of feeders that are "full feeders" exposing LocPrf.
    pub full_feeder_fraction: f64,

    /// Snapshot timestamp recorded in the generated RIBs/MRT files
    /// (defaults to 2010-08-01T00:00:00Z to mirror the paper's dataset).
    pub timestamp: u64,

    /// Worker threads for route propagation and RIB materialisation:
    /// `0` uses all available parallelism, `1` is the sequential path.
    /// Whatever the value, the produced snapshots are byte-identical —
    /// parallelism is an execution detail, never an output knob (the
    /// determinism suite enforces this).
    pub concurrency: usize,

    /// Worker threads for the *within-origin* frontier expansion of the
    /// propagation (the level-synchronous Phase 1/3 walks and the Phase 2
    /// exporter scan): `0` = all available cores, `1` (the default) =
    /// sequential scans, with all parallelism going to the per-origin
    /// sharding. The two levels compose without oversubscription —
    /// [`SimConfig::propagation_split`] bounds origins × frontier workers
    /// by the budget `concurrency` resolves to. Like `concurrency`, the
    /// knob is an execution detail with byte-identical output.
    pub frontier_concurrency: usize,

    /// How origins are assigned to the propagation workers (see
    /// [`OriginScheduling`]): degree-aware LPT binning by default,
    /// static striping as the reference schedule. Like the worker
    /// counts, an execution detail with byte-identical output.
    pub scheduling: OriginScheduling,

    /// Run the propagation over the frozen CSR graph mirror (`true`, the
    /// default) or the adjacency-map backend (`false`, the reference
    /// path). Both backends visit neighbors in the same order, so this is
    /// an execution detail with byte-identical output — the determinism
    /// suite's map-vs-CSR dimension enforces it.
    pub csr: bool,

    /// Propagate only every `origin_sample`-th eligible origin (after the
    /// deterministic ASN sort): `0` (the default) propagates all of them.
    /// Internet-scale experiment presets use a stride so a 100k-AS
    /// topology completes in seconds rather than propagating 100k
    /// origins. Unlike the worker knobs this *changes the output* — it is
    /// part of the scenario's output identity, not an execution detail.
    pub origin_sample: usize,

    /// The adversarial scenario propagation runs under (see
    /// [`PolicyScenario`]): the classic valley-free walk by default, or a
    /// deterministic route leak / (sub)prefix hijack. Like
    /// `origin_sample` this *changes the output* and is part of the
    /// scenario's output identity.
    pub policy_scenario: PolicyScenario,

    /// Fraction of ASes (in `[0, 1]`) that deploy the scenario's
    /// defensive policy — ASPA-lite against route leaks, ROV against
    /// hijacks — sampled deterministically per AS from the simulation
    /// seed (see [`crate::policy::PolicyDeployment`]). `0` (the default)
    /// deploys nowhere; inert under the classic scenario. Output
    /// identity, not an execution detail.
    pub policy_deployment: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            transit_tagging_probability: 0.85,
            stub_tagging_probability: 0.25,
            documentation_probability: 0.82,
            te_documentation_probability: 0.7,
            te_request_probability: 0.04,
            location_tag_probability: 0.5,
            community_scrub_probability: 0.15,
            v6_reachability_relaxation: true,
            leak_probability: 0.02,
            collector_count: 4,
            feeders_per_collector: 12,
            full_feeder_fraction: 0.5,
            timestamp: 1_280_620_800, // 2010-08-01
            concurrency: 0,
            frontier_concurrency: 1,
            scheduling: OriginScheduling::default(),
            csr: true,
            origin_sample: 0,
            policy_scenario: PolicyScenario::default(),
            policy_deployment: 0.0,
        }
    }
}

impl SimConfig {
    /// A configuration with fewer collectors/feeders for small test
    /// topologies.
    pub fn small() -> Self {
        SimConfig { collector_count: 2, feeders_per_collector: 6, ..Default::default() }
    }

    /// The same configuration pinned to `concurrency` worker threads.
    pub fn with_concurrency(self, concurrency: usize) -> Self {
        SimConfig { concurrency, ..self }
    }

    /// The same configuration pinned to `frontier_concurrency`
    /// within-origin frontier workers.
    pub fn with_frontier(self, frontier_concurrency: usize) -> Self {
        SimConfig { frontier_concurrency, ..self }
    }

    /// The same configuration pinned to an origin-to-worker schedule.
    pub fn with_scheduling(self, scheduling: OriginScheduling) -> Self {
        SimConfig { scheduling, ..self }
    }

    /// The same configuration pinned to the CSR (`true`) or adjacency-map
    /// (`false`) graph backend.
    pub fn with_csr(self, csr: bool) -> Self {
        SimConfig { csr, ..self }
    }

    /// The same configuration pinned to an origin sampling stride
    /// (`0` = propagate every eligible origin).
    pub fn with_origin_sample(self, origin_sample: usize) -> Self {
        SimConfig { origin_sample, ..self }
    }

    /// The same configuration pinned to an adversarial scenario.
    pub fn with_scenario(self, policy_scenario: PolicyScenario) -> Self {
        SimConfig { policy_scenario, ..self }
    }

    /// The same configuration pinned to a defensive deployment fraction.
    pub fn with_deployment(self, policy_deployment: f64) -> Self {
        SimConfig { policy_deployment, ..self }
    }

    /// The worker count this configuration resolves to (`0` = all cores).
    pub fn effective_concurrency(&self) -> usize {
        crate::shard::effective_concurrency(self.concurrency)
    }

    /// Split the resolved worker budget between the two propagation
    /// levels as `(origin workers, frontier workers)`: the frontier knob
    /// is resolved first (`0` = the whole budget) and capped by the
    /// budget, then per-origin sharding gets what integer-divides into
    /// the rest — so `origins × frontier ≤ effective_concurrency()` and
    /// nested parallelism never oversubscribes the host. The default
    /// (`frontier_concurrency = 1`) keeps the whole budget on per-origin
    /// sharding, which is the right split whenever there are more origins
    /// than cores.
    pub fn propagation_split(&self) -> (usize, usize) {
        let budget = self.effective_concurrency().max(1);
        // Within the split, "all available parallelism" is the budget
        // itself — `concurrency` already resolved the host's cores.
        let frontier =
            if self.frontier_concurrency == 0 { budget } else { self.frontier_concurrency };
        let frontier = frontier.clamp(1, budget);
        ((budget / frontier).max(1), frontier)
    }

    /// Validate probability ranges and structural requirements.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("transit_tagging_probability", self.transit_tagging_probability),
            ("stub_tagging_probability", self.stub_tagging_probability),
            ("documentation_probability", self.documentation_probability),
            ("te_documentation_probability", self.te_documentation_probability),
            ("te_request_probability", self.te_request_probability),
            ("location_tag_probability", self.location_tag_probability),
            ("community_scrub_probability", self.community_scrub_probability),
            ("leak_probability", self.leak_probability),
            ("full_feeder_fraction", self.full_feeder_fraction),
            ("policy_deployment", self.policy_deployment),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1], got {p}"));
            }
        }
        if self.collector_count == 0 {
            return Err("collector_count must be positive".into());
        }
        if self.feeders_per_collector == 0 {
            return Err("feeders_per_collector must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_small_are_valid() {
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::small().validate().is_ok());
        assert!(SimConfig::small().collector_count < SimConfig::default().collector_count);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = SimConfig { leak_probability: 1.5, ..SimConfig::default() };
        assert!(c.validate().unwrap_err().contains("leak_probability"));
        let c = SimConfig { collector_count: 0, ..SimConfig::default() };
        assert!(c.validate().is_err());
        let c = SimConfig { feeders_per_collector: 0, ..SimConfig::default() };
        assert!(c.validate().is_err());
        let c = SimConfig { full_feeder_fraction: -0.1, ..SimConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn csr_and_origin_sample_knobs_default_and_pin() {
        let sim = SimConfig::default();
        assert!(sim.csr, "the frozen CSR backend is the default");
        assert_eq!(sim.origin_sample, 0, "default propagates every eligible origin");
        let pinned = SimConfig::small().with_csr(false).with_origin_sample(16);
        assert!(!pinned.csr);
        assert_eq!(pinned.origin_sample, 16);
        assert!(pinned.validate().is_ok());
    }

    #[test]
    fn scenario_knobs_default_pin_and_validate() {
        let sim = SimConfig::default();
        assert_eq!(sim.policy_scenario, PolicyScenario::Classic, "default stays classic");
        assert_eq!(sim.policy_deployment, 0.0, "default deploys nowhere");
        let pinned =
            SimConfig::small().with_scenario(PolicyScenario::RouteLeak).with_deployment(0.5);
        assert_eq!(pinned.policy_scenario, PolicyScenario::RouteLeak);
        assert_eq!(pinned.policy_deployment, 0.5);
        assert!(pinned.validate().is_ok());
        let bad = SimConfig { policy_deployment: 1.5, ..SimConfig::default() };
        assert!(bad.validate().unwrap_err().contains("policy_deployment"));
    }

    #[test]
    fn serde_roundtrip() {
        let c = SimConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn concurrency_knob_resolves_and_validates() {
        assert_eq!(SimConfig::default().concurrency, 0, "default is auto");
        assert!(SimConfig::default().effective_concurrency() >= 1);
        let pinned = SimConfig::small().with_concurrency(3);
        assert_eq!(pinned.effective_concurrency(), 3);
        assert!(pinned.validate().is_ok(), "any worker count is valid");
    }

    #[test]
    fn propagation_split_bounds_nested_parallelism_by_the_budget() {
        assert_eq!(SimConfig::default().frontier_concurrency, 1, "default keeps frontier seq");
        // Default split: everything to per-origin sharding.
        let sim = SimConfig::small().with_concurrency(6);
        assert_eq!(sim.propagation_split(), (6, 1));
        // A pinned frontier divides the budget.
        assert_eq!(sim.clone().with_frontier(2).propagation_split(), (3, 2));
        assert_eq!(sim.clone().with_frontier(4).propagation_split(), (1, 4));
        // Frontier 0 claims the whole budget; origins drop to one worker.
        assert_eq!(sim.clone().with_frontier(0).propagation_split(), (1, 6));
        // Oversized requests are capped by the budget.
        assert_eq!(sim.clone().with_frontier(64).propagation_split(), (1, 6));
        // Fully sequential stays fully sequential.
        assert_eq!(sim.with_concurrency(1).with_frontier(8).propagation_split(), (1, 1));
        // The product never exceeds the resolved budget.
        for concurrency in [0usize, 1, 2, 3, 8] {
            for frontier in [0usize, 1, 2, 3, 8] {
                let sim = SimConfig::small().with_concurrency(concurrency).with_frontier(frontier);
                let (origins, frontier_workers) = sim.propagation_split();
                assert!(origins * frontier_workers <= sim.effective_concurrency().max(1));
                assert!(origins >= 1 && frontier_workers >= 1);
            }
        }
    }

    #[test]
    fn propagation_split_holds_at_degenerate_budgets() {
        // Budget of one: whatever the frontier knob asks for — the whole
        // budget (0), more than the budget, or exactly one — the split
        // must collapse to the fully sequential (1, 1).
        for frontier in [0usize, 1, 2, 8, usize::MAX] {
            let sim = SimConfig::small().with_concurrency(1).with_frontier(frontier);
            assert_eq!(sim.propagation_split(), (1, 1), "frontier={frontier}");
        }
        // Frontier larger than the budget: capped at the budget, origins
        // drop to a single worker — never zero, never oversubscribed.
        let sim = SimConfig::small().with_concurrency(2).with_frontier(3);
        assert_eq!(sim.propagation_split(), (1, 2));
        let sim = SimConfig::small().with_concurrency(2).with_frontier(usize::MAX);
        assert_eq!(sim.propagation_split(), (1, 2));
        // A frontier that does not divide the budget floors the origin
        // side (5 / 2 = 2), keeping the product within the budget.
        let sim = SimConfig::small().with_concurrency(5).with_frontier(2);
        assert_eq!(sim.propagation_split(), (2, 2));
        // `concurrency = 0` resolves to the host's cores before the
        // split, so the invariant holds against that resolved budget.
        let sim = SimConfig::small().with_concurrency(0).with_frontier(usize::MAX);
        let (origins, frontier) = sim.propagation_split();
        assert_eq!(origins, 1);
        assert_eq!(frontier, sim.effective_concurrency().max(1));
    }
}
