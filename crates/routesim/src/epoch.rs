//! Copy-on-write epoch cell for sharing immutable scenario state.
//!
//! A resident service builds a scenario snapshot once and answers queries
//! from it for a long time; occasionally an operator reloads, producing a
//! new snapshot. The [`EpochCell`] makes that swap wait-free for readers
//! in the way that matters: a reload assembles the *entire* replacement
//! value outside the cell, then publishes it with one pointer swap under a
//! briefly held lock. Readers clone an `Arc` out of the cell (nanoseconds)
//! and keep answering from the snapshot they hold — queries never observe
//! a half-built state and never block on a rebuild in progress.
//!
//! Epochs are monotonically increasing `u64`s starting at 1, so a reader
//! can cheaply ask "has the world changed since I last looked?" without
//! comparing values.

use std::sync::{Arc, RwLock};

/// A value paired with the epoch at which it was published.
#[derive(Debug)]
pub struct Versioned<T> {
    epoch: u64,
    value: T,
}

impl<T> Versioned<T> {
    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The published value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

/// A slot holding the current [`Versioned`] snapshot behind an `Arc`.
///
/// [`EpochCell::load`] hands out a shared handle to the current snapshot;
/// [`EpochCell::publish`] swaps in a fully built replacement and bumps the
/// epoch. Old snapshots stay alive for as long as any reader holds them.
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: RwLock<Arc<Versioned<T>>>,
}

impl<T> EpochCell<T> {
    /// Wrap an initial value at epoch 1.
    pub fn new(value: T) -> Self {
        EpochCell { slot: RwLock::new(Arc::new(Versioned { epoch: 1, value })) }
    }

    /// A shared handle to the current snapshot. The handle stays valid
    /// (and the underlying value alive) across any number of subsequent
    /// publishes.
    pub fn load(&self) -> Arc<Versioned<T>> {
        Arc::clone(&self.slot.read().expect("EpochCell lock poisoned"))
    }

    /// The current epoch without taking a handle.
    pub fn epoch(&self) -> u64 {
        self.slot.read().expect("EpochCell lock poisoned").epoch
    }

    /// Publish a replacement value (built entirely by the caller, outside
    /// any lock) and return the new epoch.
    pub fn publish(&self, value: T) -> u64 {
        let mut slot = self.slot.write().expect("EpochCell lock poisoned");
        let epoch = slot.epoch + 1;
        *slot = Arc::new(Versioned { epoch, value });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_swaps_value() {
        let cell = EpochCell::new("alpha");
        let first = cell.load();
        assert_eq!(first.epoch(), 1);
        assert_eq!(*first.value(), "alpha");
        assert_eq!(cell.publish("beta"), 2);
        assert_eq!(cell.epoch(), 2);
        let second = cell.load();
        assert_eq!(second.epoch(), 2);
        assert_eq!(*second.value(), "beta");
        // The old handle is unaffected by the swap.
        assert_eq!(first.epoch(), 1);
        assert_eq!(*first.value(), "alpha");
    }

    #[test]
    fn concurrent_readers_see_a_consistent_snapshot() {
        let cell = std::sync::Arc::new(EpochCell::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = std::sync::Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let snap = cell.load();
                        // The pair (epoch, value) is immutable once read.
                        assert_eq!(snap.epoch(), *snap.value() + 1);
                    }
                });
            }
            for i in 1..100u64 {
                cell.publish(i);
            }
        });
        assert_eq!(cell.epoch(), 100);
    }
}
