//! # routesim
//!
//! A policy-aware BGP route propagation simulator that plays the role of
//! the real Internet + RouteViews/RIPE RIS in this reproduction.
//!
//! Given a ground-truth topology from `topogen` and a simulation
//! configuration, the simulator:
//!
//! 1. assigns every AS a routing **policy**: per-relationship LocPrf bases
//!    (with realistic per-AS diversity), a community scheme from the `irr`
//!    crate, and whether the AS deploys ingress relationship tagging;
//! 2. **propagates** one prefix per AS per plane under the Gao–Rexford
//!    export rules (customer routes to everyone; peer/provider routes to
//!    customers only), selecting routes by LocPrf class, then path length,
//!    then a deterministic tie-break;
//! 3. optionally applies the **IPv6 valley-free relaxations** the paper
//!    describes: ASes that would otherwise have no IPv6 route accept and
//!    re-export otherwise-forbidden routes (reachability-driven valleys),
//!    plus a configurable rate of plain route leaks;
//! 4. materialises what the **collectors** see: each collector has feeder
//!    ASes; full feeders expose LocPrf (iBGP-style feeds), all feeders
//!    expose AS paths and the accumulated communities; the result is a
//!    [`bgp_types::RibSnapshot`] per collector, which can also be written
//!    to MRT TABLE_DUMP_V2 files via the `mrt` crate;
//! 5. documents a configurable subset of community schemes in a synthetic
//!    IRR registry, which the inference pipeline later parses — the same
//!    partial-knowledge situation the paper faces;
//! 6. optionally runs an **adversarial scenario** ([`PolicyScenario`]):
//!    a deterministic route leak or (sub)prefix hijack, against a
//!    partially deployed defensive policy (ROV / ASPA-lite, sampled per
//!    AS by [`PolicyDeployment`]) — the per-AS route decision dispatches
//!    through [`policy::PolicyEngine`] at every adoption point.
//!
//! The top-level entry point is [`scenario::Scenario::build`], which runs
//! all of the above and returns everything an experiment needs.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod collector;
pub mod config;
pub mod epoch;
pub mod policy;
pub mod propagate;
pub mod scenario;
pub mod shard;
pub mod updates;

pub use collector::{CollectorSetup, FeederKind};
pub use config::SimConfig;
pub use epoch::{EpochCell, Versioned};
pub use policy::{
    AsPolicy, AspaLitePolicy, ClassicPolicy, Policy, PolicyDeployment, PolicyEngine, PolicyModel,
    PolicyScenario, PolicyTable, RovPolicy,
};
pub use propagate::{
    propagate_origin, propagate_origin_with, propagate_origins, OriginScheduling,
    PropagationOptions, RouteClass, RouteInfo, RouteTaint, RoutingOutcome,
};
pub use scenario::{PropagationCache, Scenario, ScenarioPool, PROPAGATION_LRU_CAPACITY};
pub use shard::{effective_concurrency, shard_frontier, shard_map, shard_map_lpt, shard_map_owned};
pub use updates::UpdateStreamConfig;
