//! End-to-end scenario assembly: topology → policies → propagation →
//! collector RIBs → IRR registry → MRT files — plus the sweep-point reuse
//! layer ([`Scenario::rebuild_with`] / [`ScenarioPool`]) that patches a
//! built scenario into a neighbouring configuration without recomputing
//! the state the patch provably cannot change.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use asgraph::AsGraph;
use bgp_types::{
    Asn, CollectorId, IpVersion, Ipv4Net, Ipv6Net, PathAttributes, Prefix, RibEntry, RibSnapshot,
    RouteSource,
};
use irr::{IrrRegistry, TrafficAction};
use topogen::{GroundTruth, TopologyConfig};

use crate::collector::{build_collectors, CollectorSetup, FeederKind};
use crate::config::SimConfig;
use crate::policy::{PolicyDeployment, PolicyScenario, PolicyTable};
use crate::propagate::{propagate_origins, PropagationOptions, RoutingOutcome};
use crate::shard::shard_map;

/// How many per-plane propagation outcomes [`PropagationCache`] retains.
/// Four covers the sweep shapes the harness actually runs (an A/B
/// alternation plus the base point, with headroom) without letting a
/// long one-shot sweep pin unbounded memory.
pub const PROPAGATION_LRU_CAPACITY: usize = 4;

/// The per-plane propagation outcomes a built [`Scenario`] carries so
/// sweep-point rebuilds can reuse them. Outcomes are `Arc`-shared: cloning
/// a scenario (or rebuilding one with an unchanged propagation
/// configuration) costs pointer bumps, not a re-propagation.
///
/// Per plane this is a small options-keyed LRU (capacity
/// [`PROPAGATION_LRU_CAPACITY`], keyed by the route-model subset of
/// [`PropagationOptions`] — execution knobs never key anything): sweep
/// points that *alternate* between option sets, as the A2/A3 bins do,
/// keep hitting instead of evicting each other the way the old
/// one-entry-per-plane cache did. Eviction is deterministic — the
/// least-recently-used entry (the back of the list) goes first.
///
/// A cache is only meaningful against the ground truth it was computed
/// from — [`Scenario::rebuild_with`] maintains that invariant by always
/// pairing `self.propagation` with `self.truth`.
#[derive(Debug, Clone, Default)]
pub struct PropagationCache {
    /// Per-plane entries, most recently used first.
    planes: [Vec<PlaneOutcomes>; 2],
}

#[derive(Debug, Clone)]
struct PlaneOutcomes {
    options: PropagationOptions,
    /// The origin-sampling stride the outcomes were computed under —
    /// part of the cache key because it selects *which* origins were
    /// propagated, upstream of the route model.
    origin_sample: usize,
    outcomes: Arc<Vec<RoutingOutcome>>,
}

fn plane_slot(plane: IpVersion) -> usize {
    match plane {
        IpVersion::V4 => 0,
        IpVersion::V6 => 1,
    }
}

impl PropagationCache {
    /// The cached outcomes for a plane, if any entry was computed under
    /// the same *route model* as `options` and the same origin-sampling
    /// stride — execution knobs (frontier worker count, origin
    /// scheduling) are ignored, so retuning them between sweep points
    /// still reuses the cached propagation.
    fn matching(
        &self,
        plane: IpVersion,
        options: &PropagationOptions,
        origin_sample: usize,
    ) -> Option<Arc<Vec<RoutingOutcome>>> {
        self.planes[plane_slot(plane)]
            .iter()
            .find(|entry| {
                entry.origin_sample == origin_sample && entry.options.same_route_model(options)
            })
            .map(|entry| Arc::clone(&entry.outcomes))
    }

    /// Record `outcomes` as the plane's most recently used entry: any
    /// existing entry with the same route model is replaced (so a reuse
    /// refreshes its recency instead of duplicating it), and the
    /// least-recently-used entry is evicted once the plane exceeds
    /// [`PROPAGATION_LRU_CAPACITY`].
    fn insert(
        &mut self,
        plane: IpVersion,
        options: PropagationOptions,
        origin_sample: usize,
        outcomes: Arc<Vec<RoutingOutcome>>,
    ) {
        let entries = &mut self.planes[plane_slot(plane)];
        entries.retain(|entry| {
            entry.origin_sample != origin_sample || !entry.options.same_route_model(&options)
        });
        entries.insert(0, PlaneOutcomes { options, origin_sample, outcomes });
        entries.truncate(PROPAGATION_LRU_CAPACITY);
    }

    /// True when `self`'s most recently used outcomes for the plane are
    /// the *same allocation* as any entry of `other` — the tell that a
    /// rebuild served the plane from `other`'s cache rather than
    /// recomputing it.
    pub fn shares_outcomes(&self, other: &PropagationCache, plane: IpVersion) -> bool {
        let slot = plane_slot(plane);
        let Some(used) = self.planes[slot].first() else { return false };
        other.planes[slot].iter().any(|entry| Arc::ptr_eq(&used.outcomes, &entry.outcomes))
    }
}

/// A fully materialised measurement scenario: the synthetic Internet, what
/// its operators configured, and what the collectors recorded.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The ground-truth topology and relationships.
    pub truth: GroundTruth,
    /// Per-AS policies (LocPrf plans, community schemes, tagging).
    pub policies: PolicyTable,
    /// The synthetic IRR: documentation for a subset of the schemes.
    pub registry: IrrRegistry,
    /// The collectors and their feeders.
    pub collectors: Vec<CollectorSetup>,
    /// One RIB snapshot per collector.
    pub snapshots: Vec<RibSnapshot>,
    /// The topology configuration used.
    pub topology_config: TopologyConfig,
    /// The simulation configuration used.
    pub sim_config: SimConfig,
    /// The propagation outcomes the snapshots were materialised from,
    /// kept (Arc-shared) so [`Scenario::rebuild_with`] can patch the
    /// configuration without re-running propagation.
    pub propagation: PropagationCache,
}

/// Every [`SimConfig`] knob that feeds the generated artefacts (policies,
/// registry, collectors, propagation and RIB materialisation) — i.e.
/// everything except `concurrency`, `frontier_concurrency`, `scheduling`
/// and `csr`, which are execution details with byte-identical output by
/// contract. `origin_sample` *is* in the key: sampling origins changes
/// which routes exist, so it is an output knob like the probabilities.
/// The exhaustive destructuring is the point: adding a field to
/// `SimConfig` refuses to compile here until the rebuild logic accounts
/// for it.
type OutputKey = (
    (u64, f64, f64, f64, f64),
    (f64, f64, f64, bool, f64),
    (usize, usize, f64, u64, usize),
    (PolicyScenario, f64),
);

fn output_key(sim: &SimConfig) -> OutputKey {
    let SimConfig {
        seed,
        transit_tagging_probability,
        stub_tagging_probability,
        documentation_probability,
        te_documentation_probability,
        te_request_probability,
        location_tag_probability,
        community_scrub_probability,
        v6_reachability_relaxation,
        leak_probability,
        collector_count,
        feeders_per_collector,
        full_feeder_fraction,
        timestamp,
        origin_sample,
        policy_scenario,
        policy_deployment,
        concurrency: _,
        frontier_concurrency: _,
        scheduling: _,
        csr: _,
    } = *sim;
    (
        (
            seed,
            transit_tagging_probability,
            stub_tagging_probability,
            documentation_probability,
            te_documentation_probability,
        ),
        (
            te_request_probability,
            location_tag_probability,
            community_scrub_probability,
            v6_reachability_relaxation,
            leak_probability,
        ),
        (collector_count, feeders_per_collector, full_feeder_fraction, timestamp, origin_sample),
        (policy_scenario, policy_deployment),
    )
}

/// The propagation configuration of one plane, derived from the
/// simulation config exactly as the build derives it. The frontier
/// worker count comes from [`SimConfig::propagation_split`], so nested
/// parallelism (origins × frontier) stays within the worker budget.
fn propagation_options(sim_config: &SimConfig, plane: IpVersion) -> PropagationOptions {
    let (_, frontier_workers) = sim_config.propagation_split();
    PropagationOptions {
        reachability_relaxation: plane == IpVersion::V6 && sim_config.v6_reachability_relaxation,
        leak_probability: sim_config.leak_probability,
        seed: sim_config.seed,
        scenario: sim_config.policy_scenario,
        deployment: PolicyDeployment {
            fraction: sim_config.policy_deployment,
            seed: sim_config.seed ^ 0x6465_706c,
        },
        frontier_concurrency: frontier_workers,
        scheduling: sim_config.scheduling,
    }
}

/// The deterministic prefix an AS originates on a plane.
///
/// 16-bit ASNs keep the historical mapping (`10.hi.lo.0/24`,
/// `2001:db8:asn::/48`) so existing golden artefacts stay byte-identical;
/// larger ASNs — the internet-scale synthetic topologies overflow the
/// 16-bit space — map into disjoint ranges (first octet `64 + (asn >>
/// 16)` for v4, a `/64` with the high half in the third hextet for v6),
/// so prefixes stay unique across the whole generated ASN space. The v4
/// scheme has 23 usable bits; topologies are nowhere near that, and the
/// assert turns any future overflow into a loud failure instead of a
/// silent prefix collision.
pub fn origin_prefix(asn: Asn, plane: IpVersion) -> Prefix {
    let a = asn.value();
    match plane {
        IpVersion::V4 if a <= 0xFFFF => Prefix::V4(Ipv4Net::new_truncated(
            Ipv4Addr::new(10, ((a >> 8) & 0xFF) as u8, (a & 0xFF) as u8, 0),
            24,
        )),
        IpVersion::V4 => {
            assert!(a < 1 << 23, "origin_prefix cannot map ASN {a} uniquely into 10/8 + 64/2");
            Prefix::V4(Ipv4Net::new_truncated(
                Ipv4Addr::new(
                    64 + ((a >> 16) & 0x7F) as u8,
                    ((a >> 8) & 0xFF) as u8,
                    (a & 0xFF) as u8,
                    0,
                ),
                24,
            ))
        }
        IpVersion::V6 if a <= 0xFFFF => Prefix::V6(Ipv6Net::new_truncated(
            Ipv6Addr::new(0x2001, 0xdb8, (a & 0xFFFF) as u16, 0, 0, 0, 0, 0),
            48,
        )),
        IpVersion::V6 => Prefix::V6(Ipv6Net::new_truncated(
            Ipv6Addr::new(0x2001, 0xdb8, (a >> 16) as u16, (a & 0xFFFF) as u16, 0, 0, 0, 0),
            64,
        )),
    }
}

impl Scenario {
    /// Build a scenario: generate the topology, assign policies, document a
    /// subset in the IRR, select collectors, propagate every origin on both
    /// planes, and record what each feeder exports to its collector.
    pub fn build(topology_config: &TopologyConfig, sim_config: &SimConfig) -> Scenario {
        sim_config.validate().expect("invalid simulation configuration");
        let truth = topogen::generate(topology_config);
        Self::build_from_truth(truth, topology_config.clone(), sim_config)
    }

    /// Build a scenario on an existing ground truth (used by fixtures and
    /// ablations that reuse one topology under several measurement setups).
    pub fn build_from_truth(
        truth: GroundTruth,
        topology_config: TopologyConfig,
        sim_config: &SimConfig,
    ) -> Scenario {
        Self::assemble(truth, topology_config, sim_config, &PropagationCache::default())
    }

    /// Rebuild this scenario under a patched configuration, reusing every
    /// cached artefact the patch provably cannot change:
    ///
    /// * the ground truth is always reused (the topology is a function of
    ///   `topology_config` alone);
    /// * per-plane propagation outcomes are reused whenever the patch
    ///   leaves that plane's [`PropagationOptions`] (seed, leak
    ///   probability, v6 relaxation) untouched — this is the expensive
    ///   part of a build, and it is independent of policies, collectors
    ///   and documentation by construction;
    /// * if the patch changes *nothing* that feeds the generated
    ///   artefacts (e.g. only `concurrency`), the policies, registry,
    ///   collectors and RIB snapshots are cloned outright.
    ///
    /// The result is byte-identical to `Scenario::build` with the patched
    /// configuration — reuse is an execution detail, never an output knob
    /// (the scenario tests and the determinism suite enforce it).
    pub fn rebuild_with(&self, patch: impl FnOnce(&mut SimConfig)) -> Scenario {
        let mut sim = self.sim_config.clone();
        patch(&mut sim);
        sim.validate().expect("invalid simulation configuration");
        if output_key(&sim) == output_key(&self.sim_config) {
            // Clone-and-patch: nothing that reaches the outputs changed.
            return Scenario { sim_config: sim, ..self.clone() };
        }
        Self::assemble(self.truth.clone(), self.topology_config.clone(), &sim, &self.propagation)
    }

    /// The shared build path: generate policies, registry and collectors
    /// for `sim_config`, reuse propagation outcomes from `reuse` where the
    /// options match (computing and caching them otherwise), and
    /// materialise the collector RIBs.
    fn assemble(
        mut truth: GroundTruth,
        topology_config: TopologyConfig,
        sim_config: &SimConfig,
        reuse: &PropagationCache,
    ) -> Scenario {
        sim_config.validate().expect("invalid simulation configuration");
        // Serve the hot per-plane walks from the flat CSR mirror (or drop
        // it when the reference adjacency-map backend was requested). A
        // pure execution knob: the CSR iterates neighbours in the exact
        // adjacency order, so every downstream byte is identical.
        if sim_config.csr {
            truth.graph.freeze();
        } else {
            truth.graph.thaw();
        }
        let policies = PolicyTable::build(&truth, sim_config);

        // Document the chosen subset of schemes in the registry.
        let mut registry = IrrRegistry::new();
        for policy in policies.iter() {
            if policy.documented {
                registry.document_scheme(&policy.scheme, policy.documents_te);
            }
        }

        let mut rng = ChaCha8Rng::seed_from_u64(sim_config.seed ^ 0x636f_6c6c);
        let collectors = build_collectors(&truth, sim_config, &mut rng);

        let mut snapshots: Vec<RibSnapshot> = collectors
            .iter()
            .map(|c| RibSnapshot::new(c.id.clone(), sim_config.timestamp))
            .collect();

        // Inherit the reuse cache wholesale so entries the *current*
        // options do not match stay available to later rebuilds — that is
        // what lets an A/B/A sweep alternation keep hitting. The entry
        // actually used is (re)inserted, refreshing its LRU position.
        let mut propagation = reuse.clone();
        for plane in IpVersion::BOTH {
            let options = propagation_options(sim_config, plane);
            let outcomes =
                reuse.matching(plane, &options, sim_config.origin_sample).unwrap_or_else(|| {
                    Arc::new(Self::propagate_plane(&truth, sim_config, plane, &options))
                });
            Self::materialise_plane(
                &truth,
                &policies,
                &collectors,
                &mut snapshots,
                sim_config,
                plane,
                &outcomes,
            );
            propagation.insert(plane, options, sim_config.origin_sample, outcomes);
        }

        Scenario {
            truth,
            policies,
            registry,
            collectors,
            snapshots,
            topology_config,
            sim_config: sim_config.clone(),
            propagation,
        }
    }

    /// One plane's propagation round: every origin present on the plane,
    /// sharded across worker threads, each origin's own walk expanded
    /// with the frontier workers `options` carries (the split computed by
    /// [`SimConfig::propagation_split`], so origins × frontier stays
    /// within the budget); the outcomes come back in origin order, so the
    /// rest of the build is oblivious to how (or whether) it was
    /// parallelised.
    fn propagate_plane(
        truth: &GroundTruth,
        sim_config: &SimConfig,
        plane: IpVersion,
        options: &PropagationOptions,
    ) -> Vec<RoutingOutcome> {
        let graph = &truth.graph;
        let mut origins: Vec<Asn> = graph.asns().filter(|a| graph.degree(*a, plane) > 0).collect();
        origins.sort();
        // Origin sampling strides the *sorted* origin list, so which
        // origins survive is a pure function of the topology and the
        // knob — never of iteration order or worker count.
        if sim_config.origin_sample > 1 {
            origins = origins.into_iter().step_by(sim_config.origin_sample).collect();
        }
        let (origin_workers, _) = sim_config.propagation_split();
        propagate_origins(graph, &origins, plane, options, origin_workers)
    }

    /// Materialise one plane's RIB entries from its propagation outcomes.
    fn materialise_plane(
        truth: &GroundTruth,
        policies: &PolicyTable,
        collectors: &[CollectorSetup],
        snapshots: &mut [RibSnapshot],
        sim_config: &SimConfig,
        plane: IpVersion,
        outcomes: &[RoutingOutcome],
    ) {
        let graph = &truth.graph;
        // Feeder -> collector index, for the feeders active on this plane.
        let mut feeder_map: Vec<(Asn, usize, FeederKind)> = Vec::new();
        for (ci, collector) in collectors.iter().enumerate() {
            for feeder in collector.plane_feeders(plane) {
                feeder_map.push((feeder.asn, ci, feeder.kind));
            }
        }
        feeder_map.sort_by_key(|(asn, _, _)| *asn);

        let workers = sim_config.effective_concurrency();

        // Materialise each origin's RIB entries, sharded: everything an
        // origin contributes is a pure function of (origin, outcome)
        // because the route RNG is seeded per origin. Batches are pushed
        // into the per-collector snapshots in origin order, reproducing
        // the sequential entry sequence exactly.
        let batches: Vec<Vec<(usize, RibEntry)>> = shard_map(outcomes, workers, |outcome| {
            let origin = outcome.origin;
            let prefix = origin_prefix(origin, plane);
            // Per-origin deterministic RNG so results do not depend on how
            // many feeders or collectors exist.
            let mut route_rng = ChaCha8Rng::seed_from_u64(
                sim_config.seed ^ (u64::from(origin.value()) << 32) ^ u64::from(plane.afi()),
            );
            // TE request: does this origin ask its first provider for lower
            // preference on this prefix?
            let te_requested = route_rng.gen_bool(sim_config.te_request_probability);

            let mut batch: Vec<(usize, RibEntry)> = Vec::new();
            for &(feeder_asn, collector_idx, kind) in &feeder_map {
                let Some(path) = outcome.path(graph, feeder_asn) else { continue };
                let mut entry = build_rib_entry(
                    graph,
                    policies,
                    sim_config,
                    plane,
                    prefix,
                    &path,
                    feeder_asn,
                    kind,
                    te_requested,
                    &mut route_rng,
                );
                let feeder = collectors[collector_idx]
                    .feeders
                    .iter()
                    .find(|f| f.asn == feeder_asn)
                    .expect("feeder map is built from collectors");
                entry.peer = feeder.peer_id(plane);
                batch.push((collector_idx, entry));
            }
            batch
        });
        for batch in batches {
            for (collector_idx, entry) in batch {
                snapshots[collector_idx].push(entry);
            }
        }
    }

    /// Pool every collector's snapshot into one view, as the paper pools
    /// RouteViews and RIS. Uses the scenario's configured concurrency.
    pub fn merged_snapshot(&self) -> RibSnapshot {
        self.pooled_snapshot(self.sim_config.concurrency)
    }

    /// [`merged_snapshot`](Self::merged_snapshot) with an explicit worker
    /// count (`0` = all cores, `1` = sequential). Per-collector entry
    /// cloning is sharded; the pooled entry order — collector order, then
    /// each collector's own order — is identical at every worker count.
    pub fn pooled_snapshot(&self, concurrency: usize) -> RibSnapshot {
        let mut merged = RibSnapshot::new(CollectorId::new("merged"), self.sim_config.timestamp);
        let workers = crate::shard::effective_concurrency(concurrency);
        let chunks: Vec<Vec<RibEntry>> =
            shard_map(&self.snapshots, workers, |snap| snap.entries.clone());
        merged.entries = chunks.into_iter().flatten().collect();
        merged
    }

    /// Write one MRT TABLE_DUMP_V2 file per collector into `dir` and return
    /// the file paths (the directory is created if needed).
    pub fn write_mrt_files(&self, dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.snapshots.len());
        for snap in &self.snapshots {
            let name = snap
                .collector
                .as_ref()
                .map(|c| c.name().to_string())
                .unwrap_or_else(|| "collector".to_string());
            let path = dir.join(format!("{name}.rib.mrt"));
            mrt::write_snapshot_to_path(&path, snap)
                .map_err(|e| io::Error::other(e.to_string()))?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// The total number of RIB entries across all collectors.
    pub fn total_rib_entries(&self) -> usize {
        self.snapshots.iter().map(|s| s.len()).sum()
    }
}

/// A sweep-point factory over one topology: builds a base scenario once,
/// then derives every further sweep point from it with
/// [`Scenario::rebuild_with`], so the topology is never regenerated and
/// propagation is only re-run when a patch actually changes its inputs.
///
/// This is the layer the paper-scale experiment bins sweep on (the
/// coverage sweep patches `documentation_probability`, the collector
/// sensitivity sweep patches `collector_count`; neither touches
/// propagation, so every point after the first reuses the routed
/// outcomes). The reuse counters report how often that happened.
#[derive(Debug, Clone)]
pub struct ScenarioPool {
    base: Scenario,
    propagation_reuses: u64,
    propagation_computes: u64,
}

impl ScenarioPool {
    /// Build the base scenario (topology generation + full build) the
    /// pool derives sweep points from.
    pub fn new(topology: &TopologyConfig, sim: &SimConfig) -> ScenarioPool {
        Self::from_scenario(Scenario::build(topology, sim))
    }

    /// Wrap an already-built scenario as the pool's base.
    pub fn from_scenario(base: Scenario) -> ScenarioPool {
        // The base build propagated both planes itself.
        ScenarioPool { base, propagation_reuses: 0, propagation_computes: 2 }
    }

    /// The base scenario sweep points are derived from.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// Build the sweep point obtained by patching the base configuration
    /// — byte-identical to `Scenario::build` with the patched config.
    pub fn scenario_with(&mut self, patch: impl FnOnce(&mut SimConfig)) -> Scenario {
        let scenario = self.base.rebuild_with(patch);
        for plane in IpVersion::BOTH {
            if scenario.propagation.shares_outcomes(&self.base.propagation, plane) {
                self.propagation_reuses += 1;
            } else {
                self.propagation_computes += 1;
            }
        }
        // Adopt the sweep point's cache as the pool's: it carries every
        // entry the base had plus whatever this point computed (all
        // against the same, never-changing ground truth), so a later
        // point that returns to these options reuses instead of
        // recomputing. Without this write-back the base cache never
        // learns and an A/B/A alternation re-propagates every iteration.
        self.base.propagation = scenario.propagation.clone();
        scenario
    }

    /// Per-plane propagation rounds served from the base's cache.
    pub fn propagation_reuses(&self) -> u64 {
        self.propagation_reuses
    }

    /// Per-plane propagation rounds actually computed (including the two
    /// the base build ran).
    pub fn propagation_computes(&self) -> u64 {
        self.propagation_computes
    }
}

/// Construct one collector RIB entry from a feeder's path to an origin.
#[allow(clippy::too_many_arguments)]
fn build_rib_entry<R: Rng>(
    graph: &AsGraph,
    policies: &PolicyTable,
    sim_config: &SimConfig,
    plane: IpVersion,
    prefix: Prefix,
    path: &[Asn],
    feeder_asn: Asn,
    feeder_kind: FeederKind,
    te_requested: bool,
    rng: &mut R,
) -> RibEntry {
    let as_path: bgp_types::AsPath = bgp_types::AsPath::from_sequence(path.to_vec());
    let mut attrs = PathAttributes::with_path(as_path);
    attrs.next_hop = Some(match plane {
        IpVersion::V4 => std::net::IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1)),
        IpVersion::V6 => std::net::IpAddr::V6("2001:db8:beef::1".parse().unwrap()),
    });

    // The TE community the origin attached, addressed to its first upstream
    // (the AS right before the origin on the path), if that AS has a
    // documented lower-preference value.
    let origin = *path.last().expect("paths are never empty");
    let mut te_target: Option<(Asn, bgp_types::Community)> = None;
    if te_requested && path.len() >= 2 {
        let upstream = path[path.len() - 2];
        if let Some(upstream_policy) = policies.get(upstream) {
            if let Some(c) = upstream_policy.scheme.te_community(TrafficAction::LowerPreference) {
                te_target = Some((upstream, c));
            }
        }
    }
    if let Some((_, c)) = te_target {
        attrs.communities.insert(c);
    }

    // Walk the path from the origin towards the feeder, accumulating the
    // communities each AS adds at ingress (and dropping foreign ones at
    // scrubbing ASes).
    let mut per_as_locations: HashMap<Asn, u16> = HashMap::new();
    for i in (0..path.len() - 1).rev() {
        let this_as = path[i];
        let learned_from = path[i + 1];
        let Some(policy) = policies.get(this_as) else { continue };
        if policy.scrubs_foreign_communities {
            // Keep only communities defined by this AS (the usual
            // "delete foreign communities" policy), plus the TE community
            // addressed to an AS we have not reached yet.
            let own: Vec<bgp_types::Community> = attrs.communities.defined_by(this_as).collect();
            let keep_te = te_target.filter(|(target, _)| {
                // The TE target is upstream of the origin; once passed it is
                // allowed to be scrubbed like anything else.
                path.iter().position(|a| a == target).map(|p| p < i).unwrap_or(false)
            });
            attrs.communities = own.into_iter().collect();
            if let Some((_, c)) = keep_te {
                attrs.communities.insert(c);
            }
        }
        if let Some(rel) = graph.relationship(this_as, learned_from, plane) {
            if let Some(c) = policy.ingress_community(rel) {
                attrs.communities.insert(c);
            }
        }
        if policy.scheme.location_count > 0 && rng.gen_bool(sim_config.location_tag_probability) {
            let index = *per_as_locations
                .entry(this_as)
                .or_insert_with(|| rng.gen_range(0..policy.scheme.location_count));
            if let Some(c) = policy.scheme.location_community(index) {
                attrs.communities.insert(c);
            }
        }
    }

    // LocPrf: only full feeders expose it; the value is what the feeder
    // assigned given the relationship towards the neighbor it learned the
    // route from, or the TE-lowered value if the route carries the feeder's
    // lower-preference community.
    if feeder_kind == FeederKind::Full {
        if let Some(policy) = policies.get(feeder_asn) {
            let lowered = policy
                .scheme
                .te_community(TrafficAction::LowerPreference)
                .map(|c| attrs.communities.contains(c))
                .unwrap_or(false);
            let local_pref = if path.len() >= 2 {
                let learned_from = path[1];
                match graph.relationship(feeder_asn, learned_from, plane) {
                    Some(rel) if lowered => {
                        let _ = rel;
                        policy.locprf.lowered
                    }
                    Some(rel) => policy.locprf.for_relationship(rel),
                    None => policy.locprf.provider,
                }
            } else {
                // The feeder originates the prefix itself.
                policy.locprf.customer
            };
            attrs.local_pref = Some(local_pref);
        }
    }

    let mut entry = RibEntry::new(
        // Placeholder peer id; the caller overwrites it with the feeder's
        // session address for the right plane.
        bgp_types::PeerId::new(feeder_asn, std::net::IpAddr::V4(Ipv4Addr::UNSPECIFIED)),
        prefix,
        attrs,
    );
    entry.source = RouteSource::Simulated;
    let _ = origin;
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Relationship;

    fn small_scenario() -> Scenario {
        Scenario::build(&TopologyConfig::tiny(), &SimConfig::small())
    }

    #[test]
    fn origin_prefixes_are_unique_and_plane_appropriate() {
        let mut seen = std::collections::HashSet::new();
        for asn in [100u32, 101, 356, 65000] {
            for plane in IpVersion::BOTH {
                let p = origin_prefix(Asn(asn), plane);
                assert_eq!(p.version(), plane);
                assert!(seen.insert(p), "duplicate prefix {p}");
            }
        }
    }

    #[test]
    fn origin_prefixes_stay_unique_past_the_16_bit_asn_boundary() {
        // The internet-scale topologies hand out ASNs past 65535; the
        // legacy truncating mapping collided there (ASN 65636 aliased ASN
        // 100 on both planes). Sweep a dense band straddling the boundary
        // plus the aliasing pairs explicitly.
        let mut seen = std::collections::HashSet::new();
        let asns = (65000u32..66000).chain([100, 356, 131172, 200_000, (1 << 23) - 1]);
        for asn in asns {
            for plane in IpVersion::BOTH {
                let p = origin_prefix(Asn(asn), plane);
                assert_eq!(p.version(), plane);
                assert!(seen.insert(p), "duplicate prefix {p} for ASN {asn}");
            }
        }
        // And the 16-bit mapping itself is untouched (golden stability).
        assert_eq!(origin_prefix(Asn(0x1234), IpVersion::V4).to_string(), "10.18.52.0/24");
        assert_eq!(origin_prefix(Asn(0x1234), IpVersion::V6).to_string(), "2001:db8:1234::/48");
    }

    #[test]
    fn csr_knob_is_invisible_in_scenario_outputs() {
        let frozen = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        assert!(frozen.truth.graph.is_frozen(), "csr defaults on");
        let map = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small().with_csr(false));
        assert!(!map.truth.graph.is_frozen());
        assert_same_outputs(&frozen, &map, "csr backend");
        // And a csr-only patch is the clone-and-patch fast path.
        let patched = frozen.rebuild_with(|s| s.csr = false);
        assert_eq!(patched.snapshots, frozen.snapshots);
        for plane in IpVersion::BOTH {
            assert!(patched.propagation.shares_outcomes(&frozen.propagation, plane));
        }
    }

    #[test]
    fn origin_sampling_prunes_routes_deterministically() {
        let full = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        let sampled =
            Scenario::build(&TopologyConfig::tiny(), &SimConfig::small().with_origin_sample(4));
        assert!(sampled.total_rib_entries() > 0);
        assert!(
            sampled.total_rib_entries() < full.total_rib_entries(),
            "a stride of 4 must drop origins"
        );
        // Sampled origins are a subset selected by sorted-ASN stride, so
        // every surviving prefix also exists in the full build.
        let full_prefixes: std::collections::HashSet<Prefix> =
            full.merged_snapshot().entries.iter().map(|e| e.prefix).collect();
        for entry in &sampled.merged_snapshot().entries {
            assert!(full_prefixes.contains(&entry.prefix));
        }
        // An output knob: rebuild_with must re-materialise, and the two
        // strides must agree with from-scratch builds byte for byte.
        let rebuilt = full.rebuild_with(|s| s.origin_sample = 4);
        assert_same_outputs(&rebuilt, &sampled, "origin_sample rebuild");
    }

    #[test]
    fn scenario_builds_and_has_routes_on_both_planes() {
        let s = small_scenario();
        assert_eq!(s.snapshots.len(), s.collectors.len());
        assert!(s.total_rib_entries() > 0);
        let merged = s.merged_snapshot();
        assert_eq!(merged.len(), s.total_rib_entries());
        assert!(merged.plane_entries(IpVersion::V4).count() > 0);
        assert!(merged.plane_entries(IpVersion::V6).count() > 0);
        // v4 visibility exceeds v6 visibility (partial adoption).
        assert!(
            merged.plane_entries(IpVersion::V4).count()
                > merged.plane_entries(IpVersion::V6).count()
        );
    }

    #[test]
    fn parallel_scenario_build_is_byte_identical_to_sequential() {
        let sequential =
            Scenario::build(&TopologyConfig::tiny(), &SimConfig::small().with_concurrency(1));
        for workers in [0usize, 2, 4] {
            let parallel = Scenario::build(
                &TopologyConfig::tiny(),
                &SimConfig::small().with_concurrency(workers),
            );
            assert_eq!(parallel.snapshots, sequential.snapshots, "workers={workers}");
            assert_eq!(parallel.registry, sequential.registry, "workers={workers}");
            // Pooling order is independent of the pooling worker count too.
            assert_eq!(parallel.pooled_snapshot(workers), sequential.merged_snapshot());
        }
    }

    #[test]
    fn frontier_knob_is_invisible_in_scenario_outputs() {
        let sequential =
            Scenario::build(&TopologyConfig::tiny(), &SimConfig::small().with_concurrency(1));
        for (workers, frontier) in [(1usize, 2usize), (1, 0), (2, 2), (0, 4), (4, 1)] {
            let parallel = Scenario::build(
                &TopologyConfig::tiny(),
                &SimConfig::small().with_concurrency(workers).with_frontier(frontier),
            );
            assert_eq!(
                parallel.snapshots, sequential.snapshots,
                "workers={workers} frontier={frontier}"
            );
            assert_eq!(parallel.registry, sequential.registry);
        }
    }

    #[test]
    fn scheduling_knob_is_invisible_in_scenario_outputs() {
        use crate::propagate::OriginScheduling;
        let degree = Scenario::build(
            &TopologyConfig::tiny(),
            &SimConfig::small().with_scheduling(OriginScheduling::Degree),
        );
        let statically = Scenario::build(
            &TopologyConfig::tiny(),
            &SimConfig::small().with_scheduling(OriginScheduling::Static),
        );
        assert_eq!(degree.snapshots, statically.snapshots);
        assert_eq!(degree.registry, statically.registry);
        // And a scheduling-only patch is the clone-and-patch fast path.
        let patched = degree.rebuild_with(|s| s.scheduling = OriginScheduling::Static);
        assert_eq!(patched.snapshots, degree.snapshots);
        for plane in IpVersion::BOTH {
            assert!(patched.propagation.shares_outcomes(&degree.propagation, plane));
        }
    }

    #[test]
    fn rebuild_with_a_frontier_only_patch_reuses_everything() {
        let base = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        // The frontier knob never reaches the outputs, so the rebuild is
        // the clone-and-patch fast path: snapshots identical, propagation
        // outcomes Arc-shared on both planes.
        let patched = base.rebuild_with(|s| s.frontier_concurrency = 4);
        assert_eq!(patched.snapshots, base.snapshots);
        assert_eq!(patched.sim_config.frontier_concurrency, 4);
        for plane in IpVersion::BOTH {
            assert!(patched.propagation.shares_outcomes(&base.propagation, plane));
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = small_scenario();
        let b = small_scenario();
        assert_eq!(a.total_rib_entries(), b.total_rib_entries());
        let ma = a.merged_snapshot();
        let mb = b.merged_snapshot();
        assert_eq!(ma, mb);
        assert_eq!(a.registry, b.registry);
    }

    #[test]
    fn paths_in_ribs_are_loop_free_and_end_at_the_origin_prefix_owner() {
        let s = small_scenario();
        for entry in &s.merged_snapshot().entries {
            assert!(!entry.has_bogus_path(), "bogus path {}", entry.attrs.as_path);
            let origin = entry.origin_asn().unwrap();
            assert_eq!(origin_prefix(origin, entry.plane()), entry.prefix);
            assert_eq!(entry.attrs.as_path.first(), Some(entry.peer.asn));
            assert_eq!(entry.peer.plane(), entry.plane());
        }
    }

    #[test]
    fn full_feeders_expose_locpref_partial_feeders_do_not() {
        let s = small_scenario();
        let full: std::collections::HashSet<Asn> = s
            .collectors
            .iter()
            .flat_map(|c| c.feeders.iter())
            .filter(|f| f.kind == FeederKind::Full)
            .map(|f| f.asn)
            .collect();
        let mut saw_full = false;
        for entry in &s.merged_snapshot().entries {
            if full.contains(&entry.peer.asn) {
                assert!(entry.attrs.local_pref.is_some(), "full feeder without LocPrf");
                saw_full = true;
            } else {
                assert!(entry.attrs.local_pref.is_none(), "partial feeder leaked LocPrf");
            }
        }
        assert!(saw_full, "expected at least one full feeder entry");
    }

    #[test]
    fn locpref_ordering_reflects_relationships_for_untainted_routes() {
        let s = small_scenario();
        // For every full feeder, group LocPrf by the true relationship to the
        // first hop and verify customer > peer > provider on average.
        let mut by_rel: HashMap<(Asn, Relationship), Vec<u32>> = HashMap::new();
        for entry in &s.merged_snapshot().entries {
            let Some(lp) = entry.attrs.local_pref else { continue };
            let path: Vec<Asn> = entry.attrs.as_path.asns().collect();
            if path.len() < 2 {
                continue;
            }
            let rel = s.truth.graph.relationship(path[0], path[1], entry.plane());
            if let Some(rel) = rel {
                by_rel.entry((entry.peer.asn, rel)).or_default().push(lp);
            }
        }
        let mut checked = 0;
        for ((feeder, _), _) in by_rel.iter() {
            let get = |rel: Relationship| {
                by_rel.get(&(*feeder, rel)).map(|v| v.iter().copied().max().unwrap_or(0))
            };
            if let (Some(c), Some(p)) =
                (get(Relationship::ProviderToCustomer), get(Relationship::CustomerToProvider))
            {
                assert!(c > p, "feeder {feeder}: customer max {c} <= provider max {p}");
                checked += 1;
            }
        }
        assert!(checked > 0, "expected at least one feeder with both classes");
    }

    #[test]
    fn communities_on_routes_reflect_true_relationships() {
        let s = small_scenario();
        let mut verified = 0;
        for entry in &s.merged_snapshot().entries {
            let path: Vec<Asn> = entry.attrs.as_path.asns().collect();
            for community in entry.attrs.communities.iter() {
                let tagger = community.asn();
                // Find the tagger on the path; the community may be a
                // relationship tag about the next hop towards the origin.
                let Some(pos) = path.iter().position(|a| *a == tagger) else { continue };
                if pos + 1 >= path.len() {
                    continue;
                }
                let Some(policy) = s.policies.get(tagger) else { continue };
                let Some(meaning) = policy.scheme.meaning_of(community.value()) else { continue };
                if let Some(tag) = meaning.relationship_tag() {
                    let expected = tag.implied_relationship();
                    let actual = s
                        .truth
                        .graph
                        .relationship(tagger, path[pos + 1], entry.plane())
                        .expect("tagged link must exist");
                    assert_eq!(
                        actual, expected,
                        "community {community} on {}",
                        entry.attrs.as_path
                    );
                    verified += 1;
                }
            }
        }
        assert!(verified > 50, "expected many relationship tags, verified {verified}");
    }

    #[test]
    fn registry_documents_only_documented_policies() {
        let s = small_scenario();
        let documented = s.policies.documented_ases();
        assert_eq!(s.registry.len(), documented.len());
        for asn in documented {
            assert!(s.registry.get(asn).is_some());
        }
    }

    #[test]
    fn mrt_files_round_trip_through_the_codec() {
        let s = small_scenario();
        let dir = std::env::temp_dir().join(format!("routesim-mrt-{}", std::process::id()));
        let paths = s.write_mrt_files(&dir).unwrap();
        assert_eq!(paths.len(), s.snapshots.len());
        let mut total = 0;
        for (path, snap) in paths.iter().zip(&s.snapshots) {
            let decoded = mrt::read_snapshot_from_path(path).unwrap();
            assert_eq!(decoded.len(), snap.len());
            assert_eq!(decoded.collector, snap.collector);
            total += decoded.len();
        }
        assert_eq!(total, s.total_rib_entries());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Canonical comparison of two scenarios' outputs: snapshots,
    /// registry and collectors must match entry for entry.
    fn assert_same_outputs(a: &Scenario, b: &Scenario, what: &str) {
        assert_eq!(a.snapshots, b.snapshots, "{what}: snapshots diverged");
        assert_eq!(a.registry, b.registry, "{what}: registry diverged");
        assert_eq!(a.collectors, b.collectors, "{what}: collectors diverged");
    }

    #[test]
    fn rebuild_with_matches_a_from_scratch_build() {
        let topology = TopologyConfig::tiny();
        let base = Scenario::build(&topology, &SimConfig::small());
        // Patches the three sweep bins apply, plus a propagation-relevant
        // one that must force a recompute — all must be byte-identical to
        // building from config.
        type Patch = Box<dyn Fn(&mut SimConfig)>;
        let patches: Vec<(&str, Patch)> = vec![
            (
                "documentation rate",
                Box::new(|s: &mut SimConfig| s.documentation_probability = 0.25),
            ),
            ("collector count", Box::new(|s: &mut SimConfig| s.collector_count = 3)),
            ("leak probability", Box::new(|s: &mut SimConfig| s.leak_probability = 0.2)),
            ("concurrency only", Box::new(|s: &mut SimConfig| s.concurrency = 2)),
            ("identity", Box::new(|_| {})),
        ];
        for (what, patch) in &patches {
            let rebuilt = base.rebuild_with(patch);
            let mut sim = SimConfig::small();
            patch(&mut sim);
            let scratch = Scenario::build(&topology, &sim);
            assert_same_outputs(&rebuilt, &scratch, what);
            assert_eq!(rebuilt.sim_config, sim, "{what}: sim config not patched");
        }
    }

    #[test]
    fn rebuild_with_reuses_propagation_only_when_its_inputs_are_unchanged() {
        let base = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        let doc_patched = base.rebuild_with(|s| s.documentation_probability = 0.3);
        let leak_patched = base.rebuild_with(|s| s.leak_probability = 0.3);
        for plane in IpVersion::BOTH {
            assert!(
                doc_patched.propagation.shares_outcomes(&base.propagation, plane),
                "documentation patch must reuse {plane:?} propagation"
            );
            assert!(
                !leak_patched.propagation.shares_outcomes(&base.propagation, plane),
                "leak patch must recompute {plane:?} propagation"
            );
        }
        // Relaxation is a v6-only input: v4 outcomes survive the patch.
        let relax_patched = base.rebuild_with(|s| s.v6_reachability_relaxation = false);
        assert!(relax_patched.propagation.shares_outcomes(&base.propagation, IpVersion::V4));
        assert!(!relax_patched.propagation.shares_outcomes(&base.propagation, IpVersion::V6));
    }

    #[test]
    fn scenario_pool_counts_reuse_and_reproduces_builds() {
        let topology = TopologyConfig::tiny();
        let mut pool = ScenarioPool::new(&topology, &SimConfig::small());
        assert_eq!(pool.propagation_computes(), 2, "the base build propagates both planes");
        assert_eq!(pool.propagation_reuses(), 0);
        assert!(pool.base().total_rib_entries() > 0);
        for rate in [0.1, 0.5, 1.0] {
            let pooled = pool.scenario_with(|s| s.documentation_probability = rate);
            let mut sim = SimConfig::small();
            sim.documentation_probability = rate;
            let scratch = Scenario::build(&topology, &sim);
            assert_same_outputs(&pooled, &scratch, "pooled sweep point");
        }
        assert_eq!(pool.propagation_reuses(), 6, "3 sweep points × 2 planes reused");
        assert_eq!(pool.propagation_computes(), 2, "no sweep point re-propagated");
        let _ = pool.scenario_with(|s| s.leak_probability = 0.5);
        assert_eq!(pool.propagation_computes(), 4, "a leak patch re-propagates both planes");
    }

    #[test]
    fn pool_alternating_sweep_points_hit_the_propagation_lru() {
        // Regression: the old one-entry-per-plane cache thrashed on an
        // A/B/A/B alternation of propagation-relevant options — every
        // sweep point evicted the other's outcomes and re-propagated.
        // With the options-keyed LRU (plus the pool's cache write-back)
        // the second A and the second B must both be served from cache.
        let topology = TopologyConfig::tiny();
        let mut pool = ScenarioPool::new(&topology, &SimConfig::small());
        for leak in [0.1, 0.2, 0.1, 0.2] {
            let pooled = pool.scenario_with(|s| s.leak_probability = leak);
            let mut sim = SimConfig::small();
            sim.leak_probability = leak;
            let scratch = Scenario::build(&topology, &sim);
            assert_same_outputs(&pooled, &scratch, "alternating sweep point");
        }
        assert!(pool.propagation_reuses() >= 1, "the A/B/A revisits must hit the cache");
        assert_eq!(pool.propagation_reuses(), 4, "second A and second B reuse both planes");
        assert_eq!(pool.propagation_computes(), 6, "base + first A + first B compute");
    }

    #[test]
    fn propagation_lru_evicts_the_oldest_entry_deterministically() {
        let mut cache = PropagationCache::default();
        let options_for = |seed: u64| PropagationOptions { seed, ..Default::default() };
        let distinct_outcomes = || Arc::new(Vec::new());
        for seed in 0..=PROPAGATION_LRU_CAPACITY as u64 {
            cache.insert(IpVersion::V4, options_for(seed), 0, distinct_outcomes());
        }
        // One past capacity: the oldest (seed 0) is gone, everything else
        // — and nothing on the untouched plane — survives.
        assert!(cache.matching(IpVersion::V4, &options_for(0), 0).is_none(), "oldest evicted");
        for seed in 1..=PROPAGATION_LRU_CAPACITY as u64 {
            assert!(cache.matching(IpVersion::V4, &options_for(seed), 0).is_some(), "seed {seed}");
        }
        assert!(cache.matching(IpVersion::V6, &options_for(1), 0).is_none(), "planes are separate");
        // The sampling stride is part of the key: a different stride under
        // the same route model must miss, never alias.
        assert!(cache.matching(IpVersion::V4, &options_for(1), 4).is_none(), "stride keys");
        // A re-insert of an existing route model replaces (refreshes)
        // instead of duplicating: inserting seed 1 again and then one
        // fresh entry must evict seed 2, not seed 1.
        cache.insert(IpVersion::V4, options_for(1), 0, distinct_outcomes());
        cache.insert(IpVersion::V4, options_for(99), 0, distinct_outcomes());
        assert!(cache.matching(IpVersion::V4, &options_for(1), 0).is_some(), "refreshed survives");
        assert!(cache.matching(IpVersion::V4, &options_for(2), 0).is_none(), "LRU evicted");
    }

    #[test]
    #[should_panic(expected = "invalid simulation configuration")]
    fn rebuild_with_rejects_invalid_patches() {
        let base = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        let _ = base.rebuild_with(|s| s.collector_count = 0);
    }

    #[test]
    fn v6_relaxation_produces_paths_where_strict_would_not() {
        // Build the same truth twice with and without relaxation and verify
        // the relaxed scenario sees at least as many IPv6 routes.
        let truth = topogen::generate(&TopologyConfig::tiny());
        let mut strict_cfg = SimConfig::small();
        strict_cfg.v6_reachability_relaxation = false;
        strict_cfg.leak_probability = 0.0;
        let mut relaxed_cfg = strict_cfg.clone();
        relaxed_cfg.v6_reachability_relaxation = true;

        let strict = Scenario::build_from_truth(truth.clone(), TopologyConfig::tiny(), &strict_cfg);
        let relaxed = Scenario::build_from_truth(truth, TopologyConfig::tiny(), &relaxed_cfg);
        let strict_v6 = strict.merged_snapshot().plane_entries(IpVersion::V6).count();
        let relaxed_v6 = relaxed.merged_snapshot().plane_entries(IpVersion::V6).count();
        assert!(relaxed_v6 >= strict_v6);
    }
}
