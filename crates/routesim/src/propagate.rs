//! Per-origin route propagation under Gao–Rexford export policies.
//!
//! For every origin prefix the simulator computes, for every AS, the best
//! route that AS would select, following the standard model:
//!
//! * an AS prefers routes learned from customers over routes learned from
//!   peers over routes learned from providers (this is what the LocPrf
//!   bases encode), breaking ties by AS-path length and then by lowest
//!   next-hop ASN;
//! * customer-learned (and self-originated) routes are exported to
//!   everyone; peer- and provider-learned routes are exported only to
//!   customers;
//! * sibling links are transparent: routes cross them without changing
//!   class.
//!
//! Two controlled deviations produce the non-valley-free paths the paper
//! observes on the IPv6 plane:
//!
//! * **reachability relaxation** — an AS that would otherwise have *no*
//!   route accepts one from any neighbor (and passes it on downhill);
//! * **route leaks** — with a small probability an AS re-exports a peer-
//!   or provider-learned route to a peer/provider that should not have
//!   received it.
//!
//! On top of the classic walk, every adoption point dispatches through a
//! per-AS [`PolicyEngine`]: under the
//! default [`PolicyScenario::Classic`] assignment every AS accepts
//! everything and the walk reproduces the pre-refactor routes bit for
//! bit, while the adversarial scenarios (route leak, prefix and
//! subprefix hijack) seed extra origins or deterministic leaks and let
//! partially deployed defensive policies (ROV, ASPA-lite) veto the
//! tainted candidates — see [`propagate_origin_with`].
//!
//! Execution is parallel on two levels, both steered by knobs that never
//! change the selected routes: origins shard across workers
//! ([`propagate_origins`]), and *within* one origin the Phase 1/3 walks
//! run level-synchronously with each level's neighbor scan striped across
//! workers ([`PropagationOptions::frontier_concurrency`], resolved with
//! the usual `0` = all cores / `1` = sequential convention).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use asgraph::{AsGraph, NodeId};
use bgp_types::{Asn, IpVersion, Relationship};

use crate::policy::{PolicyDeployment, PolicyEngine, PolicyScenario};
use crate::shard::shard_frontier;

/// How origins are assigned to the workers of [`propagate_origins`].
///
/// Execution only, like every concurrency knob: both schedules merge
/// outcomes back in origin order, so the selected routes — and therefore
/// the report bytes — are identical whichever is picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OriginScheduling {
    /// Degree-aware LPT binning (the default): origins are weighted by
    /// their out-degree on the propagated plane and assigned
    /// longest-first to the least-loaded worker, so a handful of
    /// high-degree origins cannot serialize a whole stripe behind them.
    #[default]
    Degree,
    /// The original static striping (worker `w` takes origins
    /// `w, w + workers, …`), kept as the reference schedule.
    Static,
}

/// How an AS learned its best route towards the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// The AS originates the prefix itself.
    Origin,
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
    /// Accepted from an arbitrary neighbor to restore reachability
    /// (valley-free relaxation).
    Relaxed,
    /// Received through a route leak.
    Leaked,
}

impl RouteClass {
    /// True for the classes that violate (or may violate) the valley-free
    /// export discipline.
    pub fn is_irregular(self) -> bool {
        matches!(self, RouteClass::Relaxed | RouteClass::Leaked)
    }
}

/// What a route has been through on its way here. Candidates inherit the
/// taint of the route their sender selected, so the bits are transitive:
/// any AS downstream of a hijacked origin or a leaked hop sees them, and
/// the defensive policies ([`crate::policy::RovPolicy`],
/// [`crate::policy::AspaLitePolicy`]) key their vetoes off them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RouteTaint {
    /// The route's origin is a hijacker, not the legitimate holder.
    pub hijacked: bool,
    /// The route traversed at least one leaked export.
    pub leaked: bool,
}

/// One AS's selected route towards the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// How the route was learned.
    pub class: RouteClass,
    /// AS-path length in hops (origin = 0).
    pub path_len: u32,
    /// The neighbor the route was learned from (towards the origin).
    /// Meaningless for the origin itself.
    pub next_hop: NodeId,
    /// What the route has been through (hijacked origin, leaked hop).
    pub taint: RouteTaint,
}

/// Options controlling the propagation deviations and its execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationOptions {
    /// Enable the reachability relaxation phase.
    pub reachability_relaxation: bool,
    /// Per-(AS, origin) probability of leaking a peer/provider route.
    pub leak_probability: f64,
    /// Seed mixed with the origin ASN for the leak draws.
    pub seed: u64,
    /// The adversarial scenario the walk runs under (see
    /// [`PolicyScenario`]). Route model, not an execution detail: the
    /// non-classic scenarios change the selected routes.
    pub scenario: PolicyScenario,
    /// Partial deployment of the scenario's defensive policy (see
    /// [`PolicyDeployment`]). Route model like the scenario itself.
    pub deployment: PolicyDeployment,
    /// Worker threads for the *within-origin* frontier expansion: each
    /// level of the Phase 1/3 level-synchronous walks and the Phase 2
    /// exporter scan stripe their neighbor scans across this many
    /// threads. `0` = all available cores, `1` (the default) = the plain
    /// sequential scan — the same convention as every other concurrency
    /// knob. Execution only: the selected routes are identical at every
    /// value (see [`PropagationOptions::same_route_model`]).
    pub frontier_concurrency: usize,
    /// How [`propagate_origins`] assigns origins to its workers.
    /// Execution only, like the worker counts: both schedules produce
    /// the same outcomes in the same order.
    pub scheduling: OriginScheduling,
}

impl Default for PropagationOptions {
    fn default() -> Self {
        PropagationOptions {
            reachability_relaxation: false,
            leak_probability: 0.0,
            seed: 0,
            scenario: PolicyScenario::default(),
            deployment: PolicyDeployment::default(),
            frontier_concurrency: 1,
            scheduling: OriginScheduling::default(),
        }
    }
}

impl PropagationOptions {
    /// These options pinned to `frontier_concurrency` within-origin
    /// workers.
    pub fn with_frontier(self, frontier_concurrency: usize) -> Self {
        PropagationOptions { frontier_concurrency, ..self }
    }

    /// These options pinned to an origin-to-worker schedule.
    pub fn with_scheduling(self, scheduling: OriginScheduling) -> Self {
        PropagationOptions { scheduling, ..self }
    }

    /// These options pinned to an adversarial scenario.
    pub fn with_scenario(self, scenario: PolicyScenario) -> Self {
        PropagationOptions { scenario, ..self }
    }

    /// These options pinned to a defensive deployment plan.
    pub fn with_deployment(self, deployment: PolicyDeployment) -> Self {
        PropagationOptions { deployment, ..self }
    }

    /// True when `other` selects exactly the same routes: every field
    /// that feeds route selection matches, ignoring the execution-only
    /// `frontier_concurrency` and `scheduling`. The scenario layer's
    /// propagation cache compares options with this (not `==`), so
    /// retuning the frontier or scheduling knob between sweep points
    /// neither invalidates cached outcomes nor smuggles an execution
    /// detail into reuse decisions. The exhaustive destructuring makes a
    /// new field refuse to compile until it is classified as route model
    /// or execution detail.
    pub fn same_route_model(&self, other: &PropagationOptions) -> bool {
        let PropagationOptions {
            reachability_relaxation,
            leak_probability,
            seed,
            scenario,
            deployment,
            frontier_concurrency: _,
            scheduling: _,
        } = *self;
        reachability_relaxation == other.reachability_relaxation
            && leak_probability == other.leak_probability
            && seed == other.seed
            && scenario == other.scenario
            && deployment == other.deployment
    }
}

/// The result of propagating one origin on one plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingOutcome {
    /// The origin AS.
    pub origin: Asn,
    /// The plane the propagation ran on.
    pub plane: IpVersion,
    routes: Vec<Option<RouteInfo>>,
}

impl RoutingOutcome {
    /// The selected route of an AS, if it has one.
    pub fn route(&self, graph: &AsGraph, asn: Asn) -> Option<RouteInfo> {
        graph.node(asn).and_then(|n| self.routes[n.index()])
    }

    /// Number of ASes (including the origin) that have a route.
    pub fn routed_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }

    /// The AS path `from → ... → origin` (inclusive on both ends) that
    /// `from` would use, reconstructed through the next-hop pointers.
    pub fn path(&self, graph: &AsGraph, from: Asn) -> Option<Vec<Asn>> {
        let mut node = graph.node(from)?;
        self.routes[node.index()]?;
        let mut path = vec![graph.asn(node)];
        let mut guard = 0usize;
        while let Some(info) = self.routes[node.index()] {
            if info.class == RouteClass::Origin {
                break;
            }
            node = info.next_hop;
            path.push(graph.asn(node));
            guard += 1;
            if guard > self.routes.len() {
                // A replacement introduced a pointer loop; treat as unroutable.
                return None;
            }
        }
        Some(path)
    }

    /// True when the route of `from` traverses at least one irregular
    /// (relaxed or leaked) hop.
    pub fn path_is_irregular(&self, graph: &AsGraph, from: Asn) -> Option<bool> {
        let mut node = graph.node(from)?;
        self.routes[node.index()]?;
        let mut guard = 0usize;
        while let Some(info) = self.routes[node.index()] {
            if info.class.is_irregular() {
                return Some(true);
            }
            if info.class == RouteClass::Origin {
                return Some(false);
            }
            node = info.next_hop;
            guard += 1;
            if guard > self.routes.len() {
                return Some(true);
            }
        }
        Some(false)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Candidate {
    path_len: u32,
    tie_break: u32,
    node: u32,
}

/// Fixed-capacity bitset over node ids: the next-frontier accumulator of
/// the level-synchronous walks. One bit per node replaces the old
/// `Vec<NodeId>` push-per-candidate frontier — membership stays a set
/// under duplicate insertions and the drain yields ids in ascending
/// order. The reordering is output-invariant: each level's candidate
/// merge is a per-target minimum over `(path_len, next-hop ASN)` (see
/// [`better`]), so neither the winners nor the next level's membership
/// depend on the order the frontier was accumulated in.
struct NodeBitSet {
    words: Vec<u64>,
}

impl NodeBitSet {
    fn new(nodes: usize) -> Self {
        NodeBitSet { words: vec![0; nodes.div_ceil(64)] }
    }

    #[inline]
    fn insert(&mut self, node: NodeId) {
        let i = node.index();
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Move the set bits into `out` (cleared first) in ascending node-id
    /// order, leaving the set empty for the next level.
    fn drain_into(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        for (w, word) in self.words.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(NodeId((w as u32) * 64 + b));
                bits &= bits - 1;
            }
        }
    }
}

/// Below this many frontier nodes per worker, scanning a level is cheaper
/// than spawning the scoped threads that would stripe it, so the
/// expansion stays sequential whatever the knob says. Execution only:
/// [`shard_frontier`] produces the same candidate sequence at any worker
/// count, this merely skips the spawn when it cannot pay for itself.
const MIN_FRONTIER_PER_WORKER: usize = 128;

/// The worker count actually used for one level's scan: the requested
/// count, capped so every worker gets at least
/// [`MIN_FRONTIER_PER_WORKER`] nodes.
fn level_workers(requested: usize, frontier_len: usize) -> usize {
    requested.min(frontier_len / MIN_FRONTIER_PER_WORKER).max(1)
}

/// Propagate one origin's prefix over one plane, building the scenario's
/// [`PolicyEngine`] from the options. Batch callers should build the
/// engine once and use [`propagate_origin_with`] instead —
/// [`propagate_origins`] does.
pub fn propagate_origin(
    graph: &AsGraph,
    origin: Asn,
    plane: IpVersion,
    options: &PropagationOptions,
) -> RoutingOutcome {
    let engine = PolicyEngine::build(graph, options.scenario, options.deployment);
    propagate_origin_with(graph, origin, plane, options, &engine)
}

/// Propagate one origin's prefix over one plane under a prebuilt
/// [`PolicyEngine`] (which must match `options.scenario` /
/// `options.deployment` — [`propagate_origin`] guarantees this).
///
/// The scenario decides the seeding:
///
/// * `Classic` and `RouteLeak` run the single-source walk from the
///   origin (`RouteLeak` adds the deterministic leak step);
/// * `PrefixHijack` seeds the attacker as a second, tainted origin and
///   lets the ordinary preference order pick the winner per AS;
/// * `SubprefixHijack` runs the attacker's walk (with the victim
///   blocked — it knows its own prefix) and the victim's walk
///   separately, then merges with the attacker winning wherever its
///   more-specific announcement was heard (longest-prefix match).
pub fn propagate_origin_with(
    graph: &AsGraph,
    origin: Asn,
    plane: IpVersion,
    options: &PropagationOptions,
    engine: &PolicyEngine,
) -> RoutingOutcome {
    let n = graph.node_count();
    let Some(origin_node) = graph.node(origin) else {
        return RoutingOutcome { origin, plane, routes: vec![None; n] };
    };
    if graph.degree(origin, plane) == 0 {
        // The origin is not present on this plane at all.
        return RoutingOutcome { origin, plane, routes: vec![None; n] };
    }
    let clean = RouteTaint::default();
    let hijacked = RouteTaint { hijacked: true, leaked: false };
    // A node never attacks itself: when the structural pick lands on the
    // origin, the scenario degenerates to the classic walk for this one
    // origin.
    let attacker = match engine.scenario() {
        PolicyScenario::PrefixHijack | PolicyScenario::SubprefixHijack => {
            engine.attacker(plane).filter(|&a| a != origin_node)
        }
        _ => None,
    };
    let routes = match (engine.scenario(), attacker) {
        (PolicyScenario::SubprefixHijack, Some(attacker)) => {
            let attacker_routes = run_walk(
                graph,
                origin,
                plane,
                options,
                engine,
                &[(attacker, hijacked)],
                Some(origin_node),
            );
            let victim_routes =
                run_walk(graph, origin, plane, options, engine, &[(origin_node, clean)], None);
            attacker_routes
                .iter()
                .zip(victim_routes.iter())
                .enumerate()
                .map(|(i, (atk, vic))| if i == origin_node.index() { *vic } else { atk.or(*vic) })
                .collect()
        }
        (PolicyScenario::PrefixHijack, Some(attacker)) => run_walk(
            graph,
            origin,
            plane,
            options,
            engine,
            &[(origin_node, clean), (attacker, hijacked)],
            None,
        ),
        _ => run_walk(graph, origin, plane, options, engine, &[(origin_node, clean)], None),
    };
    RoutingOutcome { origin, plane, routes }
}

/// The five-phase walk from `seeds`, with every adoption gated by the
/// engine's per-AS policy and `blocked` never installing anything
/// (neither a route nor an export — its prefix knowledge is handled by
/// the caller). Deterministic at every worker count: the per-target
/// merges are order-independent minima and every candidate batch is
/// sorted before it is applied.
fn run_walk(
    graph: &AsGraph,
    origin: Asn,
    plane: IpVersion,
    options: &PropagationOptions,
    engine: &PolicyEngine,
    seeds: &[(NodeId, RouteTaint)],
    blocked: Option<NodeId>,
) -> Vec<Option<RouteInfo>> {
    let n = graph.node_count();
    let mut routes: Vec<Option<RouteInfo>> = vec![None; n];
    for &(seed, taint) in seeds {
        routes[seed.index()] =
            Some(RouteInfo { class: RouteClass::Origin, path_len: 0, next_hop: seed, taint });
    }
    let admit =
        |target: NodeId, cand: &RouteInfo| Some(target) != blocked && engine.accepts(target, cand);
    let workers = crate::shard::effective_concurrency(options.frontier_concurrency);

    // ---- Phase 1: customer routes (and the origin's siblings) -----------
    // A route travels "upward": from a node to its providers, and across
    // sibling links, keeping the Customer class. Level-synchronous
    // frontier expansion: every node's final path length is its level in
    // the climb BFS, and a level's candidates all come from the previous
    // level, so scanning one level at a time and merging with `better(..)`
    // reaches exactly the fixed point of the old priority-queue walk —
    // while each level's neighbor scan stripes across `workers` threads.
    {
        let mut frontier: Vec<NodeId> = seeds.iter().map(|&(seed, _)| seed).collect();
        frontier.sort_by_key(|seed| seed.0);
        let mut next_frontier = NodeBitSet::new(n);
        let mut next_len: u32 = 0;
        while !frontier.is_empty() {
            next_len += 1;
            // The route moves node -> next. `next` learns it from `node`.
            // next sees node as a customer when rel(next -> node) = p2c,
            // i.e. rel(node -> next) = c2p. Sibling links always carry it.
            let candidates: Vec<(NodeId, NodeId)> =
                shard_frontier(&frontier, level_workers(workers, frontier.len()), |&node, out| {
                    for (next, rel) in graph.neighbors_by_id(node, plane) {
                        let climbs = rel == Some(Relationship::CustomerToProvider)
                            || rel == Some(Relationship::SiblingToSibling);
                        if climbs {
                            out.push((next, node));
                        }
                    }
                });
            // Deterministic merge: `better(..)` is a strict total order on
            // (path_len, next-hop ASN), so the per-target winner does not
            // depend on candidate order, which itself is frontier order at
            // every worker count.
            for (target, sender) in candidates {
                let cand = RouteInfo {
                    class: RouteClass::Customer,
                    path_len: next_len,
                    next_hop: sender,
                    taint: routes[sender.index()].expect("frontier nodes are routed").taint,
                };
                if admit(target, &cand)
                    && better(&routes[target.index()], &cand, graph, RouteClass::Customer)
                {
                    // A node newly routed at this level joins the next
                    // frontier; later candidates can only improve the
                    // next hop, and the bitset keeps membership a set.
                    if routes[target.index()].is_none() {
                        next_frontier.insert(target);
                    }
                    routes[target.index()] = Some(cand);
                }
            }
            next_frontier.drain_into(&mut frontier);
        }
    }

    // ---- Phase 2: peer routes --------------------------------------------
    // Nodes with a customer/origin route export it across one peering
    // link; the exporter scan stripes across workers and the sort below
    // makes the merge order-independent.
    {
        let exporters: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| {
                matches!(
                    routes[id.index()].map(|r| r.class),
                    Some(RouteClass::Origin) | Some(RouteClass::Customer)
                )
            })
            .collect();
        let mut peer_candidates: Vec<(NodeId, RouteInfo)> =
            shard_frontier(&exporters, level_workers(workers, exporters.len()), |&node, out| {
                let info = routes[node.index()].expect("exporters are routed");
                for (next, rel) in graph.neighbors_by_id(node, plane) {
                    if rel != Some(Relationship::PeerToPeer) {
                        continue;
                    }
                    out.push((
                        next,
                        RouteInfo {
                            class: RouteClass::Peer,
                            path_len: info.path_len + 1,
                            next_hop: node,
                            taint: info.taint,
                        },
                    ));
                }
            });
        // Deterministic order: by target node, then candidate quality.
        peer_candidates
            .sort_by_key(|(next, cand)| (next.0, cand.path_len, graph.asn(cand.next_hop).value()));
        for (next, cand) in peer_candidates {
            if admit(next, &cand) && better(&routes[next.index()], &cand, graph, RouteClass::Peer) {
                routes[next.index()] = Some(cand);
            }
        }
        // Sibling closure for peer routes.
        sibling_closure(graph, plane, &mut routes, RouteClass::Peer, engine, blocked);
    }

    // ---- Phase 3: provider routes ------------------------------------------
    // Any routed node exports its best route to its customers; customers
    // that still lack a better route take it, and pass it on downhill.
    // Same level-synchronous scheme as Phase 1, with multiple sources at
    // different levels: every routed node exports once, at its route's
    // path length, and a customer accepting a provider route at level
    // d+1 exports at level d+1. Same-level improvements only change the
    // next hop (never the level), so each node is scheduled exactly once
    // and the levels can be processed strictly in order.
    {
        let mut buckets: Vec<NodeBitSet> = Vec::new();
        let schedule = |buckets: &mut Vec<NodeBitSet>, level: usize, node: NodeId| {
            if buckets.len() <= level {
                buckets.resize_with(level + 1, || NodeBitSet::new(n));
            }
            buckets[level].insert(node);
        };
        for id in 0..n as u32 {
            if let Some(info) = routes[id as usize] {
                schedule(&mut buckets, info.path_len as usize, NodeId(id));
            }
        }
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut level = 0;
        while level < buckets.len() {
            buckets[level].drain_into(&mut frontier);
            level += 1;
            if frontier.is_empty() {
                continue;
            }
            // node -> next is p2c: next is node's customer, so next
            // learns the route from its provider. Sibling links also
            // carry it (class preserved, handled by the closure below).
            let candidates: Vec<(NodeId, NodeId)> =
                shard_frontier(&frontier, level_workers(workers, frontier.len()), |&node, out| {
                    for (next, rel) in graph.neighbors_by_id(node, plane) {
                        if rel == Some(Relationship::ProviderToCustomer) {
                            out.push((next, node));
                        }
                    }
                });
            let next_len = level as u32;
            for (target, sender) in candidates {
                let cand = RouteInfo {
                    class: RouteClass::Provider,
                    path_len: next_len,
                    next_hop: sender,
                    taint: routes[sender.index()].expect("frontier nodes are routed").taint,
                };
                if admit(target, &cand)
                    && better(&routes[target.index()], &cand, graph, RouteClass::Provider)
                {
                    if routes[target.index()].is_none() {
                        schedule(&mut buckets, next_len as usize, target);
                    }
                    routes[target.index()] = Some(cand);
                }
            }
        }
        sibling_closure(graph, plane, &mut routes, RouteClass::Provider, engine, blocked);
    }

    // ---- Scenario: deterministic route leak -------------------------------------
    // The chosen leaker re-exports its peer-/provider-learned route to
    // every peer and provider — a full-table leak — and the adopters pass
    // it on downhill. Runs between the strict phases and the
    // probabilistic deviations so the seeded Phase 4/5 draws observe the
    // post-leak state exactly like any other route.
    if engine.scenario() == PolicyScenario::RouteLeak {
        if let Some(leaker) = engine.leaker(plane) {
            if Some(leaker) != blocked {
                if let Some(info) = routes[leaker.index()] {
                    if matches!(info.class, RouteClass::Peer | RouteClass::Provider) {
                        deterministic_leak(
                            graph,
                            plane,
                            &mut routes,
                            leaker,
                            info,
                            engine,
                            blocked,
                        );
                    }
                }
            }
        }
    }

    // ---- Phase 4: route leaks -------------------------------------------------
    if options.leak_probability > 0.0 {
        let mut rng = ChaCha8Rng::seed_from_u64(
            options.seed ^ (u64::from(origin.value()) << 20) ^ 0x6c65616b,
        );
        // Decide leaks against the pre-leak state so adoption cannot cycle.
        let snapshot = routes.clone();
        let mut adoptions: Vec<(NodeId, RouteInfo)> = Vec::new();
        let mut leakers: Vec<bool> = vec![false; n];
        for id in 0..n as u32 {
            let node = NodeId(id);
            let Some(info) = snapshot[node.index()] else { continue };
            if !matches!(info.class, RouteClass::Peer | RouteClass::Provider) {
                continue;
            }
            if !rng.gen_bool(options.leak_probability) {
                continue;
            }
            leakers[node.index()] = true;
            for (next, rel) in graph.neighbors_by_id(node, plane) {
                // Forbidden exports: to providers and peers.
                let forbidden = matches!(
                    rel,
                    Some(Relationship::CustomerToProvider) | Some(Relationship::PeerToPeer)
                );
                if !forbidden {
                    continue;
                }
                let cand = RouteInfo {
                    class: RouteClass::Leaked,
                    path_len: info.path_len + 1,
                    next_hop: node,
                    taint: RouteTaint { hijacked: info.taint.hijacked, leaked: true },
                };
                let adopt = match snapshot[next.index()] {
                    None => true,
                    // The receiver believes it is a customer/peer route, so
                    // it may replace a provider-learned route.
                    Some(existing) => {
                        existing.class == RouteClass::Provider && cand.path_len < existing.path_len
                    }
                };
                if adopt {
                    adoptions.push((next, cand));
                }
            }
        }
        adoptions
            .sort_by_key(|(next, cand)| (next.0, cand.path_len, graph.asn(cand.next_hop).value()));
        for (next, cand) in adoptions {
            // Never replace the route of a node that is itself leaking (its
            // exported route was computed from the snapshot).
            if leakers[next.index()] || !admit(next, &cand) {
                continue;
            }
            let replace = match routes[next.index()] {
                None => true,
                Some(existing) => {
                    existing.class == RouteClass::Provider && cand.path_len < existing.path_len
                }
            };
            if replace {
                routes[next.index()] = Some(cand);
            }
        }
    }

    // ---- Phase 5: reachability relaxation ---------------------------------------
    if options.reachability_relaxation {
        let mut heap: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
        for id in 0..n as u32 {
            if let Some(info) = routes[id as usize] {
                heap.push(Reverse(Candidate { path_len: info.path_len, tie_break: 0, node: id }));
            }
        }
        while let Some(Reverse(Candidate { path_len, node, .. })) = heap.pop() {
            let node = NodeId(node);
            let Some(current) = routes[node.index()] else { continue };
            if current.path_len < path_len {
                continue;
            }
            for (next, rel) in graph.neighbors_by_id(node, plane) {
                if rel.is_none() {
                    continue;
                }
                if routes[next.index()].is_some() {
                    continue; // relaxation only fills holes
                }
                let cand = RouteInfo {
                    class: RouteClass::Relaxed,
                    path_len: current.path_len + 1,
                    next_hop: node,
                    taint: current.taint,
                };
                if !admit(next, &cand) {
                    continue;
                }
                routes[next.index()] = Some(cand);
                heap.push(Reverse(Candidate {
                    path_len: cand.path_len,
                    tie_break: graph.asn(node).value(),
                    node: next.0,
                }));
            }
        }
    }

    routes
}

/// The [`PolicyScenario::RouteLeak`] step: the leaker exports its
/// selected peer-/provider-learned route to every peer and provider
/// (the forbidden directions — customers already received it through the
/// ordinary Phase 3 export), and the leaked routes then spread downhill
/// over provider-to-customer and sibling links. An AS adopts a leaked
/// route only where it looks attractive — it has no route at all, or the
/// leak is strictly shorter than its provider-learned route — and a node
/// that adopted never re-adopts, so the spread is monotone and
/// terminates. Deterministic: every round's candidate batch is sorted by
/// `(target, path_len, next-hop ASN)` before it is applied, and there is
/// no RNG anywhere.
fn deterministic_leak(
    graph: &AsGraph,
    plane: IpVersion,
    routes: &mut [Option<RouteInfo>],
    leaker: NodeId,
    info: RouteInfo,
    engine: &PolicyEngine,
    blocked: Option<NodeId>,
) {
    let leak_adopt = |current: &Option<RouteInfo>, cand: &RouteInfo| match current {
        None => true,
        Some(existing) => {
            existing.class == RouteClass::Provider && cand.path_len < existing.path_len
        }
    };
    let taint = RouteTaint { hijacked: info.taint.hijacked, leaked: true };
    let mut candidates: Vec<(NodeId, RouteInfo)> = graph
        .neighbors_by_id(leaker, plane)
        .filter(|(_, rel)| {
            matches!(rel, Some(Relationship::CustomerToProvider) | Some(Relationship::PeerToPeer))
        })
        .map(|(next, _)| {
            (
                next,
                RouteInfo {
                    class: RouteClass::Leaked,
                    path_len: info.path_len + 1,
                    next_hop: leaker,
                    taint,
                },
            )
        })
        .collect();
    let mut frontier: Vec<NodeId> = Vec::new();
    while !candidates.is_empty() {
        candidates
            .sort_by_key(|(next, cand)| (next.0, cand.path_len, graph.asn(cand.next_hop).value()));
        frontier.clear();
        for (next, cand) in candidates.drain(..) {
            if next == leaker || Some(next) == blocked || !engine.accepts(next, &cand) {
                continue;
            }
            if leak_adopt(&routes[next.index()], &cand) {
                // First adoption per target wins (the batch is sorted
                // best-first); an adopter joins the frontier once.
                if routes[next.index()].map(|r| r.class) != Some(RouteClass::Leaked) {
                    frontier.push(next);
                }
                routes[next.index()] = Some(cand);
            }
        }
        let mut next_candidates: Vec<(NodeId, RouteInfo)> = Vec::new();
        for &node in &frontier {
            let Some(adopted) = routes[node.index()] else { continue };
            for (next, rel) in graph.neighbors_by_id(node, plane) {
                let carries = matches!(
                    rel,
                    Some(Relationship::ProviderToCustomer) | Some(Relationship::SiblingToSibling)
                );
                if carries {
                    next_candidates.push((
                        next,
                        RouteInfo {
                            class: RouteClass::Leaked,
                            path_len: adopted.path_len + 1,
                            next_hop: node,
                            taint: adopted.taint,
                        },
                    ));
                }
            }
        }
        candidates = next_candidates;
    }
}

/// Propagate many origins on one plane, sharding the per-origin rounds
/// across up to `concurrency` worker threads (`0` = all available cores,
/// `1` = the plain sequential loop).
///
/// Each origin's round is an independent pure function of `(graph, origin,
/// plane, options)` — the leak RNG is seeded per origin — so the shards
/// never interact. Outcomes are merged back in the order of `origins`
/// (callers pass a sorted origin list), making the result byte-identical
/// to the sequential run at every worker count.
///
/// `options.frontier_concurrency` adds a second, nested level of
/// parallelism *inside* each origin's round; callers that use both should
/// bound `concurrency × frontier workers` by the core budget (the
/// scenario layer does this via `SimConfig::propagation_split`) so the
/// two levels do not oversubscribe the host.
///
/// `options.scheduling` picks how origins map onto the workers: the
/// default [`OriginScheduling::Degree`] bins them by plane out-degree
/// (LPT — an estimate of how wide the origin's climb/descent fans out),
/// [`OriginScheduling::Static`] keeps the original striping. Both merge
/// back in origin order, so the schedule is invisible in the output.
pub fn propagate_origins(
    graph: &AsGraph,
    origins: &[Asn],
    plane: IpVersion,
    options: &PropagationOptions,
    concurrency: usize,
) -> Vec<RoutingOutcome> {
    let workers = crate::shard::effective_concurrency(concurrency);
    // One engine for the whole batch: the policy assignment and the
    // attacker/leaker picks depend only on (graph, scenario, deployment),
    // never on the origin, and sharing the read-only engine across the
    // workers keeps the per-origin rounds pure.
    let engine = PolicyEngine::build(graph, options.scenario, options.deployment);
    match options.scheduling {
        OriginScheduling::Degree => crate::shard::shard_map_lpt(
            origins,
            workers,
            |&origin| graph.degree(origin, plane) as u64,
            |&origin| propagate_origin_with(graph, origin, plane, options, &engine),
        ),
        OriginScheduling::Static => crate::shard::shard_map(origins, workers, |&origin| {
            propagate_origin_with(graph, origin, plane, options, &engine)
        }),
    }
}

/// Is `candidate` better than the current route, given that the candidate
/// belongs to propagation phase `phase`? Routes installed by earlier
/// (more-preferred) phases are never displaced; within the same class the
/// shorter path wins, then the lower next-hop ASN.
fn better(
    current: &Option<RouteInfo>,
    candidate: &RouteInfo,
    graph: &AsGraph,
    phase: RouteClass,
) -> bool {
    match current {
        None => true,
        Some(existing) => {
            if existing.class < phase {
                return false;
            }
            if existing.class > phase {
                return true;
            }
            (candidate.path_len, graph.asn(candidate.next_hop).value())
                < (existing.path_len, graph.asn(existing.next_hop).value())
        }
    }
}

/// Propagate routes of the given class across sibling links (transparent
/// forwarding within an organisation), observing the per-AS policies and
/// the walk's blocked node like every other adoption point.
fn sibling_closure(
    graph: &AsGraph,
    plane: IpVersion,
    routes: &mut [Option<RouteInfo>],
    class: RouteClass,
    engine: &PolicyEngine,
    blocked: Option<NodeId>,
) {
    let mut queue: Vec<NodeId> = (0..routes.len() as u32)
        .map(NodeId)
        .filter(|id| routes[id.index()].map(|r| r.class) == Some(class))
        .collect();
    while let Some(node) = queue.pop() {
        let Some(info) = routes[node.index()] else { continue };
        for (next, rel) in graph.neighbors_by_id(node, plane) {
            if rel != Some(Relationship::SiblingToSibling) {
                continue;
            }
            let cand =
                RouteInfo { class, path_len: info.path_len + 1, next_hop: node, taint: info.taint };
            if Some(next) == blocked || !engine.accepts(next, &cand) {
                continue;
            }
            if better(&routes[next.index()], &cand, graph, class) {
                routes[next.index()] = Some(cand);
                queue.push(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::valley::classify_path;
    use topogen::fixtures::two_plane_fixture;

    fn fixture_graph() -> AsGraph {
        two_plane_fixture().graph
    }

    #[test]
    fn origin_not_on_plane_routes_nothing() {
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V4, Relationship::ProviderToCustomer);
        let outcome = propagate_origin(&g, Asn(2), IpVersion::V6, &PropagationOptions::default());
        assert_eq!(outcome.routed_count(), 0);
        assert_eq!(outcome.route(&g, Asn(2)), None);
        // Unknown origin behaves the same.
        let outcome = propagate_origin(&g, Asn(99), IpVersion::V4, &PropagationOptions::default());
        assert_eq!(outcome.routed_count(), 0);
    }

    #[test]
    fn every_as_gets_a_route_in_a_connected_hierarchy() {
        let g = fixture_graph();
        let outcome = propagate_origin(&g, Asn(50), IpVersion::V4, &PropagationOptions::default());
        assert_eq!(outcome.routed_count(), g.node_count());
        // The origin's provider learned it from a customer.
        assert_eq!(outcome.route(&g, Asn(30)).unwrap().class, RouteClass::Customer);
        // The tier-1 above learned from its customer chain.
        assert_eq!(outcome.route(&g, Asn(10)).unwrap().class, RouteClass::Customer);
        // The other tier-1 learned it over the peering (v4 plane).
        assert_eq!(outcome.route(&g, Asn(20)).unwrap().class, RouteClass::Peer);
        // A stub in the other branch learns it from its provider.
        assert_eq!(outcome.route(&g, Asn(53)).unwrap().class, RouteClass::Provider);
    }

    #[test]
    fn paths_are_valley_free_under_strict_policies() {
        let g = fixture_graph();
        for origin in [50u32, 53, 30, 10] {
            let outcome =
                propagate_origin(&g, Asn(origin), IpVersion::V4, &PropagationOptions::default());
            for asn in g.asns() {
                if let Some(path) = outcome.path(&g, asn) {
                    if path.len() > 1 {
                        assert!(
                            classify_path(&g, &path, IpVersion::V4).is_valley_free(),
                            "path {path:?} from {asn} to {origin} is not valley-free"
                        );
                        assert_eq!(path.last(), Some(&Asn(origin)));
                        assert_eq!(path.first(), Some(&asn));
                    }
                    assert_eq!(outcome.path_is_irregular(&g, asn), Some(false));
                }
            }
        }
    }

    #[test]
    fn customer_routes_beat_shorter_peer_routes() {
        // 1 --p2p-- 2, 1 --p2c--> 3 --p2c--> 2's prefix? Build explicitly:
        // origin 4; 2 is 4's provider; 1 peers with 4 and is provider of 2.
        // From 1: customer route via 2 (len 2) vs peer route via 4 (len 1).
        // BGP prefers the customer route despite being longer.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(4), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(1), Asn(4), Relationship::PeerToPeer);
        let outcome = propagate_origin(&g, Asn(4), IpVersion::V4, &PropagationOptions::default());
        let route = outcome.route(&g, Asn(1)).unwrap();
        assert_eq!(route.class, RouteClass::Customer);
        assert_eq!(outcome.path(&g, Asn(1)).unwrap(), vec![Asn(1), Asn(2), Asn(4)]);
    }

    #[test]
    fn shorter_path_wins_within_a_class() {
        // Origin 5 has two providers (2 and 3); 1 is provider of both.
        // 1's customer routes via 2 and 3 are both length 2 -> tie-break by
        // lower next-hop ASN (2).
        let mut g = AsGraph::new();
        g.annotate_both(Asn(2), Asn(5), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(3), Asn(5), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(1), Asn(3), Relationship::ProviderToCustomer);
        let outcome = propagate_origin(&g, Asn(5), IpVersion::V4, &PropagationOptions::default());
        assert_eq!(outcome.path(&g, Asn(1)).unwrap(), vec![Asn(1), Asn(2), Asn(5)]);
    }

    #[test]
    fn peer_only_second_hop_is_not_reachable_without_relaxation() {
        // 1 --p2p-- 2 --p2p-- 3: 3's prefix reaches 2 but must not reach 1.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::PeerToPeer);
        g.annotate_both(Asn(2), Asn(3), Relationship::PeerToPeer);
        let strict = propagate_origin(&g, Asn(3), IpVersion::V4, &PropagationOptions::default());
        assert_eq!(strict.route(&g, Asn(2)).unwrap().class, RouteClass::Peer);
        assert_eq!(strict.route(&g, Asn(1)), None);

        // With the reachability relaxation the hole is filled and marked.
        let relaxed = propagate_origin(
            &g,
            Asn(3),
            IpVersion::V4,
            &PropagationOptions { reachability_relaxation: true, ..Default::default() },
        );
        let route = relaxed.route(&g, Asn(1)).unwrap();
        assert_eq!(route.class, RouteClass::Relaxed);
        assert_eq!(relaxed.path_is_irregular(&g, Asn(1)), Some(true));
        // And the resulting path is indeed a valley.
        let path = relaxed.path(&g, Asn(1)).unwrap();
        assert!(classify_path(&g, &path, IpVersion::V4).is_valley());
    }

    #[test]
    fn relaxation_fills_partitioned_v6_plane() {
        let truth = two_plane_fixture();
        // AS52's prefix on v6: AS20's side is reachable only by descending
        // the hybrid link; fine. But check a v6-only peer path: from 41,
        // routes to 52 must exist strictly too (41 -> 20 -> 10 -> 40 -> 52
        // is c2p, peer?? 20-10 is p2c for 20 (20 is customer on v6) so
        // 41 climbs to 20, climbs to 10? no: 10->20 is p2c so 20->10 is c2p;
        // 41->20 c2p, 20->10 c2p, 10->40 p2c, 40->52 p2c: valley-free.
        let strict =
            propagate_origin(&truth.graph, Asn(52), IpVersion::V6, &PropagationOptions::default());
        assert!(strict.route(&truth.graph, Asn(41)).is_some());
        assert_eq!(strict.routed_count(), truth.graph.node_count());
    }

    #[test]
    fn leaks_create_valley_paths_deterministically() {
        // 1 and 2 are tier-1 peers; 3 buys from both; 4 buys from 1 only.
        // Origin = 4. Without leaks AS3 reaches 4 via provider 1 (3,1,4) and
        // AS2 via peer 1. With a forced leak (probability 1.0) AS3 leaks its
        // provider route to its other provider 2 — but 2 already has a peer
        // route, so adoption only happens where allowed.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::PeerToPeer);
        g.annotate_both(Asn(1), Asn(3), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(3), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(1), Asn(4), Relationship::ProviderToCustomer);
        // 5 buys from 3: it will receive whatever 3 selected.
        g.annotate_both(Asn(3), Asn(5), Relationship::ProviderToCustomer);

        let leaky = PropagationOptions { leak_probability: 1.0, seed: 1, ..Default::default() };
        // The frontier knob must not perturb the seeded deviations either.
        assert_eq!(
            propagate_origin(&g, Asn(4), IpVersion::V4, &leaky.with_frontier(4)),
            propagate_origin(&g, Asn(4), IpVersion::V4, &leaky),
        );
        let outcome = propagate_origin(&g, Asn(4), IpVersion::V4, &leaky);
        // Every AS still has a route and paths still terminate at the origin.
        assert_eq!(outcome.routed_count(), g.node_count());
        for asn in g.asns() {
            let path = outcome.path(&g, asn).unwrap();
            assert_eq!(path.last(), Some(&Asn(4)));
        }
        // The same propagation without leaks has no irregular paths.
        let clean = propagate_origin(&g, Asn(4), IpVersion::V4, &PropagationOptions::default());
        for asn in g.asns() {
            assert_eq!(clean.path_is_irregular(&g, asn), Some(false));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let g = fixture_graph();
        let opts = PropagationOptions {
            reachability_relaxation: true,
            leak_probability: 0.5,
            seed: 99,
            ..Default::default()
        };
        let a = propagate_origin(&g, Asn(50), IpVersion::V6, &opts);
        let b = propagate_origin(&g, Asn(50), IpVersion::V6, &opts);
        for asn in g.asns() {
            assert_eq!(a.path(&g, asn), b.path(&g, asn));
        }
    }

    #[test]
    fn sharded_propagation_matches_sequential_at_every_worker_count() {
        let g = fixture_graph();
        let mut origins: Vec<Asn> = g.asns().collect();
        origins.sort();
        // Exercise both the strict policy path and the seeded deviations.
        let variants = [
            PropagationOptions::default(),
            PropagationOptions {
                reachability_relaxation: true,
                leak_probability: 0.5,
                seed: 7,
                ..Default::default()
            },
        ];
        for plane in IpVersion::BOTH {
            for options in &variants {
                let sequential = propagate_origins(&g, &origins, plane, options, 1);
                for workers in [0usize, 2, 3, 8] {
                    let parallel = propagate_origins(&g, &origins, plane, options, workers);
                    assert_eq!(parallel, sequential, "plane {plane:?}, workers {workers}");
                }
            }
        }
    }

    #[test]
    fn frontier_parallel_propagation_matches_sequential_at_every_worker_count() {
        let g = fixture_graph();
        let mut origins: Vec<Asn> = g.asns().collect();
        origins.sort();
        let variants = [
            PropagationOptions::default(),
            PropagationOptions {
                reachability_relaxation: true,
                leak_probability: 0.5,
                seed: 7,
                ..Default::default()
            },
        ];
        for plane in IpVersion::BOTH {
            for options in &variants {
                let sequential = propagate_origins(&g, &origins, plane, options, 1);
                // Nested combinations: frontier workers × origin workers.
                for frontier in [0usize, 2, 3, 8] {
                    for workers in [1usize, 2] {
                        let parallel = propagate_origins(
                            &g,
                            &origins,
                            plane,
                            &options.with_frontier(frontier),
                            workers,
                        );
                        assert_eq!(
                            parallel, sequential,
                            "plane {plane:?}, frontier {frontier}, workers {workers}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wide_frontiers_stripe_across_workers_and_match_sequential() {
        // Levels wider than MIN_FRONTIER_PER_WORKER × workers, so the
        // scans genuinely run on multiple threads (the fixture graphs are
        // too small to clear the sequential cutoff): the origin has WIDE
        // providers (Phase 1 level 1), each with a customer of its own
        // (Phase 3), a peering ring across the providers (Phase 2), and
        // ties everywhere — every provider reaches the origin at the same
        // distance, so the deterministic next-hop ASN tie-break is what
        // keeps the merged routes identical at every worker count.
        const WIDE: u32 = 4 * MIN_FRONTIER_PER_WORKER as u32 + 17;
        let mut g = AsGraph::new();
        for i in 0..WIDE {
            let provider = Asn(2 + i);
            g.annotate_both(provider, Asn(1), Relationship::ProviderToCustomer);
            g.annotate_both(provider, Asn(10_000 + i), Relationship::ProviderToCustomer);
            g.annotate_both(provider, Asn(2 + ((i + 1) % WIDE)), Relationship::PeerToPeer);
        }
        assert_eq!(level_workers(4, WIDE as usize), 4, "the wide level must actually stripe");
        for options in [
            PropagationOptions::default(),
            PropagationOptions {
                reachability_relaxation: true,
                leak_probability: 0.3,
                seed: 11,
                ..Default::default()
            },
        ] {
            let sequential = propagate_origin(&g, Asn(1), IpVersion::V4, &options);
            for frontier in [0usize, 2, 4, 7] {
                let parallel =
                    propagate_origin(&g, Asn(1), IpVersion::V4, &options.with_frontier(frontier));
                assert_eq!(parallel, sequential, "frontier={frontier}");
            }
        }
    }

    #[test]
    fn level_workers_caps_by_frontier_size() {
        assert_eq!(level_workers(8, 0), 1);
        assert_eq!(level_workers(8, MIN_FRONTIER_PER_WORKER - 1), 1);
        assert_eq!(level_workers(8, 2 * MIN_FRONTIER_PER_WORKER), 2);
        assert_eq!(level_workers(2, 100 * MIN_FRONTIER_PER_WORKER), 2);
        assert_eq!(level_workers(1, 100 * MIN_FRONTIER_PER_WORKER), 1);
    }

    #[test]
    fn same_route_model_ignores_only_the_execution_knobs() {
        let base = PropagationOptions { seed: 9, ..Default::default() };
        assert!(base.same_route_model(&base.with_frontier(8)));
        assert!(base.same_route_model(&base.with_scheduling(OriginScheduling::Static)));
        assert!(!base.same_route_model(&PropagationOptions { seed: 10, ..base }));
        assert!(
            !base.same_route_model(&PropagationOptions { reachability_relaxation: true, ..base })
        );
        assert!(!base.same_route_model(&PropagationOptions { leak_probability: 0.5, ..base }));
        // The adversarial knobs are route-model fields, not execution
        // knobs: changing either must invalidate a cached propagation.
        assert!(!base.same_route_model(&base.with_scenario(PolicyScenario::RouteLeak)));
        assert!(!base
            .same_route_model(&base.with_deployment(PolicyDeployment { fraction: 0.5, seed: 0 })));
    }

    #[test]
    fn both_schedules_match_sequential_at_every_worker_count() {
        // The scheduling knob is the third execution dimension after
        // origin and frontier workers: {Degree, Static} × worker counts
        // must all reproduce the sequential outcome sequence exactly.
        let g = fixture_graph();
        let mut origins: Vec<Asn> = g.asns().collect();
        origins.sort();
        let variants = [
            PropagationOptions::default(),
            PropagationOptions {
                reachability_relaxation: true,
                leak_probability: 0.5,
                seed: 7,
                ..Default::default()
            },
        ];
        for plane in IpVersion::BOTH {
            for options in &variants {
                let sequential = propagate_origins(&g, &origins, plane, options, 1);
                for scheduling in [OriginScheduling::Degree, OriginScheduling::Static] {
                    let options = options.with_scheduling(scheduling);
                    for workers in [1usize, 2, 3, 8] {
                        let parallel = propagate_origins(&g, &origins, plane, &options, workers);
                        assert_eq!(
                            parallel, sequential,
                            "plane {plane:?}, scheduling {scheduling:?}, workers {workers}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_propagation_handles_empty_origin_sets() {
        let g = fixture_graph();
        assert!(
            propagate_origins(&g, &[], IpVersion::V4, &PropagationOptions::default(), 4).is_empty()
        );
    }

    #[test]
    fn sibling_links_carry_routes_transparently() {
        // origin 3; 2 is 3's provider; 1 is 2's sibling; 0 buys from 1.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(2), Asn(3), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(1), Asn(2), Relationship::SiblingToSibling);
        g.annotate_both(Asn(1), Asn(9), Relationship::ProviderToCustomer);
        let outcome = propagate_origin(&g, Asn(3), IpVersion::V4, &PropagationOptions::default());
        assert_eq!(outcome.route(&g, Asn(1)).unwrap().class, RouteClass::Customer);
        assert_eq!(outcome.path(&g, Asn(9)).unwrap(), vec![Asn(9), Asn(1), Asn(2), Asn(3)]);
        assert_eq!(outcome.route(&g, Asn(9)).unwrap().class, RouteClass::Provider);
    }

    // ---- adversarial scenarios -------------------------------------------

    /// Options pinned to `scenario` at the given deployment fraction
    /// (deployment seed fixed so tests are reproducible).
    fn scenario_options(scenario: PolicyScenario, fraction: f64) -> PropagationOptions {
        PropagationOptions::default()
            .with_scenario(scenario)
            .with_deployment(PolicyDeployment { fraction, seed: 0xadd5 })
    }

    #[test]
    fn route_leak_scenario_injects_tainted_routes_deterministically() {
        // Origin 1 sells transit to nobody: 1 --c2p--> 2, 2 --p2p-- 3,
        // 3 --c2p--> 4. Under Gao-Rexford, 3 learns 1's prefix over the
        // peering but must not re-export it upward, so 4 stays unrouted.
        // The leaker (3: the highest-degree AS that has a provider)
        // re-exports the peer route to 4 — a textbook route leak.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(2), Asn(1), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(3), Relationship::PeerToPeer);
        g.annotate_both(Asn(4), Asn(3), Relationship::ProviderToCustomer);
        let engine =
            PolicyEngine::build(&g, PolicyScenario::RouteLeak, PolicyDeployment::default());
        assert_eq!(engine.leaker(IpVersion::V4), g.node(Asn(3)), "3 is the expected leaker");

        let classic = propagate_origin(&g, Asn(1), IpVersion::V4, &PropagationOptions::default());
        assert_eq!(classic.route(&g, Asn(4)), None, "valley-free export keeps 4 unrouted");

        let options = scenario_options(PolicyScenario::RouteLeak, 0.0);
        let leaked = propagate_origin(&g, Asn(1), IpVersion::V4, &options);
        let route_at_4 = leaked.route(&g, Asn(4)).expect("the leak must reach 4");
        assert_eq!(route_at_4.class, RouteClass::Leaked);
        assert!(route_at_4.taint.leaked, "the leaked route carries its taint");
        // No RNG anywhere in the deterministic leak step: the outcome is
        // identical run to run.
        assert_eq!(leaked, propagate_origin(&g, Asn(1), IpVersion::V4, &options));

        // Full ASPA-lite deployment filters the leaked export back out.
        let defended = propagate_origin(
            &g,
            Asn(1),
            IpVersion::V4,
            &scenario_options(PolicyScenario::RouteLeak, 1.0),
        );
        assert_eq!(defended.route(&g, Asn(4)), None, "ASPA-lite at 100% drops the leak");
    }

    #[test]
    fn prefix_hijack_diverts_routes_and_rov_filters_them() {
        let g = fixture_graph();
        let engine =
            PolicyEngine::build(&g, PolicyScenario::PrefixHijack, PolicyDeployment::default());
        let attacker = engine.attacker(IpVersion::V4).expect("fixture has a highest-degree node");
        // Pick a victim that is not the attacker.
        let victim = g.asns().find(|&a| g.node(a) != Some(attacker)).unwrap();
        let options = scenario_options(PolicyScenario::PrefixHijack, 0.0);
        let outcome = propagate_origin(&g, victim, IpVersion::V4, &options);
        // The victim always keeps its own clean origin route; the
        // attacker originates the hijacked copy.
        let victim_route = outcome.route(&g, victim).unwrap();
        assert_eq!(victim_route.class, RouteClass::Origin);
        assert!(!victim_route.taint.hijacked);
        let attacker_route = outcome.routes[attacker.index()].unwrap();
        assert_eq!(attacker_route.class, RouteClass::Origin);
        assert!(attacker_route.taint.hijacked);
        // Undefended, the hijack captures part of the topology.
        let hijacked_count = outcome.routes.iter().flatten().filter(|r| r.taint.hijacked).count();
        assert!(hijacked_count > 1, "the hijack must spread past the attacker");
        // Full ROV deployment confines the hijack to the attacker itself.
        let defended = propagate_origin(
            &g,
            victim,
            IpVersion::V4,
            &scenario_options(PolicyScenario::PrefixHijack, 1.0),
        );
        let defended_hijacked: Vec<usize> = defended
            .routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.filter(|r| r.taint.hijacked).map(|_| i))
            .collect();
        assert_eq!(defended_hijacked, vec![attacker.index()], "ROV at 100% confines the hijack");
    }

    #[test]
    fn subprefix_hijack_wins_everywhere_it_reaches_except_the_victim() {
        let g = fixture_graph();
        let engine =
            PolicyEngine::build(&g, PolicyScenario::SubprefixHijack, PolicyDeployment::default());
        let attacker = engine.attacker(IpVersion::V4).expect("fixture has a highest-degree node");
        let victim = g.asns().find(|&a| g.node(a) != Some(attacker)).unwrap();
        let options = scenario_options(PolicyScenario::SubprefixHijack, 0.0);
        let outcome = propagate_origin(&g, victim, IpVersion::V4, &options);
        // Longest-prefix match: the victim keeps its own clean route no
        // matter what; everything the attacker's (victim-blocked)
        // announcement reaches is captured.
        let victim_node = g.node(victim).unwrap();
        assert!(!outcome.routes[victim_node.index()].unwrap().taint.hijacked);
        let hijacked: Vec<usize> = outcome
            .routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.filter(|r| r.taint.hijacked).map(|_| i))
            .collect();
        assert!(hijacked.len() > 1, "the more-specific prefix must capture real estate");
        // Every captured node is genuinely attacker-reachable (the
        // blocked walk covers at most the unblocked reach) ...
        let reference = propagate_origin(&g, g.asn(attacker), IpVersion::V4, &options);
        for &i in &hijacked {
            assert!(reference.routes[i].is_some(), "node {i} hijacked but attacker-unreachable");
        }
        // ... and nobody loses connectivity outright: the merge falls
        // back to the victim's clean walk wherever the attacker is
        // absent, so the classic routed set survives.
        let classic = propagate_origin(&g, victim, IpVersion::V4, &PropagationOptions::default());
        for (i, route) in classic.routes.iter().enumerate() {
            if route.is_some() {
                assert!(outcome.routes[i].is_some(), "node {i} lost its route to the hijack");
            }
        }
    }

    #[test]
    fn scenario_outcomes_are_worker_count_invisible() {
        let g = fixture_graph();
        let mut origins: Vec<Asn> = g.asns().collect();
        origins.sort();
        for scenario in [
            PolicyScenario::RouteLeak,
            PolicyScenario::PrefixHijack,
            PolicyScenario::SubprefixHijack,
        ] {
            for fraction in [0.0, 0.5, 1.0] {
                let options = scenario_options(scenario, fraction).with_frontier(2);
                let sequential = propagate_origins(&g, &origins, IpVersion::V6, &options, 1);
                for workers in [2usize, 8] {
                    let parallel =
                        propagate_origins(&g, &origins, IpVersion::V6, &options, workers);
                    assert_eq!(
                        parallel, sequential,
                        "scenario={scenario:?} fraction={fraction} workers={workers} diverged"
                    );
                }
            }
        }
    }
}
