//! Hybrid IPv4/IPv6 relationship detection and visibility analysis.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use bgp_types::{Asn, IpVersion, RelationshipPair};
use topogen::HybridClass;

use crate::communities::CommunityInference;
use crate::extract::ExtractedData;

/// One detected hybrid link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridFinding {
    /// First endpoint (lower ASN).
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// The inferred per-plane relationships, oriented `a → b`.
    pub relationships: RelationshipPair,
    /// The hybrid class.
    pub class: HybridClass,
    /// How many distinct IPv6 paths traverse this link.
    pub v6_path_visibility: usize,
}

/// The result of the hybrid analysis (the paper's Section 3, observations
/// 1 and 2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HybridReport {
    /// Dual-stack links whose relationship is known on both planes.
    pub dual_stack_classified: usize,
    /// The detected hybrid links, sorted by descending IPv6 visibility.
    pub findings: Vec<HybridFinding>,
    /// Hybrids that are p2p on IPv4 and transit on IPv6.
    pub peering_v4_transit_v6: usize,
    /// Hybrids that are transit on IPv4 and p2p on IPv6.
    pub transit_v4_peering_v6: usize,
    /// Hybrids with opposite transit directions.
    pub opposite_transit: usize,
    /// Hybrids involving a sibling relationship on one plane (not part of
    /// the paper's taxonomy, reported separately).
    pub sibling_change: usize,
    /// Number of distinct IPv6 paths in the dataset.
    pub ipv6_paths: usize,
    /// IPv6 paths that traverse at least one hybrid link.
    pub ipv6_paths_with_hybrid: usize,
}

impl HybridReport {
    /// Fraction of classified dual-stack links that are hybrid.
    pub fn hybrid_fraction(&self) -> f64 {
        if self.dual_stack_classified == 0 {
            0.0
        } else {
            self.findings.len() as f64 / self.dual_stack_classified as f64
        }
    }

    /// Fraction of IPv6 paths that traverse at least one hybrid link.
    pub fn path_visibility_fraction(&self) -> f64 {
        if self.ipv6_paths == 0 {
            0.0
        } else {
            self.ipv6_paths_with_hybrid as f64 / self.ipv6_paths as f64
        }
    }

    /// Share of hybrids that are p2p on IPv4 / transit on IPv6.
    pub fn peering_v4_transit_v6_share(&self) -> f64 {
        if self.findings.is_empty() {
            0.0
        } else {
            self.peering_v4_transit_v6 as f64 / self.findings.len() as f64
        }
    }

    /// The `k` most visible hybrid links (by IPv6 path count).
    pub fn top_by_visibility(&self, k: usize) -> &[HybridFinding] {
        &self.findings[..k.min(self.findings.len())]
    }
}

/// Detect hybrid links by comparing the per-plane inferred relationships of
/// every dual-stack link observed in the data.
pub fn detect_hybrids(data: &ExtractedData, inference: &CommunityInference) -> HybridReport {
    let mut report = HybridReport { ipv6_paths: data.paths_v6.len(), ..Default::default() };

    let mut hybrid_links: HashSet<(Asn, Asn)> = HashSet::new();
    for edge in data.graph.dual_stack_edges() {
        let (a, b) = if edge.a <= edge.b { (edge.a, edge.b) } else { (edge.b, edge.a) };
        let Some(v4) = inference.relationship(a, b, IpVersion::V4) else { continue };
        let Some(v6) = inference.relationship(a, b, IpVersion::V6) else { continue };
        report.dual_stack_classified += 1;
        let pair = RelationshipPair::new(v4, v6);
        if !pair.is_hybrid() {
            continue;
        }
        let class = match HybridClass::classify(pair) {
            Some(c) => c,
            None => {
                // A sibling on one plane only: outside the paper's taxonomy.
                report.sibling_change += 1;
                continue;
            }
        };
        match class {
            HybridClass::PeeringV4TransitV6 => report.peering_v4_transit_v6 += 1,
            HybridClass::TransitV4PeeringV6 => report.transit_v4_peering_v6 += 1,
            HybridClass::OppositeTransit => report.opposite_transit += 1,
        }
        hybrid_links.insert((a, b));
        report.findings.push(HybridFinding {
            a,
            b,
            relationships: pair,
            class,
            v6_path_visibility: data.v6_link_visibility(a, b),
        });
    }

    // Visibility: IPv6 paths that cross at least one hybrid link.
    report.ipv6_paths_with_hybrid = data
        .paths_v6
        .iter()
        .filter(|p| {
            p.path.windows(2).any(|w| {
                let key = if w[0] <= w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
                hybrid_links.contains(&key)
            })
        })
        .count();

    report.findings.sort_by(|x, y| {
        y.v6_path_visibility.cmp(&x.v6_path_visibility).then(x.a.cmp(&y.a)).then(x.b.cmp(&y.b))
    });
    report
}

/// Convenience used by tests and ablations: detect hybrids using the
/// *ground-truth* relationships of an annotated graph instead of an
/// inference (what a perfect-coverage measurement would see).
pub fn detect_hybrids_from_graph(
    data: &ExtractedData,
    annotated: &asgraph::AsGraph,
) -> HybridReport {
    let mut inference = CommunityInference::default();
    for edge in annotated.edges() {
        for plane in IpVersion::BOTH {
            if let Some(rel) = edge.rel(plane) {
                inference.add_vote(edge.a, edge.b, plane, rel, 1);
            }
        }
    }
    inference.resolve_all();
    detect_hybrids(data, &inference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use bgp_types::{
        CollectorId, PathAttributes, PeerId, Prefix, Relationship, RibEntry, RibSnapshot,
    };
    use std::net::IpAddr;

    fn entry(prefix: &str, path: &str) -> RibEntry {
        let addr: IpAddr = if prefix.contains(':') {
            "2001:db8::1".parse().unwrap()
        } else {
            "192.0.2.1".parse().unwrap()
        };
        RibEntry::new(
            PeerId::new(Asn(10), addr),
            prefix.parse::<Prefix>().unwrap(),
            PathAttributes::with_path(path.parse().unwrap()),
        )
    }

    /// Observed data where links 10-20 and 20-30 are dual stack, plus a
    /// v6-only 10-40 link.
    fn observed() -> ExtractedData {
        let mut snap = RibSnapshot::new(CollectorId::new("t"), 1);
        for e in [
            entry("2001:db8:1::/48", "10 20 30"),
            entry("2001:db8:2::/48", "10 40"),
            entry("2001:db8:3::/48", "10 20"),
            entry("198.51.100.0/24", "10 20 30"),
        ] {
            snap.push(e);
        }
        extract(&snap)
    }

    fn inference_with(pairs: &[(u32, u32, Relationship, Relationship)]) -> CommunityInference {
        let mut inf = CommunityInference::default();
        for &(a, b, v4, v6) in pairs {
            inf.add_vote(Asn(a), Asn(b), IpVersion::V4, v4, 1);
            inf.add_vote(Asn(a), Asn(b), IpVersion::V6, v6, 1);
        }
        inf.resolve_all();
        inf
    }

    #[test]
    fn detects_and_classifies_hybrid_links() {
        let data = observed();
        let inf = inference_with(&[
            (10, 20, Relationship::PeerToPeer, Relationship::ProviderToCustomer),
            (20, 30, Relationship::ProviderToCustomer, Relationship::ProviderToCustomer),
        ]);
        let report = detect_hybrids(&data, &inf);
        assert_eq!(report.dual_stack_classified, 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.peering_v4_transit_v6, 1);
        assert_eq!(report.transit_v4_peering_v6, 0);
        assert_eq!(report.opposite_transit, 0);
        let f = report.findings[0];
        assert_eq!((f.a, f.b), (Asn(10), Asn(20)));
        assert_eq!(f.class, HybridClass::PeeringV4TransitV6);
        assert_eq!(f.v6_path_visibility, 2);
        assert!((report.hybrid_fraction() - 0.5).abs() < 1e-9);
        // 2 of 3 distinct v6 paths cross 10-20.
        assert_eq!(report.ipv6_paths, 3);
        assert_eq!(report.ipv6_paths_with_hybrid, 2);
        assert!((report.path_visibility_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((report.peering_v4_transit_v6_share() - 1.0).abs() < 1e-9);
        assert_eq!(report.top_by_visibility(5).len(), 1);
        assert_eq!(report.top_by_visibility(0).len(), 0);
    }

    #[test]
    fn links_with_missing_plane_inference_are_not_counted() {
        let data = observed();
        // Only the v6 side of 10-20 is known.
        let mut inf = CommunityInference::default();
        inf.add_vote(Asn(10), Asn(20), IpVersion::V6, Relationship::ProviderToCustomer, 1);
        inf.resolve_all();
        let report = detect_hybrids(&data, &inf);
        assert_eq!(report.dual_stack_classified, 0);
        assert!(report.findings.is_empty());
        assert_eq!(report.hybrid_fraction(), 0.0);
        assert_eq!(report.path_visibility_fraction(), 0.0);
    }

    #[test]
    fn v6_only_links_are_never_hybrid_candidates() {
        let data = observed();
        let inf =
            inference_with(&[(10, 40, Relationship::PeerToPeer, Relationship::ProviderToCustomer)]);
        let report = detect_hybrids(&data, &inf);
        assert!(report.findings.is_empty(), "10-40 is not dual stack");
    }

    #[test]
    fn sibling_changes_are_reported_separately() {
        let data = observed();
        let inf = inference_with(&[(
            10,
            20,
            Relationship::SiblingToSibling,
            Relationship::ProviderToCustomer,
        )]);
        let report = detect_hybrids(&data, &inf);
        assert_eq!(report.sibling_change, 1);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn opposite_transit_and_ordering_by_visibility() {
        let data = observed();
        let inf = inference_with(&[
            (10, 20, Relationship::ProviderToCustomer, Relationship::CustomerToProvider),
            (20, 30, Relationship::ProviderToCustomer, Relationship::PeerToPeer),
        ]);
        let report = detect_hybrids(&data, &inf);
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.opposite_transit, 1);
        assert_eq!(report.transit_v4_peering_v6, 1);
        // 10-20 is more visible (2 paths) than 20-30 (1 path).
        assert_eq!((report.findings[0].a, report.findings[0].b), (Asn(10), Asn(20)));
        assert!(report.findings[0].v6_path_visibility >= report.findings[1].v6_path_visibility);
    }

    #[test]
    fn ground_truth_detection_matches_injected_hybrids() {
        use routesim::{Scenario, SimConfig};
        use topogen::TopologyConfig;
        let scenario = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        let data = extract(&scenario.merged_snapshot());
        let report = detect_hybrids_from_graph(&data, &scenario.truth.graph);
        // Every finding must correspond to an injected hybrid link.
        let injected: HashSet<(Asn, Asn)> = scenario
            .truth
            .hybrid_links
            .iter()
            .map(|l| if l.a <= l.b { (l.a, l.b) } else { (l.b, l.a) })
            .collect();
        for f in &report.findings {
            assert!(injected.contains(&(f.a, f.b)), "{}-{} not injected", f.a, f.b);
        }
        // And the class counts add up.
        assert_eq!(
            report.findings.len(),
            report.peering_v4_transit_v6 + report.transit_v4_peering_v6 + report.opposite_transit
        );
    }
}
