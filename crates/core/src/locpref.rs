//! The LocPrf "Rosetta Stone": extending relationship coverage using
//! community-validated Local Preference values.
//!
//! Full feeders expose the LocPrf they assigned to each route. LocPrf is
//! only meaningful per AS (every operator chooses its own values), so the
//! paper first learns, for each feeder, which LocPrf value corresponds to
//! which relationship class — *using only routes whose first-hop
//! relationship is already known from communities and which carry no
//! traffic-engineering community* — and then applies the learned mapping
//! to that feeder's remaining routes.

use std::collections::{HashMap, HashSet};

use bgp_types::{Asn, IpVersion, Relationship, RibSnapshot};
use irr::CommunityDictionary;

use crate::communities::CommunityInference;

/// The learned per-feeder LocPrf → relationship mappings.
#[derive(Debug, Clone, Default)]
pub struct LocPrfRosetta {
    /// (feeder, plane, locpref) → relationship, kept only when unambiguous.
    mappings: HashMap<(Asn, IpVersion, u32), Relationship>,
    /// (feeder, plane, locpref) combinations discarded as ambiguous.
    pub ambiguous: usize,
    /// Routes skipped because they carried a LocPrf-affecting TE community.
    pub te_filtered_routes: usize,
    /// Number of new link relationships contributed by the mapping.
    pub links_added: usize,
}

impl LocPrfRosetta {
    /// Learn the mappings from routes whose first-hop relationship is
    /// already known via communities.
    pub fn learn(
        snapshot: &RibSnapshot,
        dictionary: &CommunityDictionary,
        inference: &CommunityInference,
    ) -> Self {
        let mut rosetta = LocPrfRosetta::default();
        // (feeder, plane, locpref) -> set of relationships seen
        let mut observations: HashMap<(Asn, IpVersion, u32), HashSet<Relationship>> =
            HashMap::new();
        for entry in &snapshot.entries {
            if entry.has_bogus_path() {
                continue;
            }
            let Some(locpref) = entry.attrs.local_pref else { continue };
            if dictionary.has_locpref_tainting_community(&entry.attrs.communities) {
                rosetta.te_filtered_routes += 1;
                continue;
            }
            let path: Vec<Asn> = entry.attrs.as_path.deprepended().asns().collect();
            if path.len() < 2 {
                continue;
            }
            let feeder = path[0];
            let first_hop = path[1];
            let plane = entry.plane();
            // Only community-validated first hops teach us anything.
            let Some(rel) = inference.relationship(feeder, first_hop, plane) else { continue };
            observations.entry((feeder, plane, locpref)).or_default().insert(rel);
        }
        for (key, rels) in observations {
            if rels.len() == 1 {
                rosetta.mappings.insert(key, rels.into_iter().next().unwrap());
            } else {
                rosetta.ambiguous += 1;
            }
        }
        rosetta
    }

    /// Number of learned (feeder, plane, locpref) mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// The relationship a feeder's LocPrf value implies, if learned.
    pub fn lookup(&self, feeder: Asn, plane: IpVersion, locpref: u32) -> Option<Relationship> {
        self.mappings.get(&(feeder, plane, locpref)).copied()
    }

    /// Apply the learned mappings to the snapshot: for every route from a
    /// feeder with a learned LocPrf value whose first-hop link has no
    /// community-derived relationship, add the implied relationship to the
    /// inference. Returns the number of links added.
    pub fn apply(
        &mut self,
        snapshot: &RibSnapshot,
        dictionary: &CommunityDictionary,
        inference: &mut CommunityInference,
    ) -> usize {
        let mut added = 0;
        for entry in &snapshot.entries {
            if entry.has_bogus_path() {
                continue;
            }
            let Some(locpref) = entry.attrs.local_pref else { continue };
            if dictionary.has_locpref_tainting_community(&entry.attrs.communities) {
                continue;
            }
            let path: Vec<Asn> = entry.attrs.as_path.deprepended().asns().collect();
            if path.len() < 2 {
                continue;
            }
            let feeder = path[0];
            let first_hop = path[1];
            let plane = entry.plane();
            let Some(rel) = self.lookup(feeder, plane, locpref) else { continue };
            if inference.add_locpref_inference(feeder, first_hop, plane, rel) {
                added += 1;
            }
        }
        self.links_added += added;
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{CollectorId, Community, PathAttributes, PeerId, Prefix, RibEntry};
    use irr::{CommunityMeaning, RelationshipTag, TrafficAction};
    use std::net::IpAddr;

    /// Dictionary: AS10 documents 10:1 = from customer, 10:2 = from peer,
    /// 10:99 = lower preference (TE).
    fn dictionary() -> CommunityDictionary {
        let mut d = CommunityDictionary::new();
        d.insert(
            Community::new(10, 1),
            CommunityMeaning::Relationship(RelationshipTag::FromCustomer),
        );
        d.insert(Community::new(10, 2), CommunityMeaning::Relationship(RelationshipTag::FromPeer));
        d.insert(
            Community::new(10, 99),
            CommunityMeaning::TrafficEngineering(TrafficAction::LowerPreference),
        );
        d
    }

    fn entry(
        prefix: &str,
        path: &str,
        locpref: Option<u32>,
        communities: &[Community],
    ) -> RibEntry {
        let mut attrs = PathAttributes::with_path(path.parse().unwrap());
        attrs.local_pref = locpref;
        for c in communities {
            attrs.communities.insert(*c);
        }
        RibEntry::new(
            PeerId::new(Asn(10), "2001:db8::1".parse::<IpAddr>().unwrap()),
            prefix.parse::<Prefix>().unwrap(),
            attrs,
        )
    }

    fn snapshot(entries: Vec<RibEntry>) -> RibSnapshot {
        let mut s = RibSnapshot::new(CollectorId::new("t"), 1);
        for e in entries {
            s.push(e);
        }
        s
    }

    /// AS10 is the feeder. Routes via AS20 are tagged "from customer" with
    /// LocPrf 300; routes via AS30 are untagged but carry LocPrf 300 too —
    /// the Rosetta Stone should classify 10-30 as p2c.
    #[test]
    fn learn_and_apply_extends_coverage() {
        let snap = snapshot(vec![
            entry("2001:db8:1::/48", "10 20 40", Some(300), &[Community::new(10, 1)]),
            entry("2001:db8:2::/48", "10 20 41", Some(300), &[Community::new(10, 1)]),
            entry("2001:db8:3::/48", "10 30 42", Some(300), &[]),
            entry("2001:db8:4::/48", "10 35 43", Some(200), &[Community::new(10, 2)]),
            entry("2001:db8:5::/48", "10 36 44", Some(200), &[]),
        ]);
        let dict = dictionary();
        let mut inference = CommunityInference::from_snapshot(&snap, &dict);
        assert_eq!(
            inference.relationship(Asn(10), Asn(20), IpVersion::V6),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(inference.relationship(Asn(10), Asn(30), IpVersion::V6), None);

        let mut rosetta = LocPrfRosetta::learn(&snap, &dict, &inference);
        assert_eq!(rosetta.mapping_count(), 2);
        assert_eq!(
            rosetta.lookup(Asn(10), IpVersion::V6, 300),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(rosetta.lookup(Asn(10), IpVersion::V6, 200), Some(Relationship::PeerToPeer));
        assert_eq!(rosetta.lookup(Asn(10), IpVersion::V6, 100), None);
        assert_eq!(rosetta.lookup(Asn(10), IpVersion::V4, 300), None, "plane-specific");

        let added = rosetta.apply(&snap, &dict, &mut inference);
        assert_eq!(added, 2);
        assert_eq!(rosetta.links_added, 2);
        assert_eq!(
            inference.relationship(Asn(10), Asn(30), IpVersion::V6),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(
            inference.relationship(Asn(10), Asn(36), IpVersion::V6),
            Some(Relationship::PeerToPeer)
        );
        assert_eq!(
            inference
                .inferred_by_source(IpVersion::V6, crate::communities::InferenceSource::LocalPref),
            2
        );
    }

    #[test]
    fn te_tainted_routes_are_excluded_from_learning_and_application() {
        let snap = snapshot(vec![
            // Validated customer route at LocPrf 300.
            entry("2001:db8:1::/48", "10 20 40", Some(300), &[Community::new(10, 1)]),
            // A TE-lowered route via a peer that happens to sit at 300 too;
            // without the filter this would make 300 ambiguous.
            entry(
                "2001:db8:2::/48",
                "10 35 43",
                Some(300),
                &[Community::new(10, 2), Community::new(10, 99)],
            ),
            // An untagged TE-lowered route: must not be classified either.
            entry("2001:db8:3::/48", "10 37 44", Some(300), &[Community::new(10, 99)]),
        ]);
        let dict = dictionary();
        let mut inference = CommunityInference::from_snapshot(&snap, &dict);
        let mut rosetta = LocPrfRosetta::learn(&snap, &dict, &inference);
        assert_eq!(rosetta.te_filtered_routes, 2);
        assert_eq!(
            rosetta.lookup(Asn(10), IpVersion::V6, 300),
            Some(Relationship::ProviderToCustomer)
        );
        let added = rosetta.apply(&snap, &dict, &mut inference);
        assert_eq!(added, 0, "TE-tainted routes must not be classified");
        assert_eq!(inference.relationship(Asn(10), Asn(37), IpVersion::V6), None);
    }

    #[test]
    fn ambiguous_locpref_values_are_dropped() {
        // LocPrf 150 maps to both a customer-tagged and a peer-tagged route.
        let snap = snapshot(vec![
            entry("2001:db8:1::/48", "10 20 40", Some(150), &[Community::new(10, 1)]),
            entry("2001:db8:2::/48", "10 35 43", Some(150), &[Community::new(10, 2)]),
            entry("2001:db8:3::/48", "10 36 44", Some(150), &[]),
        ]);
        let dict = dictionary();
        let mut inference = CommunityInference::from_snapshot(&snap, &dict);
        let mut rosetta = LocPrfRosetta::learn(&snap, &dict, &inference);
        assert_eq!(rosetta.ambiguous, 1);
        assert_eq!(rosetta.mapping_count(), 0);
        assert_eq!(rosetta.apply(&snap, &dict, &mut inference), 0);
    }

    #[test]
    fn routes_without_locpref_are_ignored() {
        let snap = snapshot(vec![
            entry("2001:db8:1::/48", "10 20 40", None, &[Community::new(10, 1)]),
            entry("2001:db8:2::/48", "10 30 42", None, &[]),
        ]);
        let dict = dictionary();
        let mut inference = CommunityInference::from_snapshot(&snap, &dict);
        let mut rosetta = LocPrfRosetta::learn(&snap, &dict, &inference);
        assert_eq!(rosetta.mapping_count(), 0);
        assert_eq!(rosetta.apply(&snap, &dict, &mut inference), 0);
    }
}
