//! # hybrid-tor
//!
//! Detection and assessment of **hybrid IPv4/IPv6 AS relationships** —
//! the primary contribution of Giotsas & Zhou (SIGCOMM 2011), rebuilt as a
//! reusable library.
//!
//! The pipeline mirrors the paper's methodology:
//!
//! 1. [`extract`] — pull IPv4/IPv6 AS paths and AS links out of collector
//!    RIB snapshots (from MRT files or the bundled simulator), discarding
//!    bogus paths (loops, reserved ASNs).
//! 2. [`communities`] — decode the BGP Communities on every route with an
//!    IRR-derived [`irr::CommunityDictionary`] and turn each relationship
//!    community into a vote about the link between the tagging AS and the
//!    neighbor it learned the route from; aggregate votes into per-plane
//!    relationship inferences.
//! 3. [`locpref`] — learn each feeder's LocPrf → relationship mapping
//!    from routes already validated by communities (excluding routes
//!    carrying traffic-engineering communities), then use the mapping to
//!    classify additional first-hop links, extending coverage.
//! 4. [`hybrid`] — compare the two planes on every dual-stack link, flag
//!    hybrids, classify them, and measure their visibility in IPv6 paths.
//! 5. [`valley`] — classify every IPv6 path against the inferred (or
//!    ground-truth) relationships, count valley paths, and attribute
//!    valleys to reachability-driven relaxation vs. plain leaks.
//! 6. [`baselines`] — classic valley-free inference heuristics (Gao's
//!    algorithm and a degree-based variant) used both as the comparison
//!    point the paper corrects (Figure 2) and for accuracy ablations.
//! 7. [`impact`] — the customer-tree impact analysis of Figure 2:
//!    progressively replace the most-visible misinferred hybrid links with
//!    their community-derived relationships and track the average shortest
//!    valley-free path and diameter over the union of customer trees.
//! 8. [`pipeline`] / [`report`] — one-call orchestration producing a
//!    [`report::Report`] with every number the paper's Section 3 states.
//!
//! ```
//! use hybrid_tor::pipeline::{Pipeline, PipelineInput};
//! use routesim::{Scenario, SimConfig};
//! use topogen::TopologyConfig;
//!
//! let scenario = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
//! let report = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
//! assert!(report.dataset.ipv6_paths > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod communities;
pub mod extract;
pub mod hybrid;
pub mod impact;
pub mod ingest;
pub mod locpref;
pub mod pipeline;
pub mod report;
pub mod service;
pub mod valley;

pub use baselines::{degree_heuristic_inference, gao_inference, InferenceAccuracy};
pub use communities::{CommunityInference, InferenceSource, InferredRelationship};
pub use extract::{ExtractedData, ObservedPath};
pub use hybrid::{HybridFinding, HybridReport};
pub use impact::{CorrectionStep, ImpactCurve};
pub use ingest::{
    ApplyStats, ExtractCache, IngestCaches, LiveRib, RepairStats, RibDelta, TemporalSweep,
    UpdateStream, ValleyCache, WindowOutcome,
};
pub use locpref::LocPrfRosetta;
pub use pipeline::{
    Pipeline, PipelineArtifacts, PipelineInput, PipelineInputBuilder, PipelineOptions,
};
pub use report::Report;
pub use service::{ResidentState, ServiceMemory, VisibilityStats, WhatIfReply};
pub use valley::{ValleyAttribution, ValleyReport};
