//! End-to-end orchestration of the measurement.

use std::path::{Path, PathBuf};

use bgp_types::{IpVersion, RibSnapshot};
use irr::{CommunityDictionary, IrrRegistry};
use topogen::GroundTruth;

use crate::baselines::{gao_inference, BaselineInput, InferenceAccuracy};
use crate::communities::{CommunityInference, InferenceSource};
use crate::extract::extract;
use crate::hybrid::detect_hybrids;
use crate::impact::{correction_sweep_in, ImpactOptions, SweepCache, SweepOptions};
use crate::ingest::{run_valley_stage, ApplyStats, IngestCaches, LiveRib, UpdateStream};
use crate::locpref::LocPrfRosetta;
use crate::report::{DatasetSummary, Report};

/// The data a pipeline run consumes: a pooled RIB snapshot, the community
/// dictionary mined from the IRR, and (optionally, for simulated
/// scenarios) the ground truth for accuracy evaluation.
#[derive(Debug, Clone)]
pub struct PipelineInput {
    /// The pooled collector snapshot.
    pub snapshot: RibSnapshot,
    /// The community dictionary.
    pub dictionary: CommunityDictionary,
    /// Ground truth, when available.
    pub truth: Option<GroundTruth>,
}

impl PipelineInput {
    /// Start describing an input: pick one base source (a simulated
    /// scenario, MRT files on disk, or a raw snapshot), optionally replay
    /// an [`UpdateStream`] on top of it, and set the execution options
    /// once. The older `from_*` constructors are thin shims over this.
    ///
    /// ```
    /// use hybrid_tor::pipeline::PipelineInput;
    /// use routesim::{Scenario, SimConfig};
    /// use topogen::TopologyConfig;
    ///
    /// let scenario = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
    /// let input = PipelineInput::builder().scenario(&scenario).build().unwrap();
    /// assert!(input.snapshot.len() > 0);
    /// ```
    pub fn builder() -> PipelineInputBuilder<'static> {
        PipelineInputBuilder::default()
    }

    /// Build the input from a simulated scenario: pools its collectors,
    /// parses its registry, and carries the ground truth along. Uses the
    /// default execution options (all available parallelism).
    pub fn from_scenario(scenario: &routesim::Scenario) -> Self {
        Self::from_scenario_with(scenario, &PipelineOptions::default())
    }

    /// [`from_scenario`](Self::from_scenario) with explicit execution
    /// options: per-collector snapshot pooling runs sharded, concurrently
    /// with the IRR dictionary build, when more than one worker is
    /// allowed. The pooled entry order is worker-count independent.
    pub fn from_scenario_with(scenario: &routesim::Scenario, options: &PipelineOptions) -> Self {
        Self::builder()
            .scenario(scenario)
            .options(*options)
            .build()
            .expect("scenario inputs cannot fail")
    }

    /// Build the input from MRT files and an IRR dump on disk — the shape
    /// a measurement against real archives would take. Uses the default
    /// execution options (all available parallelism).
    pub fn from_files(
        mrt_paths: &[impl AsRef<Path> + Sync],
        registry_path: impl AsRef<Path>,
    ) -> Result<Self, std::io::Error> {
        Self::from_files_with(mrt_paths, registry_path, &PipelineOptions::default())
    }

    /// [`from_files`](Self::from_files) with explicit execution options:
    /// the per-collector MRT files are parsed on worker threads and merged
    /// in path order, so the pooled snapshot — and the first error
    /// surfaced, if any — match the sequential read exactly.
    pub fn from_files_with(
        mrt_paths: &[impl AsRef<Path> + Sync],
        registry_path: impl AsRef<Path>,
        options: &PipelineOptions,
    ) -> Result<Self, std::io::Error> {
        Self::builder().files(mrt_paths, registry_path).options(*options).build()
    }
}

/// One base source for a [`PipelineInputBuilder`].
#[derive(Debug, Default)]
enum InputSource<'a> {
    /// No source chosen yet; [`PipelineInputBuilder::build`] rejects it.
    #[default]
    Empty,
    /// A simulated scenario (snapshot pooling + registry parsing).
    Scenario(&'a routesim::Scenario),
    /// MRT TABLE_DUMP_V2 files plus an IRR registry dump on disk.
    Files { mrt: Vec<PathBuf>, registry: PathBuf },
    /// An already-pooled snapshot with its dictionary (and optional
    /// truth). Boxed: the assembled input dwarfs the other variants.
    Snapshot(Box<PipelineInput>),
}

/// Builder for [`PipelineInput`]: one base source, an optional update
/// stream replayed on top of it, and the execution options — declared
/// once, in one place (see [`PipelineInput::builder`]).
#[derive(Debug, Default)]
pub struct PipelineInputBuilder<'a> {
    options: PipelineOptions,
    source: InputSource<'a>,
    updates: Option<&'a UpdateStream>,
}

impl<'a> PipelineInputBuilder<'a> {
    /// Use a simulated scenario as the base source (replaces any source
    /// chosen earlier).
    pub fn scenario(self, scenario: &'a routesim::Scenario) -> Self {
        PipelineInputBuilder { source: InputSource::Scenario(scenario), ..self }
    }

    /// Use MRT files plus an IRR registry dump as the base source
    /// (replaces any source chosen earlier).
    pub fn files(self, mrt_paths: &[impl AsRef<Path>], registry_path: impl AsRef<Path>) -> Self {
        let source = InputSource::Files {
            mrt: mrt_paths.iter().map(|p| p.as_ref().to_path_buf()).collect(),
            registry: registry_path.as_ref().to_path_buf(),
        };
        PipelineInputBuilder { source, ..self }
    }

    /// Use an already-pooled snapshot as the base source (replaces any
    /// source chosen earlier). `truth` enables accuracy evaluation.
    pub fn snapshot(
        self,
        snapshot: RibSnapshot,
        dictionary: CommunityDictionary,
        truth: Option<GroundTruth>,
    ) -> Self {
        PipelineInputBuilder {
            source: InputSource::Snapshot(Box::new(PipelineInput { snapshot, dictionary, truth })),
            ..self
        }
    }

    /// Replay an update stream on top of the base source: the built input
    /// holds the [`LiveRib`] state after the stream's last window — the
    /// one-shot "table at time T" shape. For per-window measurement use
    /// [`crate::ingest::TemporalSweep`] instead.
    pub fn updates(self, stream: &'a UpdateStream) -> Self {
        PipelineInputBuilder { updates: Some(stream), ..self }
    }

    /// Execution options for source assembly (pooling / file-parse
    /// parallelism). Execution only — the built input is byte-identical
    /// at every worker count.
    pub fn options(self, options: PipelineOptions) -> Self {
        PipelineInputBuilder { options, ..self }
    }

    /// Assemble the input. Fails when no source was chosen or a file
    /// source fails to read.
    pub fn build(self) -> Result<PipelineInput, std::io::Error> {
        let options = self.options;
        let mut input = match self.source {
            InputSource::Empty => {
                return Err(std::io::Error::other(
                    "PipelineInput::builder(): no source chosen (scenario / files / snapshot)",
                ))
            }
            InputSource::Scenario(scenario) => {
                let workers = options.workers();
                let (snapshot, dictionary) = if workers > 1 {
                    std::thread::scope(|scope| {
                        // The main thread builds the dictionary, so pooling
                        // gets one worker less to keep the total at the
                        // budget.
                        let pool_workers = workers - 1;
                        let pooled = scope.spawn(move || scenario.pooled_snapshot(pool_workers));
                        let dictionary = scenario.registry.build_dictionary();
                        (pooled.join().expect("snapshot pooling worker panicked"), dictionary)
                    })
                } else {
                    (scenario.pooled_snapshot(1), scenario.registry.build_dictionary())
                };
                PipelineInput { snapshot, dictionary, truth: Some(scenario.truth.clone()) }
            }
            InputSource::Files { mrt, registry } => {
                let read = |path: &PathBuf| {
                    mrt::read_snapshot_from_path(path)
                        .map_err(|e| std::io::Error::other(e.to_string()))
                };
                let workers = options.workers();
                let mut snapshot = RibSnapshot::default();
                if workers <= 1 || mrt.len() <= 1 {
                    // Sequential: stop at the first failing file.
                    for path in &mrt {
                        snapshot.merge(read(path)?);
                    }
                } else {
                    let parsed: Vec<Result<RibSnapshot, std::io::Error>> =
                        routesim::shard_map(&mrt, workers, read);
                    for snap in parsed {
                        snapshot.merge(snap?);
                    }
                }
                let registry = IrrRegistry::load(registry)?;
                PipelineInput { snapshot, dictionary: registry.build_dictionary(), truth: None }
            }
            InputSource::Snapshot(input) => *input,
        };
        if let Some(stream) = self.updates {
            let mut live = LiveRib::from_snapshot(&input.snapshot);
            let mut stats = ApplyStats::default();
            for record in stream.windows().iter().flatten() {
                live.apply_record(record, &mut stats);
            }
            input.snapshot = live.snapshot();
        }
        Ok(input)
    }
}

/// Execution options for the pipeline: how much of the hardware to use.
///
/// Parallelism in this codebase is an execution detail, never an output
/// knob — every worker count produces byte-identical reports (the
/// determinism suite runs the same seeds at `concurrency` 1, 2 and 8 and
/// compares the JSON byte-for-byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineOptions {
    /// Worker threads for the parallel sections: `0` uses all available
    /// parallelism (the default), `1` is the fully sequential path.
    pub concurrency: usize,
    /// Worker threads for the within-origin frontier expansion of any
    /// route propagation run on this pipeline's behalf (`0` = all cores,
    /// `1` — the default — = sequential level scans). The pipeline itself
    /// consumes already-propagated snapshots; this field completes the
    /// one-struct description of the execution stack so callers that
    /// *do* build or rebuild scenarios for a run (the bench harness
    /// resolves `HYBRID_FRONTIER` into it and into
    /// `SimConfig::frontier_concurrency`) steer both levels from one
    /// place. Execution only — never a byte of the report.
    pub frontier_concurrency: usize,
    /// How route propagation assigns origins to its workers (see
    /// [`routesim::OriginScheduling`]): degree-aware LPT binning by
    /// default, static striping as the reference schedule. Resolved into
    /// `SimConfig::scheduling` by [`configure_sim`](Self::configure_sim);
    /// execution only — never a byte of the report.
    pub scheduling: routesim::OriginScheduling,
    /// Serve the pipeline's graph walks (hybrid detection, valley
    /// analysis, the correction sweep) from the frozen CSR mirror of the
    /// extracted graph (`true`, the default) or the adjacency-map
    /// reference backend (`false`). Resolved into `SimConfig::csr` by
    /// [`configure_sim`](Self::configure_sim); execution only — the CSR
    /// iterates neighbours in adjacency order, so reports are
    /// byte-identical either way.
    pub csr: bool,
    /// Execution options for the Figure 2 impact subsystem (worker threads
    /// for the sharded correction sweep and the cross-step memoization
    /// switch). `SweepOptions::default()` — all cores, cache on — is what
    /// `PipelineOptions::default()` carries; like `concurrency`, the knob
    /// never changes the report bytes.
    pub sweep: SweepOptions,
    /// The adversarial scenario any scenario built on this pipeline's
    /// behalf propagates under (see [`routesim::PolicyScenario`]).
    /// Resolved into `SimConfig::policy_scenario` by
    /// [`configure_sim`](Self::configure_sim). Unlike every knob above,
    /// this is an **output** knob: a non-default scenario changes the
    /// routes, so it changes the report — but it must stay invisible to
    /// worker counts (the determinism matrix pins that).
    pub policy_scenario: routesim::PolicyScenario,
    /// The fraction of ASes deploying the scenario's defensive policy
    /// (ROV / ASPA-lite), in `[0, 1]`. Resolved into
    /// `SimConfig::policy_deployment` by
    /// [`configure_sim`](Self::configure_sim). An output knob, like
    /// [`policy_scenario`](Self::policy_scenario).
    pub policy_deployment: f64,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            concurrency: 0,
            frontier_concurrency: 1,
            scheduling: routesim::OriginScheduling::default(),
            csr: true,
            sweep: SweepOptions::default(),
            policy_scenario: routesim::PolicyScenario::default(),
            policy_deployment: 0.0,
        }
    }
}

impl PipelineOptions {
    /// Options pinned to `concurrency` worker threads (the sweep follows
    /// the same worker count, with memoization enabled; the frontier
    /// expansion stays sequential unless [`with_frontier`](Self::with_frontier)
    /// retunes it).
    pub fn with_concurrency(concurrency: usize) -> Self {
        PipelineOptions {
            concurrency,
            sweep: SweepOptions::with_concurrency(concurrency),
            ..Default::default()
        }
    }

    /// The fully sequential execution path (sweep memoization stays on —
    /// it trades memory, not determinism).
    pub fn sequential() -> Self {
        Self::with_concurrency(1)
    }

    /// These options with the given sweep execution settings.
    pub fn with_sweep(self, sweep: SweepOptions) -> Self {
        PipelineOptions { sweep, ..self }
    }

    /// These options with the given within-origin frontier worker count.
    pub fn with_frontier(self, frontier_concurrency: usize) -> Self {
        PipelineOptions { frontier_concurrency, ..self }
    }

    /// These options with the given origin-to-worker schedule.
    pub fn with_scheduling(self, scheduling: routesim::OriginScheduling) -> Self {
        PipelineOptions { scheduling, ..self }
    }

    /// These options with the CSR mirror enabled (`true`) or the
    /// adjacency-map reference backend (`false`).
    pub fn with_csr(self, csr: bool) -> Self {
        PipelineOptions { csr, ..self }
    }

    /// These options with the given adversarial scenario.
    pub fn with_scenario(self, policy_scenario: routesim::PolicyScenario) -> Self {
        PipelineOptions { policy_scenario, ..self }
    }

    /// These options with the given defensive-deployment fraction.
    pub fn with_deployment(self, policy_deployment: f64) -> Self {
        PipelineOptions { policy_deployment, ..self }
    }

    /// The worker count these options resolve to (`0` = all cores).
    pub fn workers(&self) -> usize {
        routesim::effective_concurrency(self.concurrency)
    }

    /// The frontier worker count these options resolve to (`0` = all
    /// cores).
    pub fn frontier_workers(&self) -> usize {
        routesim::effective_concurrency(self.frontier_concurrency)
    }

    /// Stamp these options onto a simulator configuration so a scenario
    /// built for this pipeline run propagates under the same worker
    /// budget, frontier split, origin schedule, graph backend and
    /// adversarial scenario. Only knobs the configuration leaves at their
    /// *default values* are overwritten (`concurrency == 0`,
    /// `frontier_concurrency == 1`, `scheduling == Degree`, `csr ==
    /// true`, `policy_scenario == Classic`, `policy_deployment == 0.0`);
    /// any other value is kept. Note the defaults double as the
    /// "unpinned" sentinels: a caller that wants `concurrency = 0` (all
    /// cores), `frontier_concurrency = 1` (sequential scans), degree-aware
    /// scheduling, the CSR backend, the classic policy or a zero
    /// deployment *regardless of these options* must set them after this
    /// call, not before.
    pub fn configure_sim(&self, mut sim: routesim::SimConfig) -> routesim::SimConfig {
        if sim.concurrency == 0 {
            sim.concurrency = self.concurrency;
        }
        if sim.frontier_concurrency == 1 {
            sim.frontier_concurrency = self.frontier_concurrency;
        }
        if sim.scheduling == routesim::OriginScheduling::Degree {
            sim.scheduling = self.scheduling;
        }
        if sim.csr {
            sim.csr = self.csr;
        }
        if sim.policy_scenario == routesim::PolicyScenario::Classic {
            sim.policy_scenario = self.policy_scenario;
        }
        if sim.policy_deployment == 0.0 {
            sim.policy_deployment = self.policy_deployment;
        }
        sim
    }
}

/// The intermediate products of a pipeline run that a resident service
/// wants to keep alive after the report is assembled: the extracted
/// per-plane data, the final (LocPrf-extended) inference, and the
/// inference-annotated graph the valley analysis walked. A one-shot
/// experiment drops these; a query daemon answers relationship,
/// customer-tree, visibility and what-if queries straight from them
/// without a second `Pipeline::run`.
#[derive(Debug)]
pub struct PipelineArtifacts {
    /// The extracted graph, paths and entry counts.
    pub data: crate::extract::ExtractedData,
    /// The community inference after the LocPrf extension.
    pub inference: CommunityInference,
    /// `data.graph` with the inferred relationships annotated onto it —
    /// the graph every relationship/valley point query reads.
    pub annotated: asgraph::AsGraph,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Use the LocPrf Rosetta Stone to extend coverage (the paper does).
    pub use_locpref: bool,
    /// Run the Figure 2 customer-tree correction sweep (all-pairs valley-
    /// free BFS over the tree union — the expensive part).
    pub run_impact: bool,
    /// Options for the correction sweep.
    pub impact_options: ImpactOptions,
    /// Evaluate the Gao baseline against ground truth when available.
    pub evaluate_baseline: bool,
    /// Attach the sweep's execution statistics (memo hits, delta repairs
    /// vs full BFS) to the report. Off by default: the counters depend on
    /// the cache/incremental knobs, so reports in the determinism matrix
    /// and the committed golden snapshots never carry them.
    pub emit_sweep_stats: bool,
    /// Execution options (worker threads for the parallel sections).
    pub options: PipelineOptions,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            use_locpref: true,
            run_impact: false,
            impact_options: ImpactOptions::default(),
            evaluate_baseline: true,
            emit_sweep_stats: false,
            options: PipelineOptions::default(),
        }
    }
}

impl Pipeline {
    /// A pipeline that also runs the Figure 2 sweep.
    pub fn with_impact(top_k: usize, source_cap: Option<usize>) -> Self {
        Pipeline {
            run_impact: true,
            impact_options: ImpactOptions { top_k, source_cap },
            ..Default::default()
        }
    }

    /// A pipeline pinned to `concurrency` worker threads.
    pub fn with_concurrency(concurrency: usize) -> Self {
        Pipeline { options: PipelineOptions::with_concurrency(concurrency), ..Default::default() }
    }

    /// Run the full measurement and produce a [`Report`].
    ///
    /// With more than one worker allowed, the stages that are independent
    /// of one another run concurrently: extraction alongside community
    /// decoding, then — after the LocPrf extension — hybrid detection,
    /// valley analysis and the Gao baseline. Each stage computes exactly
    /// what the sequential path computes, so the report is byte-identical
    /// at every worker count.
    pub fn run(&self, input: PipelineInput) -> Report {
        self.run_with_artifacts(input).0
    }

    /// [`run`](Self::run), additionally returning the
    /// [`PipelineArtifacts`] the run produced along the way. The report is
    /// byte-identical to [`run`](Self::run) — the artifacts are state the
    /// run already built (the annotated graph existed transiently inside
    /// the valley-analysis stage) handed to the caller instead of dropped.
    pub fn run_with_artifacts(&self, input: PipelineInput) -> (Report, PipelineArtifacts) {
        self.run_inner(input, None)
    }

    /// [`run_with_artifacts`](Self::run_with_artifacts) against a live
    /// ingest session: the extraction stage materialises the incrementally
    /// maintained counters in `caches.extract` instead of rescanning the
    /// snapshot, and the valley stage's reachability oracle serves from
    /// the delta-repaired distance maps in `caches.valley`. Both caches
    /// are exact, so the report is byte-identical to
    /// [`run`](Self::run) over the same input — the streaming driver
    /// ([`crate::ingest::TemporalSweep`]) pins that per window, and the
    /// determinism suite pins it across worker counts.
    pub fn run_with_caches(
        &self,
        input: PipelineInput,
        caches: &mut IngestCaches,
    ) -> (Report, PipelineArtifacts) {
        self.run_inner(input, Some(caches))
    }

    fn run_inner(
        &self,
        input: PipelineInput,
        caches: Option<&mut IngestCaches>,
    ) -> (Report, PipelineArtifacts) {
        let PipelineInput { snapshot, dictionary, truth } = input;
        let workers = self.options.workers();
        // Split the cache bundle: extraction reads one half, the valley
        // stage mutates the other.
        let (extract_cache, valley_cache) = match caches {
            Some(caches) => (Some(&caches.extract), Some(&mut caches.valley)),
            None => (None, None),
        };

        // 1+2. Extraction and communities-based inference are independent
        //      scans of the pooled snapshot. A streaming session skips the
        //      extraction scan entirely: the counters were maintained
        //      route-by-route as updates applied.
        let (mut data, mut inference) = if let Some(cache) = extract_cache {
            (cache.materialize(), CommunityInference::from_snapshot(&snapshot, &dictionary))
        } else if workers > 1 {
            std::thread::scope(|scope| {
                let extracted = scope.spawn(|| extract(&snapshot));
                let inference = CommunityInference::from_snapshot(&snapshot, &dictionary);
                (extracted.join().expect("extraction worker panicked"), inference)
            })
        } else {
            (extract(&snapshot), CommunityInference::from_snapshot(&snapshot, &dictionary))
        };
        if self.options.csr {
            // Freeze once the graph is structurally complete; every later
            // stage only *annotates* (which the frozen mirror absorbs in
            // place), so hybrid detection, valley analysis, the baseline
            // and the correction sweep — and any clone they take — all
            // walk the flat CSR arrays.
            data.graph.freeze();
        }

        // 3. LocPrf Rosetta Stone (reads and extends the inference, so it
        //    stays on the critical path).
        if self.use_locpref {
            let mut rosetta = LocPrfRosetta::learn(&snapshot, &dictionary, &inference);
            rosetta.apply(&snapshot, &dictionary, &mut inference);
        }

        // 4+5+7a. Hybrid detection, valley analysis and the Gao baseline
        //         all read (data, inference) without touching each other.
        //         The caller thread counts against the worker budget, so
        //         only spawn up to `workers - 1` helpers.
        let (hybrids, (valleys, annotated), baseline) = if workers > 2 {
            std::thread::scope(|scope| {
                let hybrids = scope.spawn(|| detect_hybrids(&data, &inference));
                let valleys = scope.spawn(|| {
                    let mut annotated = data.graph.clone();
                    inference.annotate_graph(&mut annotated);
                    (run_valley_stage(&data, &annotated, valley_cache), annotated)
                });
                let baseline = gao_inference(&data, BaselineInput::BothPlanes);
                (
                    hybrids.join().expect("hybrid detection worker panicked"),
                    valleys.join().expect("valley analysis worker panicked"),
                    baseline,
                )
            })
        } else if workers > 1 {
            std::thread::scope(|scope| {
                let hybrids = scope.spawn(|| detect_hybrids(&data, &inference));
                let mut annotated = data.graph.clone();
                inference.annotate_graph(&mut annotated);
                let valleys = run_valley_stage(&data, &annotated, valley_cache);
                let baseline = gao_inference(&data, BaselineInput::BothPlanes);
                (
                    hybrids.join().expect("hybrid detection worker panicked"),
                    (valleys, annotated),
                    baseline,
                )
            })
        } else {
            let hybrids = detect_hybrids(&data, &inference);
            let mut annotated = data.graph.clone();
            inference.annotate_graph(&mut annotated);
            let valleys = run_valley_stage(&data, &annotated, valley_cache);
            let baseline = gao_inference(&data, BaselineInput::BothPlanes);
            (hybrids, (valleys, annotated), baseline)
        };

        // 6. Dataset summary.
        let dual_stack_classified_both = data
            .graph
            .dual_stack_edges()
            .filter(|e| {
                inference.relationship(e.a, e.b, IpVersion::V4).is_some()
                    && inference.relationship(e.a, e.b, IpVersion::V6).is_some()
            })
            .count();
        let dataset = DatasetSummary {
            ipv6_paths: data.paths_v6.len(),
            ipv4_paths: data.paths_v4.len(),
            ipv6_entries: data.entries_v6,
            ipv4_entries: data.entries_v4,
            ipv6_links: data.link_count(IpVersion::V6),
            ipv4_links: data.link_count(IpVersion::V4),
            dual_stack_links: data.dual_stack_link_count(),
            ipv6_links_classified: inference.inferred_link_count(IpVersion::V6),
            dual_stack_links_classified: dual_stack_classified_both,
            ipv6_links_from_communities: inference
                .inferred_by_source(IpVersion::V6, InferenceSource::Communities),
            ipv6_links_from_locpref: inference
                .inferred_by_source(IpVersion::V6, InferenceSource::LocalPref),
            conflicted_links: inference.conflicted_links,
            dictionary_size: dictionary.len(),
        };

        // 7b. Baseline accuracy against ground truth (the baseline itself
        //     was computed above, alongside the other independent stages).
        let (baseline_accuracy_v4, baseline_accuracy_v6) = match (&truth, self.evaluate_baseline) {
            (Some(truth), true) => (
                Some(InferenceAccuracy::evaluate(&baseline, &truth.graph, IpVersion::V4)),
                Some(InferenceAccuracy::evaluate(&baseline, &truth.graph, IpVersion::V6)),
            ),
            _ => (None, None),
        };

        // 8. Figure 2 sweep: start from the plane-blind annotation (the
        //    IPv4-derived relationship applied to the IPv6 plane, which is
        //    what the pre-existing datasets encode) and correct the most
        //    visible hybrid links with their community-derived IPv6
        //    relationship.
        let (impact, sweep_stats) = if self.run_impact {
            let misinferred = crate::impact::plane_blind_annotation_with(
                &data.graph,
                &inference,
                &baseline,
                self.options.sweep.concurrency,
            );
            let mut cache = SweepCache::new();
            let curve = correction_sweep_in(
                &misinferred,
                &hybrids.findings,
                &self.impact_options,
                &self.options.sweep,
                &mut cache,
            );
            (Some(curve), self.emit_sweep_stats.then(|| cache.stats()))
        } else {
            (None, None)
        };

        let report = Report {
            dataset,
            hybrids,
            valleys,
            impact,
            sweep_stats,
            baseline_accuracy_v4,
            baseline_accuracy_v6,
            // Recorded only off the classic default so classic reports —
            // including every pre-scenario golden snapshot — keep their
            // exact bytes.
            policy_scenario: (self.options.policy_scenario != routesim::PolicyScenario::Classic)
                .then_some(self.options.policy_scenario),
        };
        (report, PipelineArtifacts { data, inference, annotated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routesim::{Scenario, SimConfig};
    use topogen::TopologyConfig;

    fn scenario() -> routesim::Scenario {
        Scenario::build(&TopologyConfig::tiny(), &SimConfig::small())
    }

    #[test]
    fn pipeline_runs_end_to_end_on_a_simulated_scenario() {
        let scenario = scenario();
        let report = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        assert!(report.dataset.ipv6_paths > 0);
        assert!(report.dataset.ipv6_links > 0);
        assert!(report.dataset.dual_stack_links > 0);
        assert!(report.dataset.ipv6_links_classified > 0);
        assert!(report.dataset.ipv6_coverage() > 0.2, "{}", report.dataset.ipv6_coverage());
        assert!(report.dataset.ipv6_coverage() <= 1.0);
        // Dual-stack coverage should not be lower than... it usually exceeds
        // overall v6 coverage, but at minimum it is a valid fraction.
        assert!(report.dataset.dual_stack_coverage() <= 1.0);
        assert!(report.baseline_accuracy_v4.is_some());
        assert!(report.baseline_accuracy_v6.is_some());
        assert!(report.impact.is_none());
        // The display and JSON forms render without panicking.
        assert!(!report.to_string().is_empty());
        assert!(report.to_json().contains("dataset"));
    }

    #[test]
    fn detected_hybrids_match_ground_truth_relationships() {
        let scenario = scenario();
        let report = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        // Every detected hybrid whose relationships we compare against the
        // ground truth must agree with it (communities never lie in the
        // simulator; coverage, not correctness, is the limiting factor).
        for finding in &report.hybrids.findings {
            let truth_pair = scenario.truth.relationship_pair(finding.a, finding.b).unwrap();
            assert_eq!(
                finding.relationships, truth_pair,
                "hybrid {}-{} disagrees with ground truth",
                finding.a, finding.b
            );
        }
    }

    #[test]
    fn locpref_extension_increases_or_preserves_coverage() {
        let scenario = scenario();
        let with = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        let without = Pipeline { use_locpref: false, ..Default::default() }
            .run(PipelineInput::from_scenario(&scenario));
        assert!(with.dataset.ipv6_links_classified >= without.dataset.ipv6_links_classified);
        assert_eq!(without.dataset.ipv6_links_from_locpref, 0);
    }

    #[test]
    fn impact_sweep_is_produced_when_requested() {
        let scenario = scenario();
        let pipeline = Pipeline::with_impact(5, Some(64));
        let report = pipeline.run(PipelineInput::from_scenario(&scenario));
        let curve = report.impact.expect("impact requested");
        assert!(!curve.steps.is_empty());
        assert_eq!(curve.steps[0].corrected, 0);
        assert!(curve.steps.len() <= 6);
        assert!(report.sweep_stats.is_none(), "stats are opt-in");
    }

    #[test]
    fn sweep_stats_are_emitted_only_on_request_and_never_change_the_curve() {
        let scenario = scenario();
        let silent = Pipeline::with_impact(5, Some(64));
        let chatty = Pipeline { emit_sweep_stats: true, ..Pipeline::with_impact(5, Some(64)) };
        let without = silent.run(PipelineInput::from_scenario(&scenario));
        let with = chatty.run(PipelineInput::from_scenario(&scenario));
        let stats = with.sweep_stats.expect("stats requested");
        assert!(stats.lookups() > 0);
        assert_eq!(stats.misses, stats.delta_repairs + stats.full_rebuilds);
        assert_eq!(
            with.impact.as_ref().unwrap().steps,
            without.impact.as_ref().unwrap().steps,
            "emitting stats must not perturb the curve"
        );
        assert!(with.to_json().contains("sweep_stats"));
        assert!(!without.to_json().contains("sweep_stats"));
    }

    #[test]
    fn pipeline_from_files_round_trips_through_disk() {
        let scenario = scenario();
        let dir = std::env::temp_dir().join(format!("hybrid-tor-pipeline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mrt_paths = scenario.write_mrt_files(&dir).unwrap();
        let registry_path = dir.join("irr.txt");
        scenario.registry.save(&registry_path).unwrap();

        let input = PipelineInput::from_files(&mrt_paths, &registry_path).unwrap();
        let from_disk = Pipeline::default().run(input);
        let in_memory = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        // LocPrf and communities survive the MRT round trip, so the headline
        // numbers match exactly.
        assert_eq!(from_disk.dataset.ipv6_links, in_memory.dataset.ipv6_links);
        assert_eq!(
            from_disk.dataset.ipv6_links_classified,
            in_memory.dataset.ipv6_links_classified
        );
        assert_eq!(from_disk.hybrids.findings.len(), in_memory.hybrids.findings.len());
        assert!(from_disk.baseline_accuracy_v4.is_none(), "no ground truth from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_surface_an_error() {
        let result = PipelineInput::from_files(&["/nonexistent/a.mrt"], "/nonexistent/irr.txt");
        assert!(result.is_err());
        // The sequential path surfaces the same error.
        let sequential = PipelineInput::from_files_with(
            &["/nonexistent/a.mrt"],
            "/nonexistent/irr.txt",
            &PipelineOptions::sequential(),
        );
        assert!(sequential.is_err());
    }

    #[test]
    fn pipeline_options_resolve_worker_counts() {
        assert!(PipelineOptions::default().workers() >= 1, "auto resolves to at least one");
        assert_eq!(PipelineOptions::sequential().workers(), 1);
        assert_eq!(PipelineOptions::with_concurrency(5).workers(), 5);
        assert_eq!(Pipeline::with_concurrency(3).options.concurrency, 3);
        // The sweep follows the pipeline's worker count unless overridden.
        assert!(PipelineOptions::default().sweep.cache);
        assert_eq!(PipelineOptions::with_concurrency(5).sweep.concurrency, 5);
        assert_eq!(Pipeline::with_concurrency(3).options.sweep.workers(), 3);
        let custom = PipelineOptions::with_concurrency(4).with_sweep(SweepOptions::sequential());
        assert_eq!(custom.concurrency, 4);
        assert_eq!(custom.sweep, SweepOptions::sequential());
    }

    #[test]
    fn frontier_knob_resolves_and_stamps_unpinned_sim_configs() {
        assert_eq!(PipelineOptions::default().frontier_concurrency, 1, "default is sequential");
        assert_eq!(PipelineOptions::sequential().frontier_workers(), 1);
        let options = PipelineOptions::with_concurrency(4).with_frontier(2);
        assert_eq!(options.frontier_workers(), 2);
        assert!(PipelineOptions::default().with_frontier(0).frontier_workers() >= 1);
        // Unpinned sim knobs take the pipeline's execution options ...
        let sim = options.configure_sim(SimConfig::small());
        assert_eq!(sim.concurrency, 4);
        assert_eq!(sim.frontier_concurrency, 2);
        // ... pinned ones are kept.
        let pinned = SimConfig::small().with_concurrency(3).with_frontier(5);
        let kept = options.configure_sim(pinned);
        assert_eq!(kept.concurrency, 3);
        assert_eq!(kept.frontier_concurrency, 5);
    }

    #[test]
    fn scheduling_knob_resolves_and_stamps_unpinned_sim_configs() {
        use routesim::OriginScheduling;
        assert_eq!(PipelineOptions::default().scheduling, OriginScheduling::Degree);
        let options =
            PipelineOptions::with_concurrency(4).with_scheduling(OriginScheduling::Static);
        assert_eq!(options.scheduling, OriginScheduling::Static);
        // An unpinned sim config takes the pipeline's schedule ...
        let sim = options.configure_sim(SimConfig::small());
        assert_eq!(sim.scheduling, OriginScheduling::Static);
        // ... a pinned one is kept (Degree is the unpinned sentinel, so a
        // config pinned to Static survives a Degree-scheduled pipeline).
        let pinned = SimConfig::small().with_scheduling(OriginScheduling::Static);
        let kept = PipelineOptions::default().configure_sim(pinned);
        assert_eq!(kept.scheduling, OriginScheduling::Static);
    }

    #[test]
    fn csr_knob_resolves_and_stamps_unpinned_sim_configs() {
        assert!(PipelineOptions::default().csr, "the CSR mirror is the default backend");
        let options = PipelineOptions::default().with_csr(false);
        assert!(!options.csr);
        // An unpinned sim config takes the pipeline's backend ...
        let sim = options.configure_sim(SimConfig::small());
        assert!(!sim.csr);
        // ... a pinned one is kept (`true` is the unpinned sentinel, so a
        // config pinned to the map backend survives a CSR pipeline).
        let pinned = SimConfig::small().with_csr(false);
        let kept = PipelineOptions::default().configure_sim(pinned);
        assert!(!kept.csr);
    }

    #[test]
    fn scenario_knobs_resolve_and_stamp_unpinned_sim_configs() {
        use routesim::PolicyScenario;
        assert_eq!(PipelineOptions::default().policy_scenario, PolicyScenario::Classic);
        assert_eq!(PipelineOptions::default().policy_deployment, 0.0);
        let options = PipelineOptions::default()
            .with_scenario(PolicyScenario::RouteLeak)
            .with_deployment(0.5);
        // An unpinned sim config takes the pipeline's scenario ...
        let sim = options.configure_sim(SimConfig::small());
        assert_eq!(sim.policy_scenario, PolicyScenario::RouteLeak);
        assert_eq!(sim.policy_deployment, 0.5);
        // ... a pinned one is kept (Classic / 0.0 are the unpinned
        // sentinels, so any other value survives the stamp).
        let pinned =
            SimConfig::small().with_scenario(PolicyScenario::SubprefixHijack).with_deployment(0.25);
        let kept = options.configure_sim(pinned);
        assert_eq!(kept.policy_scenario, PolicyScenario::SubprefixHijack);
        assert_eq!(kept.policy_deployment, 0.25);
    }

    #[test]
    fn concurrent_pipeline_reports_are_byte_identical_to_sequential() {
        let scenario = scenario();
        let render = |options: PipelineOptions| {
            let pipeline = Pipeline {
                run_impact: true,
                impact_options: ImpactOptions { top_k: 3, source_cap: Some(64) },
                options,
                ..Default::default()
            };
            let input = PipelineInput::from_scenario_with(&scenario, &pipeline.options);
            serde_json::to_string_pretty(&pipeline.run(input)).expect("report serializes")
        };
        let sequential = render(PipelineOptions::sequential());
        for workers in [2usize, 4] {
            let parallel = render(PipelineOptions::with_concurrency(workers));
            assert!(parallel == sequential, "concurrency={workers} diverged");
            // The sweep memoization switch must not change a byte either.
            let uncached =
                render(PipelineOptions::with_concurrency(workers).with_sweep(SweepOptions {
                    concurrency: workers,
                    cache: false,
                    incremental: false,
                    removal_repair: false,
                }));
            assert!(uncached == sequential, "concurrency={workers} uncached sweep diverged");
            // Neither may the origin schedule or the removal-repair tier.
            let static_schedule = render(
                PipelineOptions::with_concurrency(workers)
                    .with_scheduling(routesim::OriginScheduling::Static)
                    .with_sweep(SweepOptions::with_concurrency(workers).with_removal_repair(true)),
            );
            assert!(static_schedule == sequential, "concurrency={workers} static/repair diverged");
            // Nor may the graph backend: the adjacency-map reference path
            // must render the same bytes as the frozen CSR mirror.
            let map_backend = render(PipelineOptions::with_concurrency(workers).with_csr(false));
            assert!(map_backend == sequential, "concurrency={workers} map backend diverged");
        }
    }
}
