//! End-to-end orchestration of the measurement.

use std::path::Path;

use bgp_types::{IpVersion, RibSnapshot};
use irr::{CommunityDictionary, IrrRegistry};
use topogen::GroundTruth;

use crate::baselines::{gao_inference, BaselineInput, InferenceAccuracy};
use crate::communities::{CommunityInference, InferenceSource};
use crate::extract::extract;
use crate::hybrid::detect_hybrids;
use crate::impact::{correction_sweep, ImpactOptions};
use crate::locpref::LocPrfRosetta;
use crate::report::{DatasetSummary, Report};
use crate::valley::analyze_valleys;

/// The data a pipeline run consumes: a pooled RIB snapshot, the community
/// dictionary mined from the IRR, and (optionally, for simulated
/// scenarios) the ground truth for accuracy evaluation.
#[derive(Debug, Clone)]
pub struct PipelineInput {
    /// The pooled collector snapshot.
    pub snapshot: RibSnapshot,
    /// The community dictionary.
    pub dictionary: CommunityDictionary,
    /// Ground truth, when available.
    pub truth: Option<GroundTruth>,
}

impl PipelineInput {
    /// Build the input from a simulated scenario: pools its collectors,
    /// parses its registry, and carries the ground truth along.
    pub fn from_scenario(scenario: &routesim::Scenario) -> Self {
        PipelineInput {
            snapshot: scenario.merged_snapshot(),
            dictionary: scenario.registry.build_dictionary(),
            truth: Some(scenario.truth.clone()),
        }
    }

    /// Build the input from MRT files and an IRR dump on disk — the shape
    /// a measurement against real archives would take.
    pub fn from_files(
        mrt_paths: &[impl AsRef<Path>],
        registry_path: impl AsRef<Path>,
    ) -> Result<Self, std::io::Error> {
        let mut snapshot = RibSnapshot::default();
        for path in mrt_paths {
            let snap = mrt::read_snapshot_from_path(path)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            snapshot.merge(snap);
        }
        let registry = IrrRegistry::load(registry_path)?;
        Ok(PipelineInput { snapshot, dictionary: registry.build_dictionary(), truth: None })
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Use the LocPrf Rosetta Stone to extend coverage (the paper does).
    pub use_locpref: bool,
    /// Run the Figure 2 customer-tree correction sweep (all-pairs valley-
    /// free BFS over the tree union — the expensive part).
    pub run_impact: bool,
    /// Options for the correction sweep.
    pub impact_options: ImpactOptions,
    /// Evaluate the Gao baseline against ground truth when available.
    pub evaluate_baseline: bool,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            use_locpref: true,
            run_impact: false,
            impact_options: ImpactOptions::default(),
            evaluate_baseline: true,
        }
    }
}

impl Pipeline {
    /// A pipeline that also runs the Figure 2 sweep.
    pub fn with_impact(top_k: usize, source_cap: Option<usize>) -> Self {
        Pipeline {
            run_impact: true,
            impact_options: ImpactOptions { top_k, source_cap },
            ..Default::default()
        }
    }

    /// Run the full measurement and produce a [`Report`].
    pub fn run(&self, input: PipelineInput) -> Report {
        let PipelineInput { snapshot, dictionary, truth } = input;

        // 1. Extraction.
        let data = extract(&snapshot);

        // 2. Communities-based inference.
        let mut inference = CommunityInference::from_snapshot(&snapshot, &dictionary);

        // 3. LocPrf Rosetta Stone.
        if self.use_locpref {
            let mut rosetta = LocPrfRosetta::learn(&snapshot, &dictionary, &inference);
            rosetta.apply(&snapshot, &dictionary, &mut inference);
        }

        // 4. Hybrid detection and visibility.
        let hybrids = detect_hybrids(&data, &inference);

        // 5. Valley analysis on the IPv6 plane, against the inferred
        //    relationships.
        let mut annotated = data.graph.clone();
        inference.annotate_graph(&mut annotated);
        let valleys = analyze_valleys(&data, &annotated, IpVersion::V6);

        // 6. Dataset summary.
        let dual_stack_classified_both = data
            .graph
            .dual_stack_edges()
            .filter(|e| {
                inference.relationship(e.a, e.b, IpVersion::V4).is_some()
                    && inference.relationship(e.a, e.b, IpVersion::V6).is_some()
            })
            .count();
        let dataset = DatasetSummary {
            ipv6_paths: data.paths_v6.len(),
            ipv4_paths: data.paths_v4.len(),
            ipv6_entries: data.entries_v6,
            ipv4_entries: data.entries_v4,
            ipv6_links: data.link_count(IpVersion::V6),
            ipv4_links: data.link_count(IpVersion::V4),
            dual_stack_links: data.dual_stack_link_count(),
            ipv6_links_classified: inference.inferred_link_count(IpVersion::V6),
            dual_stack_links_classified: dual_stack_classified_both,
            ipv6_links_from_communities: inference
                .inferred_by_source(IpVersion::V6, InferenceSource::Communities),
            ipv6_links_from_locpref: inference
                .inferred_by_source(IpVersion::V6, InferenceSource::LocalPref),
            conflicted_links: inference.conflicted_links,
            dictionary_size: dictionary.len(),
        };

        // 7. Baseline (Gao) inference: both for accuracy evaluation and as
        //    the misinferred starting point of the Figure 2 sweep.
        let baseline = gao_inference(&data, BaselineInput::BothPlanes);
        let (baseline_accuracy_v4, baseline_accuracy_v6) = match (&truth, self.evaluate_baseline) {
            (Some(truth), true) => (
                Some(InferenceAccuracy::evaluate(&baseline, &truth.graph, IpVersion::V4)),
                Some(InferenceAccuracy::evaluate(&baseline, &truth.graph, IpVersion::V6)),
            ),
            _ => (None, None),
        };

        // 8. Figure 2 sweep: start from the plane-blind annotation (the
        //    IPv4-derived relationship applied to the IPv6 plane, which is
        //    what the pre-existing datasets encode) and correct the most
        //    visible hybrid links with their community-derived IPv6
        //    relationship.
        let impact = if self.run_impact {
            let misinferred =
                crate::impact::plane_blind_annotation(&data.graph, &inference, &baseline);
            Some(correction_sweep(&misinferred, &hybrids.findings, &self.impact_options))
        } else {
            None
        };

        Report { dataset, hybrids, valleys, impact, baseline_accuracy_v4, baseline_accuracy_v6 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routesim::{Scenario, SimConfig};
    use topogen::TopologyConfig;

    fn scenario() -> routesim::Scenario {
        Scenario::build(&TopologyConfig::tiny(), &SimConfig::small())
    }

    #[test]
    fn pipeline_runs_end_to_end_on_a_simulated_scenario() {
        let scenario = scenario();
        let report = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        assert!(report.dataset.ipv6_paths > 0);
        assert!(report.dataset.ipv6_links > 0);
        assert!(report.dataset.dual_stack_links > 0);
        assert!(report.dataset.ipv6_links_classified > 0);
        assert!(report.dataset.ipv6_coverage() > 0.2, "{}", report.dataset.ipv6_coverage());
        assert!(report.dataset.ipv6_coverage() <= 1.0);
        // Dual-stack coverage should not be lower than... it usually exceeds
        // overall v6 coverage, but at minimum it is a valid fraction.
        assert!(report.dataset.dual_stack_coverage() <= 1.0);
        assert!(report.baseline_accuracy_v4.is_some());
        assert!(report.baseline_accuracy_v6.is_some());
        assert!(report.impact.is_none());
        // The display and JSON forms render without panicking.
        assert!(!report.to_string().is_empty());
        assert!(report.to_json().contains("dataset"));
    }

    #[test]
    fn detected_hybrids_match_ground_truth_relationships() {
        let scenario = scenario();
        let report = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        // Every detected hybrid whose relationships we compare against the
        // ground truth must agree with it (communities never lie in the
        // simulator; coverage, not correctness, is the limiting factor).
        for finding in &report.hybrids.findings {
            let truth_pair = scenario.truth.relationship_pair(finding.a, finding.b).unwrap();
            assert_eq!(
                finding.relationships, truth_pair,
                "hybrid {}-{} disagrees with ground truth",
                finding.a, finding.b
            );
        }
    }

    #[test]
    fn locpref_extension_increases_or_preserves_coverage() {
        let scenario = scenario();
        let with = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        let without = Pipeline { use_locpref: false, ..Default::default() }
            .run(PipelineInput::from_scenario(&scenario));
        assert!(with.dataset.ipv6_links_classified >= without.dataset.ipv6_links_classified);
        assert_eq!(without.dataset.ipv6_links_from_locpref, 0);
    }

    #[test]
    fn impact_sweep_is_produced_when_requested() {
        let scenario = scenario();
        let pipeline = Pipeline::with_impact(5, Some(64));
        let report = pipeline.run(PipelineInput::from_scenario(&scenario));
        let curve = report.impact.expect("impact requested");
        assert!(!curve.steps.is_empty());
        assert_eq!(curve.steps[0].corrected, 0);
        assert!(curve.steps.len() <= 6);
    }

    #[test]
    fn pipeline_from_files_round_trips_through_disk() {
        let scenario = scenario();
        let dir = std::env::temp_dir().join(format!("hybrid-tor-pipeline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mrt_paths = scenario.write_mrt_files(&dir).unwrap();
        let registry_path = dir.join("irr.txt");
        scenario.registry.save(&registry_path).unwrap();

        let input = PipelineInput::from_files(&mrt_paths, &registry_path).unwrap();
        let from_disk = Pipeline::default().run(input);
        let in_memory = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        // LocPrf and communities survive the MRT round trip, so the headline
        // numbers match exactly.
        assert_eq!(from_disk.dataset.ipv6_links, in_memory.dataset.ipv6_links);
        assert_eq!(
            from_disk.dataset.ipv6_links_classified,
            in_memory.dataset.ipv6_links_classified
        );
        assert_eq!(from_disk.hybrids.findings.len(), in_memory.hybrids.findings.len());
        assert!(from_disk.baseline_accuracy_v4.is_none(), "no ground truth from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_surface_an_error() {
        let result = PipelineInput::from_files(&["/nonexistent/a.mrt"], "/nonexistent/irr.txt");
        assert!(result.is_err());
    }
}
