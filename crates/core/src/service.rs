//! Query-facing resident state: everything `hybridd` needs to answer
//! point queries without re-running the pipeline.
//!
//! A [`ResidentState`] is built **once** from a scenario (one
//! [`Pipeline::run_with_artifacts`] — the same work a one-shot experiment
//! does) and then answers relationship, customer-tree, visibility and
//! what-if queries for as long as the process lives. The storage is
//! arena-backed and flat on purpose: a snapshot is a handful of large
//! allocations (the frozen CSR graph, one [`SliceArena`] of every distinct
//! IPv6 path, two [`LabelArena`] strides of hot-root BFS labels), cheap to
//! share behind an `Arc` and cheap to account — [`ResidentState::memory`]
//! reports the per-component bytes the bench gauges record.
//!
//! Every query method is a pure function of the query: the only mutable
//! state is the what-if scratch graph, which is mutated and restored under
//! a lock, so concurrent query execution in any order produces
//! byte-identical responses (the service determinism suite pins this).

use std::collections::HashMap;
use std::sync::Mutex;

use asgraph::{
    customer_tree, AsGraph, DeltaOutcome, DistanceMap, EdgeCorrection, LabelArena, RemovalPolicy,
    SliceArena,
};
use bgp_types::{Asn, IpVersion, Relationship};

use crate::pipeline::{Pipeline, PipelineInput};
use crate::report::Report;

/// How many of the highest-degree ASes per plane get precomputed BFS
/// label strides in the [`LabelArena`]. A what-if query rooted at a hot
/// AS copies its stride instead of running a fresh layered search.
pub const HOT_ROOTS: usize = 32;

/// Per-component byte estimate of one resident snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMemory {
    /// Adjacency-map backend of the annotated graph.
    pub graph_map_bytes: u64,
    /// Frozen CSR mirror of the annotated graph (0 while thawed).
    pub graph_csr_bytes: u64,
    /// Flattened per-origin RIB path arena.
    pub rib_arena_bytes: u64,
    /// Precomputed hot-root BFS label arenas (both planes).
    pub label_arena_bytes: u64,
}

impl ServiceMemory {
    /// Total bytes across all components.
    pub fn total(&self) -> u64 {
        self.graph_map_bytes + self.graph_csr_bytes + self.rib_arena_bytes + self.label_arena_bytes
    }
}

/// Per-AS path-visibility statistics on the IPv6 plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VisibilityStats {
    /// Distinct IPv6 paths the AS appears on (origin included).
    pub paths_through: u32,
    /// Distinct IPv6 paths the AS originates (last hop).
    pub originated: u32,
    /// Total distinct IPv6 paths in the snapshot.
    pub total_paths: u32,
    /// Hybrid findings incident to the AS.
    pub hybrid_incident: u32,
}

/// The answer to a what-if single-link correction query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhatIfReply {
    /// How the delta engine resolved the correction.
    pub outcome: DeltaOutcome,
    /// Nodes whose shortest valley-free distance from the root changed.
    pub changed: u32,
    /// Valley-free-reachable nodes before the correction.
    pub reachable_before: u32,
    /// Valley-free-reachable nodes after the correction.
    pub reachable_after: u32,
}

/// One scenario's analysis products, flattened for resident serving.
#[derive(Debug)]
pub struct ResidentState {
    report: Report,
    report_json: String,
    summary_json: String,
    annotated: AsGraph,
    universe: Vec<Asn>,
    hybrid_pairs: Vec<(Asn, Asn)>,
    visibility: Vec<(Asn, VisibilityStats)>,
    total_v6_paths: u32,
    paths: SliceArena<Asn>,
    labels: [LabelArena; 2],
    scratch: Mutex<AsGraph>,
    memory: ServiceMemory,
}

impl ResidentState {
    /// Run `pipeline` on `scenario` once and flatten the artifacts into a
    /// resident snapshot. This is the only expensive call in the module —
    /// everything else answers from the state it builds.
    pub fn build(scenario: &routesim::Scenario, pipeline: &Pipeline) -> Self {
        let input = PipelineInput::from_scenario_with(scenario, &pipeline.options);
        Self::from_input(input, pipeline)
    }

    /// [`build`](Self::build) from an already-assembled input — the shape
    /// a streaming daemon uses: it keeps a [`crate::ingest::LiveRib`]
    /// resident, applies an update window, and rebuilds the snapshot from
    /// the live table instead of re-propagating a scenario.
    pub fn from_input(input: PipelineInput, pipeline: &Pipeline) -> Self {
        let (report, artifacts) = pipeline.run_with_artifacts(input);
        let annotated = artifacts.annotated;

        // Flatten every distinct IPv6 path into one arena (extraction
        // already sorted them, so ids are deterministic) and fold the
        // per-AS visibility counters while walking it.
        let mut paths = SliceArena::new();
        let mut vis: HashMap<Asn, VisibilityStats> = HashMap::new();
        let total_v6_paths = u32::try_from(artifacts.data.paths_v6.len())
            .expect("IPv6 path count exceeds u32 range");
        let mut members = Vec::new();
        for observed in &artifacts.data.paths_v6 {
            paths.push(&observed.path);
            members.clear();
            members.extend_from_slice(&observed.path);
            members.sort_unstable();
            members.dedup();
            for &asn in &members {
                vis.entry(asn).or_default().paths_through += 1;
            }
            if let Some(&origin) = observed.path.last() {
                vis.entry(origin).or_default().originated += 1;
            }
        }
        for finding in &report.hybrids.findings {
            for asn in [finding.a, finding.b] {
                vis.entry(asn).or_default().hybrid_incident += 1;
            }
        }
        let mut visibility: Vec<(Asn, VisibilityStats)> = vis
            .into_iter()
            .map(|(asn, mut stats)| {
                stats.total_paths = total_v6_paths;
                (asn, stats)
            })
            .collect();
        visibility.sort_unstable_by_key(|(asn, _)| *asn);
        paths.shrink_to_fit();

        // Hot roots: the highest-degree ASes per plane (degree descending,
        // ASN ascending as the tie-break — fully deterministic).
        let labels = [IpVersion::V4, IpVersion::V6].map(|plane| {
            let mut by_degree: Vec<(usize, Asn)> =
                annotated.asns().map(|asn| (annotated.degree(asn, plane), asn)).collect();
            by_degree.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let hot: Vec<Asn> = by_degree.into_iter().take(HOT_ROOTS).map(|(_, a)| a).collect();
            LabelArena::build(&annotated, plane, &hot)
        });

        let mut universe: Vec<Asn> = annotated.asns().collect();
        universe.sort_unstable();
        let hybrid_pairs: Vec<(Asn, Asn)> =
            report.hybrids.findings.iter().map(|f| (f.a, f.b)).collect();

        let breakdown = annotated.memory_breakdown();
        let memory = ServiceMemory {
            graph_map_bytes: breakdown.map_bytes as u64,
            graph_csr_bytes: breakdown.csr_bytes as u64,
            rib_arena_bytes: paths.heap_bytes() as u64,
            label_arena_bytes: labels.iter().map(|l| l.heap_bytes() as u64).sum(),
        };

        let report_json = report.to_json();
        let summary_json =
            serde_json::to_string_pretty(&report.dataset).expect("summary serializes");
        let scratch = Mutex::new(annotated.clone());
        ResidentState {
            report,
            report_json,
            summary_json,
            annotated,
            universe,
            hybrid_pairs,
            visibility,
            total_v6_paths,
            paths,
            labels,
            scratch,
            memory,
        }
    }

    /// The report of the pipeline run the snapshot was built from.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// The report rendered as pretty JSON (precomputed; byte-identical to
    /// `Report::to_json` on a fresh run of the same scenario).
    pub fn report_json(&self) -> &str {
        &self.report_json
    }

    /// The dataset summary rendered as pretty JSON.
    pub fn summary_json(&self) -> &str {
        &self.summary_json
    }

    /// Every AS in the snapshot, sorted ascending.
    pub fn universe(&self) -> &[Asn] {
        &self.universe
    }

    /// The hybrid findings as `(a, b)` pairs, in report order (visibility
    /// descending).
    pub fn hybrid_pairs(&self) -> &[(Asn, Asn)] {
        &self.hybrid_pairs
    }

    /// The flattened distinct-IPv6-path arena.
    pub fn paths(&self) -> &SliceArena<Asn> {
        &self.paths
    }

    /// Per-component byte estimate of this snapshot.
    pub fn memory(&self) -> ServiceMemory {
        self.memory
    }

    /// The inferred relationship `a → b` on `plane`, from the annotated
    /// graph the valley analysis walked (`None` when the link is absent or
    /// unclassified).
    pub fn relationship(&self, a: Asn, b: Asn, plane: IpVersion) -> Option<Relationship> {
        self.annotated.relationship(a, b, plane)
    }

    /// The customer tree of `root` on `plane`, sorted ascending (empty
    /// when the root is unknown or has no customers).
    pub fn customer_tree(&self, root: Asn, plane: IpVersion) -> Vec<Asn> {
        customer_tree(&self.annotated, root, plane)
    }

    /// Per-AS IPv6 visibility statistics (all-zero — except the total —
    /// for ASes that appear on no path).
    pub fn visibility(&self, asn: Asn) -> VisibilityStats {
        match self.visibility.binary_search_by_key(&asn, |(a, _)| *a) {
            Ok(i) => self.visibility[i].1,
            Err(_) => {
                VisibilityStats { total_paths: self.total_v6_paths, ..VisibilityStats::default() }
            }
        }
    }

    /// Answer a what-if single-link correction: with the `a`–`b`
    /// relationship on `plane` set to `new`, how do the shortest
    /// valley-free distances from `root` change?
    ///
    /// Rides the delta engine as a point-query accelerator: the pre-change
    /// distance map comes from the hot-root [`LabelArena`] when the root
    /// is precomputed (a stride copy, no BFS), and the correction is
    /// applied with [`RemovalPolicy::Repair`], so a full rebuild only
    /// happens when [`DeltaOutcome`] genuinely demands one. The scratch
    /// graph is mutated and restored under a lock; the snapshot itself is
    /// never changed.
    pub fn what_if(
        &self,
        a: Asn,
        b: Asn,
        plane: IpVersion,
        new: Relationship,
        root: Asn,
    ) -> Result<WhatIfReply, String> {
        let mut g = self.scratch.lock().expect("what-if scratch lock poisoned");
        if !g.contains(root) {
            return Err(format!("unknown root AS{root}"));
        }
        if !g.has_link(a, b, plane) {
            return Err(format!("no {plane} link between AS{a} and AS{b}"));
        }
        let plane_idx = match plane {
            IpVersion::V4 => 0,
            IpVersion::V6 => 1,
        };
        let before = self.labels[plane_idx]
            .distance_map(root)
            .unwrap_or_else(|| DistanceMap::compute(&g, root, plane));
        let before_dists: Vec<Option<u32>> = before.distances().to_vec();

        let old = g.relationship(a, b, plane);
        let correction = EdgeCorrection::observe(&g, a, b, plane, new);
        g.annotate(a, b, plane, new);
        let mut map = before;
        let outcome = map.apply_correction_with(&g, &correction, RemovalPolicy::Repair);

        // Restore the scratch graph exactly (annotation-only mutations, so
        // a frozen mirror stays frozen and in sync).
        match old {
            Some(rel) => {
                g.annotate(a, b, plane, rel);
            }
            None => g.clear_relationship(a, b, plane),
        }

        let after_dists = map.distances();
        let changed =
            before_dists.iter().zip(after_dists).filter(|(before, after)| before != after).count();
        let count_reachable =
            |d: &[Option<u32>]| u32::try_from(d.iter().filter(|d| d.is_some()).count()).unwrap();
        Ok(WhatIfReply {
            outcome,
            changed: u32::try_from(changed).expect("node count exceeds u32 range"),
            reachable_before: count_reachable(&before_dists),
            reachable_after: count_reachable(after_dists),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routesim::{Scenario, SimConfig};
    use topogen::TopologyConfig;

    fn resident() -> (Scenario, ResidentState) {
        let scenario = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        let state = ResidentState::build(&scenario, &Pipeline::default());
        (scenario, state)
    }

    #[test]
    fn resident_state_matches_a_fresh_pipeline_run() {
        let (scenario, state) = resident();
        let fresh = Pipeline::default().run(PipelineInput::from_scenario(&scenario));
        assert_eq!(state.report_json(), fresh.to_json(), "one build, same bytes");
        assert!(state.summary_json().contains("ipv6_paths"));
        assert!(!state.universe().is_empty());
        assert!(state.memory().total() > 0);
        assert!(state.memory().rib_arena_bytes > 0);
        assert!(state.memory().label_arena_bytes > 0);
        assert_eq!(state.paths().len() as u32, state.visibility(state.universe()[0]).total_paths);
    }

    #[test]
    fn queries_answer_from_the_annotated_graph() {
        let (_, state) = resident();
        // Every hybrid pair has a classified relationship on both planes.
        for &(a, b) in state.hybrid_pairs() {
            assert!(state.relationship(a, b, IpVersion::V4).is_some());
            assert!(state.relationship(a, b, IpVersion::V6).is_some());
        }
        // Customer trees are sorted and exclude the root.
        let root = state.universe()[0];
        let tree = state.customer_tree(root, IpVersion::V6);
        assert!(tree.windows(2).all(|w| w[0] < w[1]));
        assert!(!tree.contains(&root));
        // Unknown ASes still answer (empty / zero) rather than panic.
        assert!(state.customer_tree(Asn(4_000_000_000), IpVersion::V6).is_empty());
        assert_eq!(state.visibility(Asn(4_000_000_000)).paths_through, 0);
    }

    #[test]
    fn visibility_counts_are_consistent() {
        let (scenario, state) = resident();
        let input = PipelineInput::from_scenario(&scenario);
        let data = crate::extract::extract(&input.snapshot);
        for &asn in state.universe().iter().take(50) {
            let expected = data.paths_v6.iter().filter(|p| p.path.contains(&asn)).count();
            assert_eq!(state.visibility(asn).paths_through as usize, expected, "AS{asn}");
        }
    }

    #[test]
    fn what_if_is_exact_and_leaves_no_trace() {
        let (_, state) = resident();
        let &(a, b) = state.hybrid_pairs().first().expect("tiny scenario has hybrids");
        let root = state.universe()[0];
        let before = state.relationship(a, b, IpVersion::V6);
        for new in Relationship::ALL {
            let reply = state.what_if(a, b, IpVersion::V6, new, root).expect("link exists");
            // Cross-check against a from-scratch recomputation.
            let mut g = state.scratch.lock().unwrap().clone();
            g.annotate(a, b, IpVersion::V6, new);
            let fresh = DistanceMap::compute(&g, root, IpVersion::V6);
            let reachable =
                u32::try_from(fresh.distances().iter().filter(|d| d.is_some()).count()).unwrap();
            assert_eq!(reply.reachable_after, reachable, "{new:?}");
        }
        // The scratch graph is restored after every query.
        assert_eq!(state.relationship(a, b, IpVersion::V6), before);
        let scratch_rel = state.scratch.lock().unwrap().relationship(a, b, IpVersion::V6);
        assert_eq!(scratch_rel, before);
        // Errors for unknown roots and absent links.
        assert!(state
            .what_if(a, b, IpVersion::V6, Relationship::PeerToPeer, Asn(4_000_000_000))
            .is_err());
        assert!(state
            .what_if(Asn(4_000_000_000), b, IpVersion::V6, Relationship::PeerToPeer, root)
            .is_err());
    }

    #[test]
    fn what_if_uses_delta_repair_when_permitted() {
        let (_, state) = resident();
        let &(a, b) = state.hybrid_pairs().first().expect("tiny scenario has hybrids");
        let root = state.universe()[0];
        let current = state.relationship(a, b, IpVersion::V6).expect("hybrids are classified");
        // Re-asserting the current relationship removes no transitions, so
        // the delta engine must not fall back to a full rebuild.
        let reply = state.what_if(a, b, IpVersion::V6, current, root).expect("link exists");
        assert_ne!(reply.outcome, DeltaOutcome::FullRebuild, "no-op correction forced a rebuild");
        assert_eq!(reply.changed, 0);
        assert_eq!(reply.reachable_before, reply.reachable_after);
    }
}
