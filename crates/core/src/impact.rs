//! Customer-tree impact analysis (Figure 2 of the paper).
//!
//! The experiment starts from a *misinferred* IPv6 annotation (what a
//! plane-blind baseline produces), ranks the detected hybrid links by
//! their visibility in IPv6 paths, and corrects them one by one with the
//! community-derived relationship. After each correction it recomputes
//! the average shortest valley-free path length and the diameter over the
//! union of IPv6 customer trees. The paper reports the average falling
//! from 3.8 to 2.23 hops and the diameter from 11 to 7 as the 20 most
//! visible hybrid links are corrected.

use serde::{Deserialize, Serialize};

use asgraph::customer_tree::{tree_union_metrics, TreeMetrics};
use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, Relationship};

use crate::hybrid::HybridFinding;

/// One point of the Figure 2 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrectionStep {
    /// How many hybrid links have been corrected (0 = baseline).
    pub corrected: usize,
    /// The link corrected at this step, if any.
    pub link: Option<(Asn, Asn)>,
    /// Average shortest valley-free path length over the tree union.
    pub avg_path_length: f64,
    /// Diameter of the shortest valley-free paths over the tree union.
    pub diameter: u32,
    /// Fraction of ordered union pairs that are valley-free reachable.
    pub reachability: f64,
}

/// The full correction curve.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ImpactCurve {
    /// The per-step metrics, starting with the uncorrected baseline.
    pub steps: Vec<CorrectionStep>,
}

impl ImpactCurve {
    /// The baseline (0 corrections) step.
    pub fn baseline(&self) -> Option<&CorrectionStep> {
        self.steps.first()
    }

    /// The final (all corrections applied) step.
    pub fn r#final(&self) -> Option<&CorrectionStep> {
        self.steps.last()
    }

    /// Change in average path length from baseline to final.
    pub fn avg_path_delta(&self) -> f64 {
        match (self.baseline(), self.r#final()) {
            (Some(b), Some(f)) => f.avg_path_length - b.avg_path_length,
            _ => 0.0,
        }
    }

    /// Change in diameter from baseline to final.
    pub fn diameter_delta(&self) -> i64 {
        match (self.baseline(), self.r#final()) {
            (Some(b), Some(f)) => i64::from(f.diameter) - i64::from(b.diameter),
            _ => 0,
        }
    }
}

/// Build the *plane-blind* annotation that existing ToR datasets effectively
/// ship: one relationship per link, applied to both planes. For every link
/// observed in `data_graph`, the IPv4 relationship inferred from communities
/// is used when available (that is what the historical, IPv4-dominated
/// datasets encode), falling back to the plane-blind baseline heuristic.
/// On hybrid links this is precisely the misinference the paper corrects.
pub fn plane_blind_annotation(
    data_graph: &AsGraph,
    inference: &crate::communities::CommunityInference,
    baseline: &crate::baselines::BaselineInference,
) -> AsGraph {
    let mut graph = data_graph.clone();
    for edge in data_graph.edges() {
        let rel = inference
            .relationship(edge.a, edge.b, IpVersion::V4)
            .or_else(|| inference.relationship(edge.a, edge.b, IpVersion::V6))
            .or_else(|| baseline.relationship(edge.a, edge.b));
        if let Some(rel) = rel {
            for plane in IpVersion::BOTH {
                if edge.present(plane) {
                    graph.annotate(edge.a, edge.b, plane, rel);
                }
            }
        }
    }
    graph
}

/// Options for the correction sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpactOptions {
    /// How many of the most-visible hybrid links to correct.
    pub top_k: usize,
    /// Optional cap on the number of BFS sources used for the tree-union
    /// metrics (see [`tree_union_metrics`]); `None` = exact computation.
    pub source_cap: Option<usize>,
}

impl Default for ImpactOptions {
    fn default() -> Self {
        ImpactOptions { top_k: 20, source_cap: None }
    }
}

/// Run the correction sweep on the IPv6 plane.
///
/// * `misinferred` — a graph whose IPv6 annotation comes from the
///   plane-blind inference (see [`plane_blind_annotation`]); it is cloned,
///   not modified.
/// * `hybrids` — the detected hybrid links, already sorted by descending
///   IPv6 path visibility (as [`crate::hybrid::HybridReport`] returns them).
///   For each corrected link the IPv6 relationship is replaced with the
///   hybrid finding's IPv6 relationship (the community-derived value).
///
/// As in the paper, the union of customer trees and the pair population
/// are fixed by the *baseline* annotation: `avg_path_length` and
/// `diameter` are computed over the ordered union pairs that were
/// valley-free reachable before any correction, so the curve shows how the
/// corrections shorten those paths (pairs that only become reachable
/// thanks to a correction are reflected in `reachability`, which is
/// measured over all ordered union pairs).
pub fn correction_sweep(
    misinferred: &AsGraph,
    hybrids: &[HybridFinding],
    options: &ImpactOptions,
) -> ImpactCurve {
    use asgraph::customer_tree::customer_tree_union;
    use asgraph::valley::valley_free_distances;

    let mut graph = misinferred.clone();
    let mut curve = ImpactCurve::default();

    // Fix the union, the sources and the baseline-reachable pair set.
    let mut union = customer_tree_union(&graph, IpVersion::V6);
    union.sort();
    if union.len() < 2 {
        // Degenerate graph: fall back to the plain metric so the curve is
        // still well-formed.
        let metrics: TreeMetrics = tree_union_metrics(&graph, IpVersion::V6, options.source_cap);
        curve.steps.push(CorrectionStep {
            corrected: 0,
            link: None,
            avg_path_length: metrics.avg_path_length,
            diameter: metrics.diameter,
            reachability: metrics.reachability(),
        });
        return curve;
    }
    let mut in_union = vec![false; graph.node_count()];
    for asn in &union {
        in_union[graph.node(*asn).unwrap().index()] = true;
    }
    let sources: Vec<Asn> = match options.source_cap {
        Some(cap) if cap < union.len() => union.iter().copied().take(cap).collect(),
        _ => union.clone(),
    };
    let baseline_reachable: Vec<Vec<bool>> = sources
        .iter()
        .map(|&src| {
            valley_free_distances(&graph, src, IpVersion::V6).iter().map(|d| d.is_some()).collect()
        })
        .collect();

    let record = |graph: &AsGraph, corrected: usize, link: Option<(Asn, Asn)>| {
        let mut sum = 0u64;
        let mut count = 0u64;
        let mut diameter = 0u32;
        let mut reachable_now = 0u64;
        let mut total_pairs = 0u64;
        for (si, &src) in sources.iter().enumerate() {
            let dist = valley_free_distances(graph, src, IpVersion::V6);
            let src_idx = graph.node(src).unwrap().index();
            for (idx, d) in dist.iter().enumerate() {
                if idx == src_idx || !in_union[idx] {
                    continue;
                }
                total_pairs += 1;
                if d.is_some() {
                    reachable_now += 1;
                }
                if baseline_reachable[si][idx] {
                    if let Some(d) = d {
                        sum += u64::from(*d);
                        count += 1;
                        diameter = diameter.max(*d);
                    }
                }
            }
        }
        CorrectionStep {
            corrected,
            link,
            avg_path_length: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            diameter,
            reachability: if total_pairs == 0 {
                0.0
            } else {
                reachable_now as f64 / total_pairs as f64
            },
        }
    };

    curve.steps.push(record(&graph, 0, None));
    for (i, finding) in hybrids.iter().take(options.top_k).enumerate() {
        let corrected_rel: Relationship = finding.relationships.v6;
        graph.annotate(finding.a, finding.b, IpVersion::V6, corrected_rel);
        curve.steps.push(record(&graph, i + 1, Some((finding.a, finding.b))));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::RelationshipPair;
    use topogen::HybridClass;

    /// A topology where the 10-20 link is misinferred as p2p on IPv6 while
    /// the community-derived relationship is p2c (10 provides free v6
    /// transit to 20). Stubs hang off both sides, plus a grandparent so
    /// paths must descend through 10.
    fn misinferred_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate(Asn(10), Asn(20), IpVersion::V6, Relationship::PeerToPeer);
        g.annotate(Asn(10), Asn(20), IpVersion::V4, Relationship::PeerToPeer);
        for (p, c) in [(9, 10), (9, 8), (10, 30), (20, 41), (20, 42), (30, 50)] {
            g.annotate_both(Asn(p), Asn(c), Relationship::ProviderToCustomer);
        }
        g
    }

    fn finding() -> HybridFinding {
        HybridFinding {
            a: Asn(10),
            b: Asn(20),
            relationships: RelationshipPair::new(
                Relationship::PeerToPeer,
                Relationship::ProviderToCustomer,
            ),
            class: HybridClass::PeeringV4TransitV6,
            v6_path_visibility: 10,
        }
    }

    #[test]
    fn sweep_records_baseline_plus_one_step_per_correction() {
        let curve = correction_sweep(&misinferred_graph(), &[finding()], &ImpactOptions::default());
        assert_eq!(curve.steps.len(), 2);
        assert_eq!(curve.steps[0].corrected, 0);
        assert_eq!(curve.steps[0].link, None);
        assert_eq!(curve.steps[1].corrected, 1);
        assert_eq!(curve.steps[1].link, Some((Asn(10), Asn(20))));
        assert!(curve.baseline().is_some());
        assert!(curve.r#final().is_some());
    }

    #[test]
    fn correcting_the_hybrid_link_improves_reachability() {
        let curve = correction_sweep(&misinferred_graph(), &[finding()], &ImpactOptions::default());
        let baseline = curve.baseline().unwrap();
        let fixed = curve.r#final().unwrap();
        // With 10-20 as p2p, routes that descend from AS9 into AS10 cannot
        // continue into AS20's customers; correcting it to p2c repairs that.
        assert!(fixed.reachability > baseline.reachability);
        // The avg/diameter are computed over the pairs reachable at the
        // baseline, so a correction can only keep them or shorten them.
        assert!(curve.avg_path_delta() <= 0.0);
        assert!(curve.diameter_delta() <= 0);
    }

    #[test]
    fn top_k_limits_the_number_of_corrections() {
        let findings = vec![finding(), finding(), finding()];
        let options = ImpactOptions { top_k: 2, source_cap: None };
        let curve = correction_sweep(&misinferred_graph(), &findings, &options);
        assert_eq!(curve.steps.len(), 3); // baseline + 2
    }

    #[test]
    fn empty_findings_yield_a_flat_single_point_curve() {
        let curve = correction_sweep(&misinferred_graph(), &[], &ImpactOptions::default());
        assert_eq!(curve.steps.len(), 1);
        assert_eq!(curve.avg_path_delta(), 0.0);
        assert_eq!(curve.diameter_delta(), 0);
    }

    #[test]
    fn original_graph_is_not_modified() {
        let graph = misinferred_graph();
        let before = graph.relationship(Asn(10), Asn(20), IpVersion::V6);
        let _ = correction_sweep(&graph, &[finding()], &ImpactOptions::default());
        assert_eq!(graph.relationship(Asn(10), Asn(20), IpVersion::V6), before);
    }
}
