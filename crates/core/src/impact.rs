//! Customer-tree impact analysis (Figure 2 of the paper).
//!
//! The experiment starts from a *misinferred* IPv6 annotation (what a
//! plane-blind baseline produces), ranks the detected hybrid links by
//! their visibility in IPv6 paths, and corrects them one by one with the
//! community-derived relationship. After each correction it recomputes
//! the average shortest valley-free path length and the diameter over the
//! union of IPv6 customer trees. The paper reports the average falling
//! from 3.8 to 2.23 hops and the diameter from 11 to 7 as the 20 most
//! visible hybrid links are corrected.
//!
//! The sweep is the most expensive part of the pipeline (one valley-free
//! BFS per union member per correction step), so it runs on a two-tier
//! skip/delta engine on top of the workspace's sharded execution layer:
//!
//! 1. **Skip tier** — the [`SweepCache`] memo: a source whose valley-free
//!    reachable set touches neither endpoint of the corrected link
//!    provably keeps the same distance map, so its metrics are reused
//!    without touching the BFS state at all.
//! 2. **Delta tier** — sources that *do* touch the link keep a reusable
//!    [`asgraph::delta::DistanceMap`] and repair it incrementally
//!    (frontier re-expansion over the affected region, with a proven
//!    fallback to a full BFS when the delta cannot be bounded) instead of
//!    recomputing from scratch. `SweepOptions::incremental` switches this
//!    tier off, degrading dirty sources to full recomputation.
//!
//! Per-source work is striped across workers with [`routesim::shard_map`]
//! / [`routesim::shard_map_owned`]. Whatever the worker count, cache and
//! incremental settings, the produced [`ImpactCurve`] is byte-identical
//! to the sequential, uncached, fully recomputing sweep (distance maps
//! are a unique fixed point and all accumulation is integer arithmetic
//! combined in source order; the determinism suite enforces the
//! contract).

use std::fmt;

use serde::{Deserialize, Serialize};

use asgraph::customer_tree::{customer_tree_union, tree_union_metrics, TreeMetrics};
use asgraph::delta::{DeltaOutcome, DistanceMap, EdgeCorrection, RemovalPolicy};
use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, Relationship};
use routesim::{effective_concurrency, shard_map, shard_map_owned};

use crate::hybrid::HybridFinding;

/// One point of the Figure 2 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrectionStep {
    /// How many hybrid links have been corrected (0 = baseline).
    pub corrected: usize,
    /// The link corrected at this step, if any.
    pub link: Option<(Asn, Asn)>,
    /// Average shortest valley-free path length over the tree union.
    pub avg_path_length: f64,
    /// Diameter of the shortest valley-free paths over the tree union.
    pub diameter: u32,
    /// Fraction of ordered union pairs that are valley-free reachable.
    pub reachability: f64,
}

/// The full correction curve.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ImpactCurve {
    /// The per-step metrics, starting with the uncorrected baseline.
    pub steps: Vec<CorrectionStep>,
}

impl ImpactCurve {
    /// The baseline (0 corrections) step.
    pub fn baseline(&self) -> Option<&CorrectionStep> {
        self.steps.first()
    }

    /// The final (all corrections applied) step.
    pub fn r#final(&self) -> Option<&CorrectionStep> {
        self.steps.last()
    }

    /// Change in average path length from baseline to final. An empty
    /// curve (no steps at all) and a single-step curve (baseline only)
    /// both report `0.0`.
    pub fn avg_path_delta(&self) -> f64 {
        match (self.baseline(), self.r#final()) {
            (Some(b), Some(f)) => f.avg_path_length - b.avg_path_length,
            _ => 0.0,
        }
    }

    /// Change in diameter from baseline to final. An empty curve and a
    /// single-step curve both report `0`.
    pub fn diameter_delta(&self) -> i64 {
        match (self.baseline(), self.r#final()) {
            (Some(b), Some(f)) => i64::from(f.diameter) - i64::from(b.diameter),
            _ => 0,
        }
    }
}

/// Build the *plane-blind* annotation that existing ToR datasets effectively
/// ship: one relationship per link, applied to both planes. For every link
/// observed in `data_graph`, the IPv4 relationship inferred from communities
/// is used when available (that is what the historical, IPv4-dominated
/// datasets encode), falling back to the plane-blind baseline heuristic.
/// On hybrid links this is precisely the misinference the paper corrects.
pub fn plane_blind_annotation(
    data_graph: &AsGraph,
    inference: &crate::communities::CommunityInference,
    baseline: &crate::baselines::BaselineInference,
) -> AsGraph {
    plane_blind_annotation_with(data_graph, inference, baseline, 1)
}

/// [`plane_blind_annotation`] with an explicit worker count (`0` = all
/// cores, `1` = sequential): the per-link relationship lookups are striped
/// across workers and applied in edge order, so the annotated graph is
/// identical whatever the worker count.
pub fn plane_blind_annotation_with(
    data_graph: &AsGraph,
    inference: &crate::communities::CommunityInference,
    baseline: &crate::baselines::BaselineInference,
    concurrency: usize,
) -> AsGraph {
    let workers = effective_concurrency(concurrency);
    let mut graph = data_graph.clone();
    let edges: Vec<_> = data_graph.edges().collect();
    let rels: Vec<Option<Relationship>> = shard_map(&edges, workers, |edge| {
        inference
            .relationship(edge.a, edge.b, IpVersion::V4)
            .or_else(|| inference.relationship(edge.a, edge.b, IpVersion::V6))
            .or_else(|| baseline.relationship(edge.a, edge.b))
    });
    for (edge, rel) in edges.iter().zip(rels) {
        if let Some(rel) = rel {
            for plane in IpVersion::BOTH {
                if edge.present(plane) {
                    graph.annotate(edge.a, edge.b, plane, rel);
                }
            }
        }
    }
    graph
}

/// Options for the correction sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpactOptions {
    /// How many of the most-visible hybrid links to correct.
    pub top_k: usize,
    /// Optional cap on the number of BFS sources used for the tree-union
    /// metrics (see [`tree_union_metrics`]); `None` = exact computation.
    pub source_cap: Option<usize>,
}

impl Default for ImpactOptions {
    fn default() -> Self {
        ImpactOptions { top_k: 20, source_cap: None }
    }
}

/// Execution options for the impact subsystem: worker threads, the
/// cross-step memoization switch and the incremental delta-BFS switch.
/// None of the knobs affects the output — the curve is byte-identical at
/// every setting; they only trade wall-clock time and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Worker threads for the per-source BFS work: `0` uses all available
    /// parallelism, `1` is the sequential path.
    pub concurrency: usize,
    /// Reuse per-source propagation results across correction steps when a
    /// step provably cannot change them (see [`SweepCache`]).
    pub cache: bool,
    /// Repair dirty sources' distance maps incrementally (delta over the
    /// corrected edge) instead of recomputing the full BFS. Only effective
    /// together with `cache` (the delta engine lives on the memoized
    /// per-source state). Defaults to on; the experiment harness maps
    /// `HYBRID_INCREMENTAL=0` onto this knob.
    pub incremental: bool,
    /// Repair load-bearing removals in place
    /// ([`asgraph::delta::RemovalPolicy::Repair`]) instead of falling back
    /// to a full BFS. Only effective together with `incremental`. Defaults
    /// to off (the conservative historical fallback); the experiment
    /// harness maps `HYBRID_REMOVAL_REPAIR=1` onto this knob.
    pub removal_repair: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { concurrency: 0, cache: true, incremental: true, removal_repair: false }
    }
}

impl SweepOptions {
    /// The fully sequential, uncached, fully recomputing execution path —
    /// exactly the computation the pre-sharding implementation performed.
    pub fn sequential() -> Self {
        SweepOptions { concurrency: 1, cache: false, incremental: false, removal_repair: false }
    }

    /// Options pinned to `concurrency` worker threads, cache and
    /// incremental repair enabled (removal repair stays on its default).
    pub fn with_concurrency(concurrency: usize) -> Self {
        SweepOptions { concurrency, ..SweepOptions::default() }
    }

    /// These options with the incremental delta-BFS tier switched on or
    /// off (dirty sources recompute the full BFS when off).
    pub fn with_incremental(self, incremental: bool) -> Self {
        SweepOptions { incremental, ..self }
    }

    /// These options with in-place removal repair switched on or off.
    pub fn with_removal_repair(self, removal_repair: bool) -> Self {
        SweepOptions { removal_repair, ..self }
    }

    /// The policy the delta tier hands to
    /// [`asgraph::delta::DistanceMap::apply_correction_with`].
    pub fn removal_policy(&self) -> RemovalPolicy {
        if self.removal_repair {
            RemovalPolicy::Repair
        } else {
            RemovalPolicy::Rebuild
        }
    }

    /// The worker count these options resolve to (`0` = all cores).
    pub fn workers(&self) -> usize {
        effective_concurrency(self.concurrency)
    }
}

/// The metrics one BFS source contributes to a [`CorrectionStep`]. All
/// fields are integers, so combining partials is order-independent and the
/// parallel sweep reproduces the sequential accumulation bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SourcePartial {
    sum: u64,
    count: u64,
    diameter: u32,
    reachable_now: u64,
    total_pairs: u64,
}

/// Per-source memo: what the last BFS established (see [`SourceMemo`])
/// and the partial metrics it implied at that step.
#[derive(Debug, Clone, Default)]
struct SourceState {
    partial: SourcePartial,
    memo: SourceMemo,
}

/// What the memo keeps of a source's last BFS. The delta tier needs the
/// full repairable [`DistanceMap`] (per-phase labels, ~20 bytes/node);
/// with `incremental` off only the endpoint-reachability question is ever
/// asked again, so the memo degrades to the 1 byte/node bitmap the
/// pre-delta implementation stored.
#[derive(Debug, Clone)]
enum SourceMemo {
    /// Full per-phase labels, repairable in place (incremental on).
    Map(DistanceMap),
    /// Reachability bitmap only (incremental off).
    Reachable(Vec<bool>),
}

impl Default for SourceMemo {
    fn default() -> Self {
        SourceMemo::Reachable(Vec::new())
    }
}

impl SourceState {
    /// One full valley-free BFS from `src` plus the metric accumulation
    /// over the union pairs. `baseline_row` is the source's step-0
    /// reachability bitmap (the pair population is fixed by the baseline,
    /// as in the paper); `None` means "this *is* the baseline step", where
    /// the source's own map plays that role. `keep_map` decides whether
    /// the memo keeps the repairable labels or only the bitmap.
    fn compute(
        graph: &AsGraph,
        src: Asn,
        in_union: &[bool],
        baseline_row: Option<&[bool]>,
        keep_map: bool,
    ) -> SourceState {
        let dist = DistanceMap::compute(graph, src, IpVersion::V6);
        let partial = accumulate_partial(graph, &dist, in_union, baseline_row);
        let memo = if keep_map {
            SourceMemo::Map(dist)
        } else {
            SourceMemo::Reachable(dist.distances().iter().map(Option::is_some).collect())
        };
        SourceState { partial, memo }
    }

    /// Whether the node at `index` was valley-free reachable from this
    /// source at the last computed step.
    fn is_reachable(&self, index: usize) -> bool {
        match &self.memo {
            SourceMemo::Map(dist) => dist.is_reachable(index),
            SourceMemo::Reachable(bits) => bits.get(index).copied().unwrap_or(false),
        }
    }

    /// This source's reachability bitmap at the last computed step.
    fn reachable_row(&self) -> Vec<bool> {
        match &self.memo {
            SourceMemo::Map(dist) => dist.distances().iter().map(Option::is_some).collect(),
            SourceMemo::Reachable(bits) => bits.clone(),
        }
    }

    /// Repair this source's distance map after a correction (incremental
    /// when the delta is bounded, full BFS otherwise) and refresh the
    /// partial metrics when anything moved. Only the delta tier calls
    /// this, and the delta tier always memoizes full maps (the
    /// `incremental` flag is fixed for the duration of a sweep and the
    /// baseline pass computes the memo under the same flag), so a bitmap
    /// memo here is a caller bug.
    fn repair(
        &mut self,
        graph: &AsGraph,
        correction: &EdgeCorrection,
        in_union: &[bool],
        baseline_row: &[bool],
        policy: RemovalPolicy,
    ) -> DeltaOutcome {
        let SourceMemo::Map(dist) = &mut self.memo else {
            unreachable!("delta repair on a bitmap memo: the incremental flag changed mid-sweep")
        };
        let outcome = dist.apply_correction_with(graph, correction, policy);
        if outcome != DeltaOutcome::Unchanged {
            self.partial = accumulate_partial(graph, dist, in_union, Some(baseline_row));
        }
        outcome
    }
}

/// Fold one source's distance map into its metric contribution. Pure
/// integer accumulation over the union pairs, so it is exactly as
/// order-stable as the distances themselves.
fn accumulate_partial(
    graph: &AsGraph,
    dist: &DistanceMap,
    in_union: &[bool],
    baseline_row: Option<&[bool]>,
) -> SourcePartial {
    let src_idx = graph.node(dist.root()).map(|n| n.index()).unwrap_or(usize::MAX);
    let mut partial = SourcePartial::default();
    for (idx, d) in dist.distances().iter().enumerate() {
        if idx == src_idx || !in_union.get(idx).copied().unwrap_or(false) {
            continue;
        }
        partial.total_pairs += 1;
        if d.is_some() {
            partial.reachable_now += 1;
        }
        let in_baseline = match baseline_row {
            Some(row) => row.get(idx).copied().unwrap_or(false),
            None => true,
        };
        if in_baseline {
            if let Some(d) = d {
                partial.sum += u64::from(*d);
                partial.count += 1;
                partial.diameter = partial.diameter.max(*d);
            }
        }
    }
    partial
}

/// Execution statistics of a correction sweep: how much of the per-source
/// work the skip tier memoized away, and how the remainder split between
/// incremental delta repairs and full BFS recomputations. Purely
/// observational — the counters never influence the curve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Per-source step computations served from the memo (no BFS state
    /// touched at all).
    pub hits: u64,
    /// Per-source step computations that had to touch the BFS state.
    pub misses: u64,
    /// Misses resolved by the incremental delta engine (bounded frontier
    /// repair, including repairs that proved the map unchanged).
    pub delta_repairs: u64,
    /// Misses that ran a full valley-free BFS (baseline passes, the
    /// incremental engine's proven fallback, or `incremental: false`).
    pub full_rebuilds: u64,
}

impl SweepStats {
    /// Total per-source step computations observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of computations served from the memo (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Fraction of misses the delta engine absorbed (0 when unused).
    pub fn delta_rate(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.delta_repairs as f64 / self.misses as f64
        }
    }
}

impl fmt::Display for SweepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}% memo hits ({} of {}); {} delta repairs, {} full BFS ({:.1}% of misses \
             incremental)",
            100.0 * self.hit_rate(),
            self.hits,
            self.lookups(),
            self.delta_repairs,
            self.full_rebuilds,
            100.0 * self.delta_rate(),
        )
    }
}

/// Memoized per-source propagation state for the correction sweep — the
/// skip tier of the two-tier engine.
///
/// Correcting the link `a`–`b` can only change the valley-free distance
/// map of a source that could already reach `a` or `b`: any walk that
/// traverses the edge must first arrive at one of its endpoints through
/// unchanged edges. Sources whose reachable set misses both endpoints
/// therefore keep their distance map — and their metric contribution —
/// unchanged, and the cache reuses them instead of re-running the BFS.
/// Sources that do touch the link fall through to the delta tier (see
/// [`SweepOptions::incremental`]).
///
/// The cache is working memory for one sweep at a time (its per-source
/// state is rebuilt by every [`correction_sweep_in`] call), but the
/// counters accumulate across calls so repeated sweeps — e.g. the
/// experiment harnesses re-annotating plane after plane — can report
/// aggregate reuse via [`SweepCache::stats`].
#[derive(Debug, Clone, Default)]
pub struct SweepCache {
    states: Vec<SourceState>,
    baseline_rows: Vec<Vec<bool>>,
    stats: SweepStats,
}

impl SweepCache {
    /// An empty cache.
    pub fn new() -> Self {
        SweepCache::default()
    }

    /// Per-source step computations served from the memo (no BFS run).
    pub fn hits(&self) -> u64 {
        self.stats.hits
    }

    /// Per-source step computations that touched the BFS state.
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }

    /// Total per-source step computations observed.
    pub fn lookups(&self) -> u64 {
        self.stats.lookups()
    }

    /// Fraction of computations served from the memo (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Misses the incremental delta engine absorbed.
    pub fn delta_repairs(&self) -> u64 {
        self.stats.delta_repairs
    }

    /// Misses that ran a full valley-free BFS.
    pub fn full_rebuilds(&self) -> u64 {
        self.stats.full_rebuilds
    }

    /// The accumulated counters as a reportable snapshot.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Record `count` full BFS computations.
    fn count_full(&mut self, count: u64) {
        self.stats.misses += count;
        self.stats.full_rebuilds += count;
    }

    /// Drop the per-source state from a previous sweep; counters persist.
    fn reset(&mut self) {
        self.states.clear();
        self.baseline_rows.clear();
    }
}

/// Fold per-source partials (in source order) into one curve step.
fn combine_step(
    partials: impl Iterator<Item = SourcePartial>,
    corrected: usize,
    link: Option<(Asn, Asn)>,
) -> CorrectionStep {
    let mut total = SourcePartial::default();
    for p in partials {
        total.sum += p.sum;
        total.count += p.count;
        total.diameter = total.diameter.max(p.diameter);
        total.reachable_now += p.reachable_now;
        total.total_pairs += p.total_pairs;
    }
    CorrectionStep {
        corrected,
        link,
        avg_path_length: if total.count == 0 { 0.0 } else { total.sum as f64 / total.count as f64 },
        diameter: total.diameter,
        reachability: if total.total_pairs == 0 {
            0.0
        } else {
            total.reachable_now as f64 / total.total_pairs as f64
        },
    }
}

/// Run the correction sweep on the IPv6 plane.
///
/// * `misinferred` — a graph whose IPv6 annotation comes from the
///   plane-blind inference (see [`plane_blind_annotation`]); it is cloned,
///   not modified.
/// * `hybrids` — the detected hybrid links, already sorted by descending
///   IPv6 path visibility (as [`crate::hybrid::HybridReport`] returns them).
///   For each corrected link the IPv6 relationship is replaced with the
///   hybrid finding's IPv6 relationship (the community-derived value).
///
/// As in the paper, the union of customer trees and the pair population
/// are fixed by the *baseline* annotation: `avg_path_length` and
/// `diameter` are computed over the ordered union pairs that were
/// valley-free reachable before any correction, so the curve shows how the
/// corrections shorten those paths (pairs that only become reachable
/// thanks to a correction are reflected in `reachability`, which is
/// measured over all ordered union pairs).
///
/// This entry point runs sequentially without memoization (the historical
/// behaviour); use [`correction_sweep_with`] to pick worker counts and
/// caching — the curve is identical either way.
pub fn correction_sweep(
    misinferred: &AsGraph,
    hybrids: &[HybridFinding],
    options: &ImpactOptions,
) -> ImpactCurve {
    correction_sweep_with(misinferred, hybrids, options, &SweepOptions::sequential())
}

/// [`correction_sweep`] with explicit execution options (a fresh
/// throwaway [`SweepCache`] is used when `sweep.cache` is set).
pub fn correction_sweep_with(
    misinferred: &AsGraph,
    hybrids: &[HybridFinding],
    options: &ImpactOptions,
    sweep: &SweepOptions,
) -> ImpactCurve {
    correction_sweep_in(misinferred, hybrids, options, sweep, &mut SweepCache::new())
}

/// [`correction_sweep`] with explicit execution options and a
/// caller-owned [`SweepCache`], so hit/miss statistics can be inspected
/// (and accumulated across sweeps) afterwards.
pub fn correction_sweep_in(
    misinferred: &AsGraph,
    hybrids: &[HybridFinding],
    options: &ImpactOptions,
    sweep: &SweepOptions,
    cache: &mut SweepCache,
) -> ImpactCurve {
    let workers = sweep.workers();
    let mut graph = misinferred.clone();
    let mut curve = ImpactCurve::default();
    cache.reset();

    // Fix the union, the sources and the baseline-reachable pair set.
    let mut union = customer_tree_union(&graph, IpVersion::V6);
    union.sort();
    if union.len() < 2 {
        // Degenerate graph: fall back to the plain metric so the curve is
        // still well-formed.
        let metrics: TreeMetrics = tree_union_metrics(&graph, IpVersion::V6, options.source_cap);
        curve.steps.push(CorrectionStep {
            corrected: 0,
            link: None,
            avg_path_length: metrics.avg_path_length,
            diameter: metrics.diameter,
            reachability: metrics.reachability(),
        });
        return curve;
    }
    let mut in_union = vec![false; graph.node_count()];
    for asn in &union {
        in_union[graph.node(*asn).unwrap().index()] = true;
    }
    let sources: Vec<Asn> = match options.source_cap {
        Some(cap) if cap < union.len() => union.iter().copied().take(cap).collect(),
        _ => union.clone(),
    };
    let corrections: Vec<&HybridFinding> = hybrids.iter().take(options.top_k).collect();

    // Baseline step: one sharded BFS pass over the sources. Each source's
    // own reachability map doubles as its baseline-reachable row, so the
    // legacy "compute the baseline rows, then recompute the step-0
    // metrics" double pass collapses into one. The memo keeps the full
    // repairable labels only when the delta tier will actually use them
    // (incremental together with the memo); otherwise it keeps the
    // 1 byte/node bitmap of the pre-delta implementation.
    let keep_map = sweep.cache && sweep.incremental;
    cache.states = shard_map(&sources, workers, |&src| {
        SourceState::compute(&graph, src, &in_union, None, keep_map)
    });
    cache.baseline_rows = cache.states.iter().map(SourceState::reachable_row).collect();
    cache.count_full(sources.len() as u64);
    curve.steps.push(combine_step(cache.states.iter().map(|s| s.partial), 0, None));

    if sweep.cache {
        // Memoized path: steps run in order; per step, only the sources
        // whose reachable set touches the corrected link are dirty —
        // everyone else is a skip-tier hit. Dirty sources either repair
        // their distance map through the delta engine (striped across the
        // workers, each map moved to its worker and back without cloning)
        // or, with `incremental` off, recompute the full BFS.
        for (i, finding) in corrections.iter().enumerate() {
            let a_idx = graph.node(finding.a).map(|n| n.index());
            let b_idx = graph.node(finding.b).map(|n| n.index());
            let correction = EdgeCorrection::observe(
                &graph,
                finding.a,
                finding.b,
                IpVersion::V6,
                finding.relationships.v6,
            );
            graph.annotate(finding.a, finding.b, IpVersion::V6, finding.relationships.v6);
            let touches = |state: &SourceState, idx: Option<usize>| {
                idx.is_some_and(|i| state.is_reachable(i))
            };
            let dirty: Vec<usize> = (0..sources.len())
                .filter(|&si| {
                    touches(&cache.states[si], a_idx) || touches(&cache.states[si], b_idx)
                })
                .collect();
            cache.stats.hits += (sources.len() - dirty.len()) as u64;
            cache.stats.misses += dirty.len() as u64;
            if sweep.incremental {
                // Delta tier: move each dirty state out of the memo,
                // repair it on a worker, and put it back in source order.
                let taken: Vec<(usize, SourceState)> = dirty
                    .into_iter()
                    .map(|si| (si, std::mem::take(&mut cache.states[si])))
                    .collect();
                let repaired: Vec<(usize, SourceState, DeltaOutcome)> = {
                    let graph = &graph;
                    let in_union = &in_union;
                    let baseline_rows = &cache.baseline_rows;
                    let correction = &correction;
                    let policy = sweep.removal_policy();
                    shard_map_owned(taken, workers, move |(si, mut state)| {
                        let outcome =
                            state.repair(graph, correction, in_union, &baseline_rows[si], policy);
                        (si, state, outcome)
                    })
                };
                for (si, state, outcome) in repaired {
                    match outcome {
                        DeltaOutcome::FullRebuild => cache.stats.full_rebuilds += 1,
                        DeltaOutcome::Incremental | DeltaOutcome::Unchanged => {
                            cache.stats.delta_repairs += 1
                        }
                    }
                    cache.states[si] = state;
                }
            } else {
                cache.stats.full_rebuilds += dirty.len() as u64;
                let recomputed: Vec<SourceState> = {
                    let graph = &graph;
                    let in_union = &in_union;
                    let sources = &sources;
                    let baseline_rows = &cache.baseline_rows;
                    shard_map(&dirty, workers, move |&si| {
                        SourceState::compute(
                            graph,
                            sources[si],
                            in_union,
                            Some(&baseline_rows[si]),
                            false,
                        )
                    })
                };
                for (si, state) in dirty.into_iter().zip(recomputed) {
                    cache.states[si] = state;
                }
            }
            curve.steps.push(combine_step(
                cache.states.iter().map(|s| s.partial),
                i + 1,
                Some((finding.a, finding.b)),
            ));
        }
    } else {
        // Uncached path: apply each correction to the one working graph
        // and recompute every source for that step, striped across the
        // workers — no memo, and no per-step graph clones (memory stays
        // O(graph) however large top_k is).
        let source_indices: Vec<usize> = (0..sources.len()).collect();
        for (i, finding) in corrections.iter().enumerate() {
            graph.annotate(finding.a, finding.b, IpVersion::V6, finding.relationships.v6);
            let partials: Vec<SourcePartial> = {
                let graph = &graph;
                let in_union = &in_union;
                let sources = &sources;
                let baseline_rows = &cache.baseline_rows;
                shard_map(&source_indices, workers, move |&si| {
                    SourceState::compute(
                        graph,
                        sources[si],
                        in_union,
                        Some(&baseline_rows[si]),
                        false,
                    )
                    .partial
                })
            };
            cache.count_full(partials.len() as u64);
            curve.steps.push(combine_step(
                partials.into_iter(),
                i + 1,
                Some((finding.a, finding.b)),
            ));
        }
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::RelationshipPair;
    use topogen::HybridClass;

    /// A topology where the 10-20 link is misinferred as p2p on IPv6 while
    /// the community-derived relationship is p2c (10 provides free v6
    /// transit to 20). Stubs hang off both sides, plus a grandparent so
    /// paths must descend through 10.
    fn misinferred_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate(Asn(10), Asn(20), IpVersion::V6, Relationship::PeerToPeer);
        g.annotate(Asn(10), Asn(20), IpVersion::V4, Relationship::PeerToPeer);
        for (p, c) in [(9, 10), (9, 8), (10, 30), (20, 41), (20, 42), (30, 50)] {
            g.annotate_both(Asn(p), Asn(c), Relationship::ProviderToCustomer);
        }
        g
    }

    fn finding() -> HybridFinding {
        HybridFinding {
            a: Asn(10),
            b: Asn(20),
            relationships: RelationshipPair::new(
                Relationship::PeerToPeer,
                Relationship::ProviderToCustomer,
            ),
            class: HybridClass::PeeringV4TransitV6,
            v6_path_visibility: 10,
        }
    }

    /// A second correction, flipping the 9-8 link to peering on IPv6.
    fn second_finding() -> HybridFinding {
        HybridFinding {
            a: Asn(9),
            b: Asn(8),
            relationships: RelationshipPair::new(
                Relationship::ProviderToCustomer,
                Relationship::PeerToPeer,
            ),
            class: HybridClass::TransitV4PeeringV6,
            v6_path_visibility: 5,
        }
    }

    #[test]
    fn sweep_records_baseline_plus_one_step_per_correction() {
        let curve = correction_sweep(&misinferred_graph(), &[finding()], &ImpactOptions::default());
        assert_eq!(curve.steps.len(), 2);
        assert_eq!(curve.steps[0].corrected, 0);
        assert_eq!(curve.steps[0].link, None);
        assert_eq!(curve.steps[1].corrected, 1);
        assert_eq!(curve.steps[1].link, Some((Asn(10), Asn(20))));
        assert!(curve.baseline().is_some());
        assert!(curve.r#final().is_some());
    }

    #[test]
    fn correcting_the_hybrid_link_improves_reachability() {
        let curve = correction_sweep(&misinferred_graph(), &[finding()], &ImpactOptions::default());
        let baseline = curve.baseline().unwrap();
        let fixed = curve.r#final().unwrap();
        // With 10-20 as p2p, routes that descend from AS9 into AS10 cannot
        // continue into AS20's customers; correcting it to p2c repairs that.
        assert!(fixed.reachability > baseline.reachability);
        // The avg/diameter are computed over the pairs reachable at the
        // baseline, so a correction can only keep them or shorten them.
        assert!(curve.avg_path_delta() <= 0.0);
        assert!(curve.diameter_delta() <= 0);
    }

    #[test]
    fn top_k_limits_the_number_of_corrections() {
        let findings = vec![finding(), finding(), finding()];
        let options = ImpactOptions { top_k: 2, source_cap: None };
        let curve = correction_sweep(&misinferred_graph(), &findings, &options);
        assert_eq!(curve.steps.len(), 3); // baseline + 2
    }

    #[test]
    fn empty_findings_yield_a_flat_single_point_curve() {
        let curve = correction_sweep(&misinferred_graph(), &[], &ImpactOptions::default());
        assert_eq!(curve.steps.len(), 1);
        assert_eq!(curve.avg_path_delta(), 0.0);
        assert_eq!(curve.diameter_delta(), 0);
    }

    #[test]
    fn original_graph_is_not_modified() {
        let graph = misinferred_graph();
        let before = graph.relationship(Asn(10), Asn(20), IpVersion::V6);
        let _ = correction_sweep(&graph, &[finding()], &ImpactOptions::default());
        assert_eq!(graph.relationship(Asn(10), Asn(20), IpVersion::V6), before);
    }

    #[test]
    fn deltas_of_empty_and_single_step_curves_are_zero() {
        // A curve with no steps at all (never produced by the sweep, but
        // representable) reports zero deltas instead of panicking.
        let empty = ImpactCurve::default();
        assert_eq!(empty.avg_path_delta(), 0.0);
        assert_eq!(empty.diameter_delta(), 0);
        assert!(empty.baseline().is_none());
        assert!(empty.r#final().is_none());
        // A single-step curve (baseline only): baseline == final, so both
        // deltas are exactly zero even with non-zero metrics.
        let single = ImpactCurve {
            steps: vec![CorrectionStep {
                corrected: 0,
                link: None,
                avg_path_length: 3.8,
                diameter: 11,
                reachability: 0.9,
            }],
        };
        assert_eq!(single.avg_path_delta(), 0.0);
        assert_eq!(single.diameter_delta(), 0);
    }

    #[test]
    fn parallel_and_cached_sweeps_match_the_sequential_curve() {
        let graph = misinferred_graph();
        let findings = [finding(), second_finding()];
        let options = ImpactOptions::default();
        let sequential =
            correction_sweep_with(&graph, &findings, &options, &SweepOptions::sequential());
        for concurrency in [2usize, 4] {
            for cache in [false, true] {
                for incremental in [false, true] {
                    for removal_repair in [false, true] {
                        let sweep =
                            SweepOptions { concurrency, cache, incremental, removal_repair };
                        let parallel = correction_sweep_with(&graph, &findings, &options, &sweep);
                        assert_eq!(
                            parallel.steps, sequential.steps,
                            "concurrency={concurrency} cache={cache} incremental={incremental} \
                             removal_repair={removal_repair} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cache_reuses_sources_in_untouched_components() {
        // Two disconnected provider chains; all corrections stay in the
        // first component, so every source in the second component is a
        // provable cache hit at every step.
        let mut g = misinferred_graph();
        for (p, c) in [(100, 110), (100, 120), (110, 130)] {
            g.annotate_both(Asn(p), Asn(c), Relationship::ProviderToCustomer);
        }
        let findings = [finding(), second_finding()];
        let mut cache = SweepCache::new();
        let cached = correction_sweep_in(
            &g,
            &findings,
            &ImpactOptions::default(),
            &SweepOptions { concurrency: 1, cache: true, incremental: true, removal_repair: false },
            &mut cache,
        );
        assert!(cache.hits() > 0, "disconnected sources should be served from the memo");
        assert!(cache.misses() > 0);
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() < 1.0);
        assert_eq!(cache.lookups(), cache.hits() + cache.misses());
        let uncached = correction_sweep(&g, &findings, &ImpactOptions::default());
        assert_eq!(cached.steps, uncached.steps, "memoization changed the curve");
    }

    #[test]
    fn cache_counters_accumulate_across_sweeps() {
        let g = misinferred_graph();
        let findings = [finding()];
        let mut cache = SweepCache::new();
        let sweep = SweepOptions::with_concurrency(1);
        let _ = correction_sweep_in(&g, &findings, &ImpactOptions::default(), &sweep, &mut cache);
        let first = cache.lookups();
        assert!(first > 0);
        let _ = correction_sweep_in(&g, &findings, &ImpactOptions::default(), &sweep, &mut cache);
        assert_eq!(cache.lookups(), 2 * first, "second sweep should add the same lookup count");
    }

    #[test]
    fn plane_blind_annotation_is_identical_at_any_worker_count() {
        // plane_blind_annotation_with must not depend on the worker count;
        // exercise it through an empty inference/baseline pair (the lookup
        // closure is still evaluated per edge).
        let g = misinferred_graph();
        let inference = crate::communities::CommunityInference::default();
        let baseline = crate::baselines::BaselineInference::default();
        let sequential = plane_blind_annotation_with(&g, &inference, &baseline, 1);
        for workers in [2usize, 4] {
            let parallel = plane_blind_annotation_with(&g, &inference, &baseline, workers);
            for edge in sequential.edges() {
                for plane in IpVersion::BOTH {
                    assert_eq!(
                        parallel.relationship(edge.a, edge.b, plane),
                        sequential.relationship(edge.a, edge.b, plane),
                        "workers={workers} diverged on {}-{}",
                        edge.a,
                        edge.b
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_options_resolve_and_default_sensibly() {
        assert_eq!(SweepOptions::sequential().workers(), 1);
        assert!(!SweepOptions::sequential().cache);
        assert!(!SweepOptions::sequential().incremental);
        assert_eq!(SweepOptions::with_concurrency(3).workers(), 3);
        assert!(SweepOptions::with_concurrency(3).cache);
        assert!(SweepOptions::with_concurrency(3).incremental);
        assert!(SweepOptions::default().workers() >= 1);
        assert!(SweepOptions::default().cache);
        assert!(SweepOptions::default().incremental, "delta engine defaults to on");
        let degraded = SweepOptions::default().with_incremental(false);
        assert!(!degraded.incremental);
        assert!(degraded.cache, "with_incremental leaves the other knobs alone");
    }

    #[test]
    fn delta_engine_absorbs_misses_and_counters_add_up() {
        let g = misinferred_graph();
        let findings = [finding(), second_finding()];
        let mut cache = SweepCache::new();
        let incremental = correction_sweep_in(
            &g,
            &findings,
            &ImpactOptions::default(),
            &SweepOptions { concurrency: 1, cache: true, incremental: true, removal_repair: false },
            &mut cache,
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, stats.delta_repairs + stats.full_rebuilds);
        assert_eq!(stats.lookups(), stats.hits + stats.misses);
        assert!(stats.delta_repairs > 0, "dirty sources should go through the delta tier");
        assert!(stats.full_rebuilds > 0, "the baseline pass always runs full BFS computations");
        assert_eq!(cache.delta_repairs(), stats.delta_repairs);
        assert_eq!(cache.full_rebuilds(), stats.full_rebuilds);
        assert!(stats.delta_rate() > 0.0);
        // The rendered form mentions both sides of the split.
        let text = stats.to_string();
        assert!(text.contains("delta repairs"));
        assert!(text.contains("full BFS"));
        // And the curve is exactly the full-recompute one.
        let full = correction_sweep(&g, &findings, &ImpactOptions::default());
        assert_eq!(incremental.steps, full.steps, "delta engine changed the curve");
    }

    #[test]
    fn disabling_incremental_pushes_all_misses_to_full_rebuilds() {
        let g = misinferred_graph();
        let findings = [finding(), second_finding()];
        let mut cache = SweepCache::new();
        let _ = correction_sweep_in(
            &g,
            &findings,
            &ImpactOptions::default(),
            &SweepOptions {
                concurrency: 1,
                cache: true,
                incremental: false,
                removal_repair: false,
            },
            &mut cache,
        );
        let stats = cache.stats();
        assert_eq!(stats.delta_repairs, 0);
        assert_eq!(stats.full_rebuilds, stats.misses);
    }

    /// A topology whose correction is removal-heavy: 4 sits at distance 2
    /// below 2 and at distance 3 behind the 3 → 5 detour, and the sweep
    /// flips 2-4 from p2c to c2p — the orphaned labels have no
    /// same-distance support, so the default policy must rebuild.
    fn removal_heavy_graph() -> AsGraph {
        let mut g = AsGraph::new();
        for (p, c) in [(1, 2), (2, 4), (1, 3), (3, 5), (5, 4)] {
            g.annotate_both(Asn(p), Asn(c), Relationship::ProviderToCustomer);
        }
        g
    }

    fn removal_finding() -> HybridFinding {
        HybridFinding {
            a: Asn(2),
            b: Asn(4),
            relationships: RelationshipPair::new(
                Relationship::ProviderToCustomer,
                Relationship::CustomerToProvider,
            ),
            class: HybridClass::TransitV4PeeringV6,
            v6_path_visibility: 3,
        }
    }

    #[test]
    fn removal_repair_reduces_full_rebuilds_without_moving_the_curve() {
        let g = removal_heavy_graph();
        let findings = [removal_finding()];
        let options = ImpactOptions::default();
        let mut fallback_cache = SweepCache::new();
        let fallback = correction_sweep_in(
            &g,
            &findings,
            &options,
            &SweepOptions::with_concurrency(1),
            &mut fallback_cache,
        );
        let mut repair_cache = SweepCache::new();
        let repaired = correction_sweep_in(
            &g,
            &findings,
            &options,
            &SweepOptions::with_concurrency(1).with_removal_repair(true),
            &mut repair_cache,
        );
        assert!(
            repair_cache.full_rebuilds() < fallback_cache.full_rebuilds(),
            "removal repair should absorb the rebuild fallbacks ({} vs {})",
            repair_cache.full_rebuilds(),
            fallback_cache.full_rebuilds(),
        );
        assert!(repair_cache.delta_repairs() > fallback_cache.delta_repairs());
        assert_eq!(repaired.steps, fallback.steps, "removal repair changed the curve");
        let full = correction_sweep(&g, &findings, &options);
        assert_eq!(repaired.steps, full.steps, "removal repair diverged from full recompute");
    }

    #[test]
    fn sweep_options_map_the_removal_knob_onto_the_delta_policy() {
        assert_eq!(SweepOptions::default().removal_policy(), RemovalPolicy::Rebuild);
        assert!(!SweepOptions::default().removal_repair, "conservative fallback is the default");
        let opts = SweepOptions::default().with_removal_repair(true);
        assert_eq!(opts.removal_policy(), RemovalPolicy::Repair);
        assert!(opts.incremental && opts.cache, "the builder leaves the other knobs alone");
        assert!(!SweepOptions::sequential().removal_repair);
        assert!(!SweepOptions::with_concurrency(3).removal_repair);
    }

    #[test]
    fn empty_stats_report_zero_rates() {
        let stats = SweepStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.delta_rate(), 0.0);
        assert_eq!(stats.lookups(), 0);
        // Serialization round trip (the report embeds these).
        let json = serde_json::to_string(&stats).unwrap();
        let back: SweepStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
