//! Baseline Type-of-Relationship inference heuristics.
//!
//! The paper's point of comparison is the family of valley-free inference
//! algorithms (Gao 2001, Dimitropoulos et al. 2007, Oliveira et al. 2010)
//! that infer relationships from observed AS paths *without* per-plane
//! information. Two representatives are implemented here:
//!
//! * [`gao_inference`] — Gao's degree-based heuristic: on every observed
//!   path, the highest-degree AS is assumed to be the path's "top
//!   provider"; links before it are classified customer-to-provider and
//!   links after it provider-to-customer, with a final vote across all
//!   paths and a peering pass for links whose votes are balanced and whose
//!   endpoint degrees are comparable.
//! * [`degree_heuristic_inference`] — a simpler degree-ratio rule used as
//!   a sanity baseline.
//!
//! Both operate on one plane's observed paths, or (as the existing tools
//! do) on the union of both planes' paths — which is precisely what
//! produces the misinference artifacts on hybrid links.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, Relationship};

use crate::extract::{ExtractedData, ObservedPath};

/// Which plane's paths a baseline should learn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineInput {
    /// Use only the given plane's paths.
    SinglePlane(IpVersion),
    /// Pool the paths of both planes, as IPv4-era tools did when applied
    /// to IPv6 (the paper's criticism).
    BothPlanes,
}

fn input_paths(data: &ExtractedData, input: BaselineInput) -> Vec<&ObservedPath> {
    match input {
        BaselineInput::SinglePlane(plane) => data.paths(plane).iter().collect(),
        BaselineInput::BothPlanes => data.paths_v4.iter().chain(data.paths_v6.iter()).collect(),
    }
}

fn canonical(a: Asn, b: Asn) -> (Asn, Asn, bool) {
    if a <= b {
        (a, b, false)
    } else {
        (b, a, true)
    }
}

/// A baseline's inferred relationships for a set of links (canonical
/// lower-ASN-first orientation).
#[derive(Debug, Clone, Default)]
pub struct BaselineInference {
    links: HashMap<(Asn, Asn), Relationship>,
}

impl BaselineInference {
    /// The inferred relationship of a link, oriented `a → b` in query order.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        let (lo, hi, flipped) = canonical(a, b);
        self.links.get(&(lo, hi)).map(|rel| if flipped { rel.reverse() } else { *rel })
    }

    /// Number of classified links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when nothing was classified.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Iterate links in canonical orientation.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, Relationship)> + '_ {
        self.links.iter().map(|((a, b), rel)| (*a, *b, *rel))
    }

    /// Annotate a graph (both planes, since the baseline is plane-blind) on
    /// the links it has classifications for.
    pub fn annotate_graph(&self, graph: &mut AsGraph, planes: &[IpVersion]) {
        for ((a, b), rel) in &self.links {
            for plane in planes {
                if graph.has_link(*a, *b, *plane) {
                    graph.annotate(*a, *b, *plane, *rel);
                }
            }
        }
    }
}

/// Gao's algorithm (simplified to its core heuristic).
pub fn gao_inference(data: &ExtractedData, input: BaselineInput) -> BaselineInference {
    let paths = input_paths(data, input);

    // Degree = number of distinct neighbors over the pooled paths.
    let mut neighbors: HashMap<Asn, std::collections::HashSet<Asn>> = HashMap::new();
    for p in &paths {
        for w in p.path.windows(2) {
            neighbors.entry(w[0]).or_default().insert(w[1]);
            neighbors.entry(w[1]).or_default().insert(w[0]);
        }
    }
    let degree = |asn: Asn| neighbors.get(&asn).map(|s| s.len()).unwrap_or(0);

    // Phase 1: vote on transit direction using the top provider of each path.
    // votes[(a,b)] = (votes for "a is provider of b", votes for "b is provider of a")
    let mut votes: HashMap<(Asn, Asn), (usize, usize)> = HashMap::new();
    for p in &paths {
        if p.path.len() < 2 {
            continue;
        }
        // The path's "top provider" is the first AS of maximal degree.
        // Taking the *first* maximum matters: when two comparable hubs sit
        // next to each other, paths observed from either side nominate
        // their own nearer hub, the transit votes on the hub-hub link
        // balance out, and the link is recognised as peering below.
        let mut top_idx = 0;
        for i in 1..p.path.len() {
            if degree(p.path[i]) > degree(p.path[top_idx]) {
                top_idx = i;
            }
        }
        for (i, w) in p.path.windows(2).enumerate() {
            let (lo, hi, flipped) = canonical(w[0], w[1]);
            let entry = votes.entry((lo, hi)).or_insert((0, 0));
            // Before the top provider the route climbs (w[0] is the customer
            // of w[1]); after it the route descends.
            let first_is_provider = i >= top_idx;
            let lo_is_provider = first_is_provider != flipped;
            if lo_is_provider {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }

    // Phase 2: resolve votes into relationships; near-balanced votes between
    // ASes of comparable degree become peering.
    let mut inference = BaselineInference::default();
    for ((a, b), (a_provider, b_provider)) in votes {
        let da = degree(a).max(1);
        let db = degree(b).max(1);
        let ratio = da as f64 / db as f64;
        let total = a_provider + b_provider;
        let balanced = {
            let hi = a_provider.max(b_provider) as f64;
            total > 0 && hi / total as f64 <= 0.6
        };
        let comparable_degree = (0.2..=5.0).contains(&ratio);
        let rel = if balanced && comparable_degree {
            Relationship::PeerToPeer
        } else if a_provider >= b_provider {
            Relationship::ProviderToCustomer
        } else {
            Relationship::CustomerToProvider
        };
        inference.links.insert((a, b), rel);
    }
    inference
}

/// A plain degree-ratio heuristic: the much larger AS is assumed to be the
/// provider; comparable ASes are assumed to peer.
pub fn degree_heuristic_inference(
    data: &ExtractedData,
    input: BaselineInput,
    peer_ratio: f64,
) -> BaselineInference {
    let paths = input_paths(data, input);
    let mut neighbors: HashMap<Asn, std::collections::HashSet<Asn>> = HashMap::new();
    let mut links: std::collections::HashSet<(Asn, Asn)> = std::collections::HashSet::new();
    for p in &paths {
        for w in p.path.windows(2) {
            neighbors.entry(w[0]).or_default().insert(w[1]);
            neighbors.entry(w[1]).or_default().insert(w[0]);
            let (lo, hi, _) = canonical(w[0], w[1]);
            links.insert((lo, hi));
        }
    }
    let degree = |asn: Asn| neighbors.get(&asn).map(|s| s.len()).unwrap_or(0).max(1);
    let mut inference = BaselineInference::default();
    for (a, b) in links {
        let ratio = degree(a) as f64 / degree(b) as f64;
        let rel = if ratio >= peer_ratio {
            Relationship::ProviderToCustomer
        } else if ratio <= 1.0 / peer_ratio {
            Relationship::CustomerToProvider
        } else {
            Relationship::PeerToPeer
        };
        inference.links.insert((a, b), rel);
    }
    inference
}

/// Accuracy of a baseline against a ground-truth annotation on one plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct InferenceAccuracy {
    /// Links where both the baseline and the truth have a value.
    pub comparable: usize,
    /// Links classified identically.
    pub correct: usize,
    /// Transit links misclassified as peering.
    pub transit_as_peering: usize,
    /// Peering links misclassified as transit.
    pub peering_as_transit: usize,
    /// Transit links with the direction reversed.
    pub reversed_transit: usize,
    /// Any other disagreement (sibling involvement etc.).
    pub other_errors: usize,
}

impl InferenceAccuracy {
    /// Fraction of comparable links classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.comparable == 0 {
            0.0
        } else {
            self.correct as f64 / self.comparable as f64
        }
    }

    /// Evaluate a baseline against the given plane of an annotated graph.
    pub fn evaluate(
        baseline: &BaselineInference,
        truth: &AsGraph,
        plane: IpVersion,
    ) -> InferenceAccuracy {
        let mut acc = InferenceAccuracy::default();
        for (a, b, inferred) in baseline.iter() {
            let Some(actual) = truth.relationship(a, b, plane) else { continue };
            acc.comparable += 1;
            if inferred == actual {
                acc.correct += 1;
            } else if actual.is_transit() && inferred.is_peering() {
                acc.transit_as_peering += 1;
            } else if actual.is_peering() && inferred.is_transit() {
                acc.peering_as_transit += 1;
            } else if actual.is_transit() && inferred.is_transit() {
                acc.reversed_transit += 1;
            } else {
                acc.other_errors += 1;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use bgp_types::{CollectorId, PathAttributes, PeerId, Prefix, RibEntry, RibSnapshot};
    use routesim::{Scenario, SimConfig};
    use std::net::IpAddr;
    use topogen::TopologyConfig;

    fn data_from(paths_v6: &[&str]) -> ExtractedData {
        let mut snap = RibSnapshot::new(CollectorId::new("t"), 1);
        for (i, p) in paths_v6.iter().enumerate() {
            snap.push(RibEntry::new(
                PeerId::new(Asn(1), "2001:db8::1".parse::<IpAddr>().unwrap()),
                format!("2001:db8:{:x}::/48", i + 1).parse::<Prefix>().unwrap(),
                PathAttributes::with_path(p.parse().unwrap()),
            ));
        }
        extract(&snap)
    }

    #[test]
    fn gao_classifies_a_clean_hierarchy() {
        // 100 is the big provider (high degree); 2,3,4 are its customers;
        // 20 is a customer of 2.
        let data = data_from(&["2 100 3", "2 100 4", "3 100 4", "20 2 100 3", "20 2 100 4"]);
        let inf = gao_inference(&data, BaselineInput::SinglePlane(IpVersion::V6));
        assert_eq!(inf.relationship(Asn(100), Asn(2)), Some(Relationship::ProviderToCustomer));
        assert_eq!(inf.relationship(Asn(100), Asn(3)), Some(Relationship::ProviderToCustomer));
        assert_eq!(inf.relationship(Asn(2), Asn(20)), Some(Relationship::ProviderToCustomer));
        assert_eq!(inf.relationship(Asn(20), Asn(2)), Some(Relationship::CustomerToProvider));
        assert!(!inf.is_empty());
        assert_eq!(inf.len(), 4);
        assert_eq!(inf.relationship(Asn(5), Asn(6)), None);
    }

    #[test]
    fn gao_detects_peering_between_comparable_tops() {
        // Two comparable hubs 100 and 200 exchange their customers' routes.
        let data = data_from(&["2 100 200 5", "3 100 200 6", "5 200 100 2", "6 200 100 3"]);
        let inf = gao_inference(&data, BaselineInput::SinglePlane(IpVersion::V6));
        assert_eq!(inf.relationship(Asn(100), Asn(200)), Some(Relationship::PeerToPeer));
        assert_eq!(inf.relationship(Asn(100), Asn(2)), Some(Relationship::ProviderToCustomer));
    }

    #[test]
    fn degree_heuristic_uses_the_ratio() {
        let data = data_from(&["2 100 3", "4 100 5", "6 100 7", "2 100 8", "3 100 9"]);
        let inf = degree_heuristic_inference(&data, BaselineInput::SinglePlane(IpVersion::V6), 2.0);
        // AS100 has degree 8, everyone else degree 1.
        assert_eq!(inf.relationship(Asn(100), Asn(3)), Some(Relationship::ProviderToCustomer));
        assert_eq!(inf.relationship(Asn(3), Asn(100)), Some(Relationship::CustomerToProvider));
        // Comparable-degree stubs peering? They share no link, so nothing.
        assert_eq!(inf.relationship(Asn(2), Asn(3)), None);
    }

    #[test]
    fn baselines_beat_chance_on_simulated_data_but_are_imperfect_on_v6() {
        let scenario = Scenario::build(&TopologyConfig::small(), &SimConfig::small());
        let data = extract(&scenario.merged_snapshot());
        let gao = gao_inference(&data, BaselineInput::BothPlanes);
        let acc_v4 = InferenceAccuracy::evaluate(&gao, &scenario.truth.graph, IpVersion::V4);
        let acc_v6 = InferenceAccuracy::evaluate(&gao, &scenario.truth.graph, IpVersion::V6);
        assert!(acc_v4.comparable > 100);
        assert!(acc_v4.accuracy() > 0.5, "v4 accuracy {}", acc_v4.accuracy());
        assert!(acc_v6.accuracy() > 0.3, "v6 accuracy {}", acc_v6.accuracy());
        // The plane-blind baseline cannot be perfect on IPv6 because hybrid
        // links have, by construction, a different v6 relationship.
        assert!(acc_v6.accuracy() < 1.0);
        assert!(acc_v6.correct <= acc_v6.comparable);
        let total_errors = acc_v6.transit_as_peering
            + acc_v6.peering_as_transit
            + acc_v6.reversed_transit
            + acc_v6.other_errors;
        assert_eq!(acc_v6.comparable - acc_v6.correct, total_errors);
    }

    #[test]
    fn annotate_graph_only_touches_existing_links() {
        let data = data_from(&["2 100 3"]);
        let inf = gao_inference(&data, BaselineInput::SinglePlane(IpVersion::V6));
        let mut graph = AsGraph::new();
        graph.observe_link(Asn(2), Asn(100), IpVersion::V6);
        graph.observe_link(Asn(2), Asn(100), IpVersion::V4);
        inf.annotate_graph(&mut graph, &[IpVersion::V4, IpVersion::V6]);
        assert!(graph.relationship(Asn(2), Asn(100), IpVersion::V6).is_some());
        assert!(graph.relationship(Asn(2), Asn(100), IpVersion::V4).is_some());
        // The 100-3 link is not in the graph, so it must not be created.
        assert!(!graph.contains(Asn(3)));
    }

    #[test]
    fn accuracy_on_empty_inputs_is_zero() {
        let acc = InferenceAccuracy::default();
        assert_eq!(acc.accuracy(), 0.0);
        let empty = BaselineInference::default();
        let acc = InferenceAccuracy::evaluate(&empty, &AsGraph::new(), IpVersion::V6);
        assert_eq!(acc.comparable, 0);
    }
}
