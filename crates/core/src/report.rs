//! The consolidated measurement report (everything Section 3 states).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::baselines::InferenceAccuracy;
use crate::hybrid::HybridReport;
use crate::impact::{ImpactCurve, SweepStats};
use crate::valley::ValleyReport;

/// Dataset and coverage summary — the paper's first paragraph of Section 3
/// (experiment E1 in DESIGN.md).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Distinct IPv6 AS paths observed.
    pub ipv6_paths: usize,
    /// Distinct IPv4 AS paths observed.
    pub ipv4_paths: usize,
    /// RIB entries inspected (IPv6 plane).
    pub ipv6_entries: usize,
    /// RIB entries inspected (IPv4 plane).
    pub ipv4_entries: usize,
    /// Distinct IPv6 AS links.
    pub ipv6_links: usize,
    /// Distinct IPv4 AS links.
    pub ipv4_links: usize,
    /// Links visible on both planes.
    pub dual_stack_links: usize,
    /// IPv6 links with an inferred relationship (communities + LocPrf).
    pub ipv6_links_classified: usize,
    /// Dual-stack links whose relationship is known on *both* planes.
    pub dual_stack_links_classified: usize,
    /// IPv6 links classified from communities alone.
    pub ipv6_links_from_communities: usize,
    /// IPv6 links classified via the LocPrf Rosetta Stone.
    pub ipv6_links_from_locpref: usize,
    /// Links dropped because their community votes conflicted.
    pub conflicted_links: usize,
    /// Community values present in the dictionary.
    pub dictionary_size: usize,
}

impl DatasetSummary {
    /// Fraction of IPv6 links with a known relationship (the paper's 72%).
    pub fn ipv6_coverage(&self) -> f64 {
        if self.ipv6_links == 0 {
            0.0
        } else {
            self.ipv6_links_classified as f64 / self.ipv6_links as f64
        }
    }

    /// Fraction of dual-stack links classified on both planes (the 81%).
    pub fn dual_stack_coverage(&self) -> f64 {
        if self.dual_stack_links == 0 {
            0.0
        } else {
            self.dual_stack_links_classified as f64 / self.dual_stack_links as f64
        }
    }
}

/// Everything the pipeline measured.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// E1: dataset and coverage.
    pub dataset: DatasetSummary,
    /// E2 + E3: hybrid census and visibility.
    pub hybrids: HybridReport,
    /// E4: valley paths on the IPv6 plane.
    pub valleys: ValleyReport,
    /// F2: the customer-tree correction curve, if the pipeline ran it.
    pub impact: Option<ImpactCurve>,
    /// F2: execution statistics of the correction sweep (memo hits, delta
    /// repairs vs full BFS). Only populated when the pipeline is asked to
    /// emit them (`Pipeline::emit_sweep_stats`) — the key is omitted from
    /// the JSON when absent, so committed report snapshots and the
    /// determinism contract are untouched by the knob.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub sweep_stats: Option<SweepStats>,
    /// A1: baseline accuracy against ground truth, when ground truth is
    /// available (simulated scenarios only).
    pub baseline_accuracy_v4: Option<InferenceAccuracy>,
    /// A1: baseline accuracy on the IPv6 plane.
    pub baseline_accuracy_v6: Option<InferenceAccuracy>,
    /// The adversarial scenario the pipeline's execution options carried
    /// (`PipelineOptions::policy_scenario`), recorded when it is not the
    /// classic default. The key is omitted from the JSON under the
    /// classic policy, so pre-existing report snapshots and the
    /// determinism contract are untouched.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub policy_scenario: Option<routesim::PolicyScenario>,
}

impl Report {
    /// Serialize to pretty JSON (used by the experiment binaries and the
    /// examples' `--json` flag).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(scenario) = self.policy_scenario {
            writeln!(f, "Adversarial scenario:     {scenario:?}")?;
        }
        let d = &self.dataset;
        writeln!(f, "== Dataset (E1) ==")?;
        writeln!(f, "IPv6 AS paths (distinct): {}", d.ipv6_paths)?;
        writeln!(f, "IPv6 AS links:            {}", d.ipv6_links)?;
        writeln!(f, "IPv4/IPv6 (dual) links:   {}", d.dual_stack_links)?;
        writeln!(
            f,
            "IPv6 link coverage:       {:.1}% ({} links; {} communities, {} LocPrf)",
            100.0 * d.ipv6_coverage(),
            d.ipv6_links_classified,
            d.ipv6_links_from_communities,
            d.ipv6_links_from_locpref
        )?;
        writeln!(
            f,
            "Dual-stack coverage:      {:.1}% ({} links)",
            100.0 * d.dual_stack_coverage(),
            d.dual_stack_links_classified
        )?;
        let h = &self.hybrids;
        writeln!(f, "== Hybrid relationships (E2/E3) ==")?;
        writeln!(
            f,
            "Hybrid links:             {} of {} classified dual-stack links ({:.1}%)",
            h.findings.len(),
            h.dual_stack_classified,
            100.0 * h.hybrid_fraction()
        )?;
        writeln!(
            f,
            "  p2p(v4)/transit(v6):    {} ({:.0}%)",
            h.peering_v4_transit_v6,
            100.0 * h.peering_v4_transit_v6_share()
        )?;
        writeln!(f, "  transit(v4)/p2p(v6):    {}", h.transit_v4_peering_v6)?;
        writeln!(f, "  opposite transit:       {}", h.opposite_transit)?;
        writeln!(
            f,
            "IPv6 paths with >=1 hybrid link: {:.1}%",
            100.0 * h.path_visibility_fraction()
        )?;
        let v = &self.valleys;
        writeln!(f, "== Valley paths (E4) ==")?;
        writeln!(
            f,
            "Valley IPv6 paths:        {:.1}% ({} of {} classifiable)",
            100.0 * v.valley_fraction(),
            v.valley_paths,
            v.classifiable_paths
        )?;
        writeln!(
            f,
            "  due to reachability:    {:.1}% of valley paths",
            100.0 * v.reachability_fraction()
        )?;
        if let Some(curve) = &self.impact {
            if let (Some(b), Some(last)) = (curve.baseline(), curve.r#final()) {
                writeln!(f, "== Customer-tree impact (F2) ==")?;
                writeln!(
                    f,
                    "avg valley-free path:     {:.2} -> {:.2} hops",
                    b.avg_path_length, last.avg_path_length
                )?;
                writeln!(f, "diameter:                 {} -> {} hops", b.diameter, last.diameter)?;
                writeln!(
                    f,
                    "reachability:             {:.1}% -> {:.1}%",
                    100.0 * b.reachability,
                    100.0 * last.reachability
                )?;
                writeln!(
                    f,
                    "after {} corrections:     avg {:+.2} hops, diameter {:+}",
                    curve.steps.len().saturating_sub(1),
                    curve.avg_path_delta(),
                    curve.diameter_delta()
                )?;
            }
        }
        if let Some(stats) = &self.sweep_stats {
            writeln!(f, "sweep execution:          {stats}")?;
        }
        if let (Some(v4), Some(v6)) = (&self.baseline_accuracy_v4, &self.baseline_accuracy_v6) {
            writeln!(f, "== Baseline (Gao) accuracy vs ground truth (A1) ==")?;
            writeln!(f, "IPv4: {:.1}% of {} links", 100.0 * v4.accuracy(), v4.comparable)?;
            writeln!(f, "IPv6: {:.1}% of {} links", 100.0 * v6.accuracy(), v6.comparable)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_fractions_handle_empty_and_normal_cases() {
        let mut d = DatasetSummary::default();
        assert_eq!(d.ipv6_coverage(), 0.0);
        assert_eq!(d.dual_stack_coverage(), 0.0);
        d.ipv6_links = 100;
        d.ipv6_links_classified = 72;
        d.dual_stack_links = 50;
        d.dual_stack_links_classified = 40;
        assert!((d.ipv6_coverage() - 0.72).abs() < 1e-9);
        assert!((d.dual_stack_coverage() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn display_and_json_contain_the_headline_numbers() {
        let mut report = Report::default();
        report.dataset.ipv6_paths = 1234;
        report.dataset.ipv6_links = 100;
        report.dataset.ipv6_links_classified = 72;
        report.hybrids.dual_stack_classified = 50;
        report.valleys.classifiable_paths = 10;
        report.valleys.valley_paths = 2;
        let text = report.to_string();
        assert!(text.contains("1234"));
        assert!(text.contains("72.0%"));
        assert!(text.contains("Valley"));
        let json = report.to_json();
        assert!(json.contains("\"ipv6_paths\": 1234"));
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dataset.ipv6_paths, 1234);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn display_includes_optional_sections_when_present() {
        use crate::impact::{CorrectionStep, ImpactCurve};
        let mut report = Report::default();
        report.impact = Some(ImpactCurve {
            steps: vec![
                CorrectionStep {
                    corrected: 0,
                    link: None,
                    avg_path_length: 3.8,
                    diameter: 11,
                    reachability: 0.8,
                },
                CorrectionStep {
                    corrected: 1,
                    link: None,
                    avg_path_length: 2.23,
                    diameter: 7,
                    reachability: 0.95,
                },
            ],
        });
        report.baseline_accuracy_v4 =
            Some(InferenceAccuracy { comparable: 10, correct: 9, ..Default::default() });
        report.baseline_accuracy_v6 =
            Some(InferenceAccuracy { comparable: 10, correct: 7, ..Default::default() });
        let text = report.to_string();
        assert!(text.contains("3.80 -> 2.23"));
        assert!(text.contains("11 -> 7"));
        assert!(text.contains("after 1 corrections"));
        assert!(text.contains("-1.57"));
        assert!(text.contains("diameter -4"));
        assert!(text.contains("Gao"));
    }

    #[test]
    fn policy_scenario_is_omitted_when_classic_and_round_trips_when_present() {
        // Absent (classic): no key, no display line — pre-scenario report
        // snapshots keep their exact bytes.
        let plain = Report::default();
        assert!(plain.policy_scenario.is_none());
        assert!(!plain.to_json().contains("policy_scenario"));
        assert!(!plain.to_string().contains("Adversarial scenario"));
        let back: Report = serde_json::from_str(&plain.to_json()).unwrap();
        assert!(back.policy_scenario.is_none());

        // Present: serialized, displayed, and round-tripped.
        let report = Report {
            policy_scenario: Some(routesim::PolicyScenario::RouteLeak),
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"policy_scenario\": \"RouteLeak\""));
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.policy_scenario, report.policy_scenario);
        assert!(report.to_string().contains("Adversarial scenario:     RouteLeak"));
    }

    #[test]
    fn sweep_stats_are_omitted_when_absent_and_round_trip_when_present() {
        // Absent: the key must not appear at all, so reports rendered
        // before the counters existed (golden snapshots, the determinism
        // matrix) are byte-identical to reports rendered today.
        let plain = Report::default();
        assert!(plain.sweep_stats.is_none());
        assert!(!plain.to_json().contains("sweep_stats"));
        assert!(!plain.to_string().contains("sweep execution"));
        // And a JSON without the key still deserializes.
        let back: Report = serde_json::from_str(&plain.to_json()).unwrap();
        assert!(back.sweep_stats.is_none());

        // Present: serialized, displayed, and round-tripped.
        let report = Report {
            sweep_stats: Some(SweepStats {
                hits: 75,
                misses: 25,
                delta_repairs: 20,
                full_rebuilds: 5,
            }),
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"sweep_stats\""));
        assert!(json.contains("\"delta_repairs\": 20"));
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sweep_stats, report.sweep_stats);
        let text = report.to_string();
        assert!(text.contains("sweep execution"));
        assert!(text.contains("75.0% memo hits"));
    }
}
