//! Relationship inference from BGP Communities (the paper's core method).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, Relationship, RibSnapshot};
use irr::CommunityDictionary;

/// Where an inferred relationship came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InferenceSource {
    /// Directly asserted by a documented relationship community.
    Communities,
    /// Derived from a community-validated LocPrf mapping.
    LocalPref,
}

/// The inferred relationship of one link on one plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferredRelationship {
    /// Relationship oriented from the link's canonical `a` endpoint
    /// (lower ASN) to its `b` endpoint.
    pub relationship: Relationship,
    /// Number of supporting votes (RIB entries / mappings that agree).
    pub votes: usize,
    /// Number of contradicting votes that were out-voted.
    pub dissent: usize,
    /// How the relationship was obtained.
    pub source: InferenceSource,
}

/// Vote tallies for one link on one plane, before resolution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VoteTally {
    by_relationship: HashMap<Relationship, usize>,
}

impl VoteTally {
    fn add(&mut self, rel: Relationship, weight: usize) {
        *self.by_relationship.entry(rel).or_insert(0) += weight;
    }

    /// Resolve the tally: the relationship with the most votes wins;
    /// exact ties are unresolvable (the paper keeps only links whose
    /// communities agree).
    fn resolve(&self) -> Option<(Relationship, usize, usize)> {
        let total: usize = self.by_relationship.values().sum();
        let (best_rel, best_votes) = self
            .by_relationship
            .iter()
            .max_by_key(|(rel, votes)| (**votes, std::cmp::Reverse(**rel)))
            .map(|(r, v)| (*r, *v))?;
        let runner_up = self
            .by_relationship
            .iter()
            .filter(|(rel, _)| **rel != best_rel)
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0);
        if best_votes == runner_up {
            return None; // tie: ambiguous, drop the link
        }
        Some((best_rel, best_votes, total - best_votes))
    }
}

/// The result of community (and optionally LocPrf) based inference: a
/// per-plane map from canonical link to inferred relationship.
#[derive(Debug, Clone, Default)]
pub struct CommunityInference {
    links: HashMap<(Asn, Asn, IpVersion), InferredRelationship>,
    tallies: HashMap<(Asn, Asn, IpVersion), VoteTally>,
    /// Number of relationship-community assertions processed per plane.
    pub assertions_v4: usize,
    /// Number of relationship-community assertions processed on IPv6.
    pub assertions_v6: usize,
    /// Links dropped because their votes tied.
    pub conflicted_links: usize,
}

fn canonical(a: Asn, b: Asn) -> (Asn, Asn, bool) {
    if a <= b {
        (a, b, false)
    } else {
        (b, a, true)
    }
}

impl CommunityInference {
    /// Run the community-based inference over a pooled snapshot.
    ///
    /// For every RIB entry, every community documented as a relationship
    /// tag asserts the relationship between its defining AS and the AS
    /// that AS learned the route from — i.e. the next AS towards the
    /// origin on the entry's AS path. Each assertion is one vote; votes
    /// are tallied per (link, plane) and resolved by strict majority.
    pub fn from_snapshot(snapshot: &RibSnapshot, dictionary: &CommunityDictionary) -> Self {
        let mut inference = CommunityInference::default();
        for entry in &snapshot.entries {
            if entry.has_bogus_path() {
                continue;
            }
            let plane = entry.plane();
            let path: Vec<Asn> = entry.attrs.as_path.deprepended().asns().collect();
            for (tagger, tag) in dictionary.relationship_assertions(&entry.attrs.communities) {
                // The tagger must be on the path and must have a neighbor
                // towards the origin.
                let Some(pos) = path.iter().position(|a| *a == tagger) else { continue };
                if pos + 1 >= path.len() {
                    continue;
                }
                let neighbor = path[pos + 1];
                let rel = tag.implied_relationship();
                inference.add_vote(tagger, neighbor, plane, rel, 1);
                match plane {
                    IpVersion::V4 => inference.assertions_v4 += 1,
                    IpVersion::V6 => inference.assertions_v6 += 1,
                }
            }
        }
        inference.resolve_all();
        inference
    }

    /// Add one vote for the relationship of the link `from → to` on a
    /// plane (used by both the community pass and the LocPrf pass).
    pub fn add_vote(
        &mut self,
        from: Asn,
        to: Asn,
        plane: IpVersion,
        rel: Relationship,
        weight: usize,
    ) {
        let (a, b, flipped) = canonical(from, to);
        let stored = if flipped { rel.reverse() } else { rel };
        self.tallies.entry((a, b, plane)).or_default().add(stored, weight);
    }

    /// Re-resolve every tally into the final link map. Called after adding
    /// votes; idempotent.
    pub fn resolve_all(&mut self) {
        self.conflicted_links = 0;
        // Preserve LocPrf-sourced entries that have no tally of their own.
        let mut links: HashMap<(Asn, Asn, IpVersion), InferredRelationship> = self
            .links
            .iter()
            .filter(|(key, link)| {
                link.source == InferenceSource::LocalPref && !self.tallies.contains_key(*key)
            })
            .map(|(k, v)| (*k, *v))
            .collect();
        for (key, tally) in &self.tallies {
            match tally.resolve() {
                Some((rel, votes, dissent)) => {
                    links.insert(
                        *key,
                        InferredRelationship {
                            relationship: rel,
                            votes,
                            dissent,
                            source: InferenceSource::Communities,
                        },
                    );
                }
                None => self.conflicted_links += 1,
            }
        }
        self.links = links;
    }

    /// Record a LocPrf-derived relationship for a link that has no
    /// community-derived relationship yet. Returns true if it was added.
    pub fn add_locpref_inference(
        &mut self,
        from: Asn,
        to: Asn,
        plane: IpVersion,
        rel: Relationship,
    ) -> bool {
        let (a, b, flipped) = canonical(from, to);
        let stored = if flipped { rel.reverse() } else { rel };
        let key = (a, b, plane);
        if self.links.contains_key(&key) || self.tallies.contains_key(&key) {
            return false;
        }
        self.links.insert(
            key,
            InferredRelationship {
                relationship: stored,
                votes: 1,
                dissent: 0,
                source: InferenceSource::LocalPref,
            },
        );
        true
    }

    /// The inferred relationship of a link on a plane, oriented `a → b`
    /// for the *query* order (not the canonical order).
    pub fn relationship(&self, a: Asn, b: Asn, plane: IpVersion) -> Option<Relationship> {
        let (lo, hi, flipped) = canonical(a, b);
        self.links.get(&(lo, hi, plane)).map(|link| {
            if flipped {
                link.relationship.reverse()
            } else {
                link.relationship
            }
        })
    }

    /// Full inference record of a link (canonical orientation).
    pub fn link(&self, a: Asn, b: Asn, plane: IpVersion) -> Option<&InferredRelationship> {
        let (lo, hi, _) = canonical(a, b);
        self.links.get(&(lo, hi, plane))
    }

    /// Number of links with an inferred relationship on a plane.
    pub fn inferred_link_count(&self, plane: IpVersion) -> usize {
        self.links.keys().filter(|(_, _, p)| *p == plane).count()
    }

    /// Number of links inferred from a given source on a plane.
    pub fn inferred_by_source(&self, plane: IpVersion, source: InferenceSource) -> usize {
        self.links.iter().filter(|((_, _, p), link)| *p == plane && link.source == source).count()
    }

    /// Iterate all inferred links: `(a, b, plane, inference)` with `a < b`.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, IpVersion, &InferredRelationship)> {
        self.links.iter().map(|((a, b, plane), link)| (*a, *b, *plane, link))
    }

    /// Annotate an [`AsGraph`] (typically the extracted link-presence
    /// graph) with the inferred relationships.
    pub fn annotate_graph(&self, graph: &mut AsGraph) {
        for ((a, b, plane), link) in &self.links {
            graph.annotate(*a, *b, *plane, link.relationship);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{CollectorId, Community, PathAttributes, PeerId, Prefix, RibEntry};
    use irr::{CommunityMeaning, RelationshipTag};
    use std::net::IpAddr;

    fn dictionary() -> CommunityDictionary {
        let mut d = CommunityDictionary::new();
        d.insert(
            Community::new(20, 100),
            CommunityMeaning::Relationship(RelationshipTag::FromCustomer),
        );
        d.insert(
            Community::new(20, 200),
            CommunityMeaning::Relationship(RelationshipTag::FromPeer),
        );
        d.insert(
            Community::new(10, 300),
            CommunityMeaning::Relationship(RelationshipTag::FromProvider),
        );
        d
    }

    fn entry(prefix: &str, path: &str, communities: &[Community]) -> RibEntry {
        let mut attrs = PathAttributes::with_path(path.parse().unwrap());
        for c in communities {
            attrs.communities.insert(*c);
        }
        RibEntry::new(
            PeerId::new(Asn(10), "2001:db8::1".parse::<IpAddr>().unwrap()),
            prefix.parse::<Prefix>().unwrap(),
            attrs,
        )
    }

    fn snapshot(entries: Vec<RibEntry>) -> RibSnapshot {
        let mut s = RibSnapshot::new(CollectorId::new("t"), 1);
        for e in entries {
            s.push(e);
        }
        s
    }

    #[test]
    fn community_votes_assert_the_link_towards_the_origin() {
        // Path 10 20 30: community 20:100 ("from customer") asserts that
        // 20 is the provider of 30.
        let snap =
            snapshot(vec![entry("2001:db8:100::/48", "10 20 30", &[Community::new(20, 100)])]);
        let inf = CommunityInference::from_snapshot(&snap, &dictionary());
        assert_eq!(inf.assertions_v6, 1);
        assert_eq!(
            inf.relationship(Asn(20), Asn(30), IpVersion::V6),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(
            inf.relationship(Asn(30), Asn(20), IpVersion::V6),
            Some(Relationship::CustomerToProvider)
        );
        // Nothing inferred about the 10-20 link or the v4 plane.
        assert_eq!(inf.relationship(Asn(10), Asn(20), IpVersion::V6), None);
        assert_eq!(inf.relationship(Asn(20), Asn(30), IpVersion::V4), None);
        assert_eq!(inf.inferred_link_count(IpVersion::V6), 1);
    }

    #[test]
    fn provider_tags_orient_the_other_way() {
        // Community 10:300 ("from provider") on path 10 20 ...: 10 learned
        // the route from its provider 20, so 10 -> 20 is c2p.
        let snap =
            snapshot(vec![entry("2001:db8:100::/48", "10 20 30", &[Community::new(10, 300)])]);
        let inf = CommunityInference::from_snapshot(&snap, &dictionary());
        assert_eq!(
            inf.relationship(Asn(10), Asn(20), IpVersion::V6),
            Some(Relationship::CustomerToProvider)
        );
    }

    #[test]
    fn majority_wins_and_ties_conflict() {
        let snap = snapshot(vec![
            entry("2001:db8:1::/48", "10 20 30", &[Community::new(20, 100)]),
            entry("2001:db8:2::/48", "10 20 30", &[Community::new(20, 100)]),
            entry("2001:db8:3::/48", "10 20 30", &[Community::new(20, 200)]),
        ]);
        let inf = CommunityInference::from_snapshot(&snap, &dictionary());
        let link = inf.link(Asn(20), Asn(30), IpVersion::V6).unwrap();
        assert_eq!(link.relationship, Relationship::ProviderToCustomer);
        assert_eq!(link.votes, 2);
        assert_eq!(link.dissent, 1);
        assert_eq!(link.source, InferenceSource::Communities);

        // A perfect tie is dropped.
        let snap = snapshot(vec![
            entry("2001:db8:1::/48", "10 20 30", &[Community::new(20, 100)]),
            entry("2001:db8:2::/48", "10 20 30", &[Community::new(20, 200)]),
        ]);
        let inf = CommunityInference::from_snapshot(&snap, &dictionary());
        assert_eq!(inf.relationship(Asn(20), Asn(30), IpVersion::V6), None);
        assert_eq!(inf.conflicted_links, 1);
    }

    #[test]
    fn undocumented_communities_and_absent_taggers_are_ignored() {
        let snap = snapshot(vec![
            // 99:100 is undocumented; 20:100 with 20 not on the path.
            entry(
                "2001:db8:1::/48",
                "10 30 40",
                &[Community::new(99, 100), Community::new(20, 100)],
            ),
            // Tagger is the origin (no next hop towards the origin).
            entry("2001:db8:2::/48", "10 20", &[Community::new(20, 100)]),
        ]);
        let inf = CommunityInference::from_snapshot(&snap, &dictionary());
        assert_eq!(inf.inferred_link_count(IpVersion::V6), 0);
        assert_eq!(inf.assertions_v6, 0);
    }

    #[test]
    fn per_plane_inference_is_independent() {
        let snap =
            snapshot(vec![entry("2001:db8:1::/48", "10 20 30", &[Community::new(20, 200)]), {
                let mut e = entry("198.51.100.0/24", "10 20 30", &[Community::new(20, 100)]);
                e.peer = PeerId::new(Asn(10), "192.0.2.1".parse::<IpAddr>().unwrap());
                e
            }]);
        let inf = CommunityInference::from_snapshot(&snap, &dictionary());
        assert_eq!(
            inf.relationship(Asn(20), Asn(30), IpVersion::V6),
            Some(Relationship::PeerToPeer)
        );
        assert_eq!(
            inf.relationship(Asn(20), Asn(30), IpVersion::V4),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(inf.assertions_v4, 1);
        assert_eq!(inf.assertions_v6, 1);
    }

    #[test]
    fn locpref_inferences_fill_gaps_without_overriding_communities() {
        let snap = snapshot(vec![entry("2001:db8:1::/48", "10 20 30", &[Community::new(20, 100)])]);
        let mut inf = CommunityInference::from_snapshot(&snap, &dictionary());
        // Cannot override the community-derived link.
        assert!(!inf.add_locpref_inference(
            Asn(20),
            Asn(30),
            IpVersion::V6,
            Relationship::PeerToPeer
        ));
        // Fills a genuinely unknown link.
        assert!(inf.add_locpref_inference(
            Asn(10),
            Asn(20),
            IpVersion::V6,
            Relationship::CustomerToProvider
        ));
        assert!(!inf.add_locpref_inference(
            Asn(20),
            Asn(10),
            IpVersion::V6,
            Relationship::PeerToPeer
        ));
        assert_eq!(
            inf.relationship(Asn(20), Asn(10), IpVersion::V6),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(inf.inferred_by_source(IpVersion::V6, InferenceSource::LocalPref), 1);
        assert_eq!(inf.inferred_by_source(IpVersion::V6, InferenceSource::Communities), 1);
        // Re-resolving keeps the LocPrf entry.
        inf.resolve_all();
        assert_eq!(inf.inferred_by_source(IpVersion::V6, InferenceSource::LocalPref), 1);
    }

    #[test]
    fn annotate_graph_applies_inferences() {
        let snap = snapshot(vec![entry("2001:db8:1::/48", "10 20 30", &[Community::new(20, 100)])]);
        let inf = CommunityInference::from_snapshot(&snap, &dictionary());
        let mut graph = AsGraph::new();
        graph.observe_link(Asn(20), Asn(30), IpVersion::V6);
        inf.annotate_graph(&mut graph);
        assert_eq!(
            graph.relationship(Asn(20), Asn(30), IpVersion::V6),
            Some(Relationship::ProviderToCustomer)
        );
    }

    #[test]
    fn iter_yields_canonical_links() {
        let snap = snapshot(vec![entry("2001:db8:1::/48", "10 30 20", &[Community::new(30, 100)])]);
        let mut d = dictionary();
        d.insert(
            Community::new(30, 100),
            CommunityMeaning::Relationship(RelationshipTag::FromCustomer),
        );
        let inf = CommunityInference::from_snapshot(&snap, &d);
        let links: Vec<_> = inf.iter().collect();
        assert_eq!(links.len(), 1);
        let (a, b, plane, link) = links[0];
        assert!(a < b);
        assert_eq!((a, b, plane), (Asn(20), Asn(30), IpVersion::V6));
        // 30 is provider of 20; canonical orientation 20 -> 30 is c2p.
        assert_eq!(link.relationship, Relationship::CustomerToProvider);
    }
}
