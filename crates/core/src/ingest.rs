//! Streaming BGP4MP ingestion: a resident RIB that replays update
//! archives window by window, with delta-repaired temporal sweeps.
//!
//! The paper's methodology is snapshot-oriented: pool the collectors'
//! TABLE_DUMP_V2 files, run the measurement once. Real archives, though,
//! interleave periodic snapshots with continuous BGP4MP update streams,
//! and a longitudinal study replays those updates to measure how the
//! topology — and the hybrid-relationship findings — drift over time.
//! This module provides that replay path:
//!
//! * [`LiveRib`] — a resident routing table keyed by `(prefix, peer)`
//!   that applies decoded [`mrt::MrtRecord`] update messages (announce,
//!   path change, withdraw) and can emit its current state as a canonical
//!   [`RibSnapshot`] at any instant.
//! * [`UpdateStream`] — a windowed sequence of update records, parseable
//!   zero-copy from raw MRT bytes ([`UpdateStream::from_bytes`]) or
//!   wrapped around synthesised windows
//!   (`routesim::Scenario::update_stream`).
//! * [`ExtractCache`] — an incrementally maintained mirror of
//!   [`crate::extract::extract`]'s output: per-plane entry counters,
//!   distinct de-prepended paths with occurrence counts, link reference
//!   counts and the per-link distinct-IPv6-path visibility. Applying a
//!   [`RibDelta`] costs work proportional to the changed route, not the
//!   table.
//! * [`ValleyCache`] — per-head valley-free [`DistanceMap`]s reused
//!   across windows. When the annotated graph changes between windows by
//!   pure relationship *additions*, every cached map is repaired in place
//!   via [`DistanceMap::apply_correction_with`]; a single flip is
//!   repaired through the same delta engine; anything wider (an edge or
//!   node vanishing, several flips at once) resets the cache and the maps
//!   are recomputed lazily. Repairs are exact, so the valley report is
//!   byte-identical to a fresh analysis.
//! * [`TemporalSweep`] — the window driver: apply one window of updates,
//!   run the measurement pipeline over the resident table (routing the
//!   extraction and valley stages through the caches when incremental
//!   mode is on), and report per-window churn statistics.
//!
//! **Determinism contract.** Replaying a stream to window *w* produces a
//! report byte-identical to a full recompute over [`LiveRib::snapshot`]
//! at window *w* — at every worker count, with incremental repair on or
//! off. The determinism suite and a property test pin this.

use std::collections::BTreeMap;

use asgraph::{AsGraph, DeltaOutcome, DistanceMap, EdgeCorrection, RemovalPolicy};
use bgp_types::{
    Asn, CollectorId, IpVersion, PathAttributes, PeerId, Prefix, Relationship, RibEntry,
    RibSnapshot, RouteSource,
};
use bytes::{Bytes, BytesMut};
use irr::CommunityDictionary;
use mrt::{MrtBytesReader, MrtError, MrtRecord, MrtRecordBody};
use topogen::GroundTruth;

use crate::extract::{ExtractedData, ObservedPath};
use crate::pipeline::{Pipeline, PipelineInput};
use crate::report::Report;
use crate::valley::{analyze_valleys_impl, ValleyReport};

/// One route-level change produced by applying an update message: the
/// route under `(prefix, peer)` went from `old` to `new` (either side
/// `None` when the route appeared or disappeared).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibDelta {
    /// The affected prefix (its version is the plane of the change).
    pub prefix: Prefix,
    /// The peer whose route changed.
    pub peer: PeerId,
    /// Attributes before the change (`None`: the route is new).
    pub old: Option<PathAttributes>,
    /// Attributes after the change (`None`: the route was withdrawn).
    pub new: Option<PathAttributes>,
}

/// Counters over one applied batch of update records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Announcement NLRI processed (including re-announcements).
    pub announcements: usize,
    /// Withdrawal prefixes processed (including no-op withdrawals).
    pub withdrawals: usize,
    /// Routes whose table state actually changed.
    pub changed: usize,
    /// Messages that restated the table verbatim (duplicate announce,
    /// withdraw of an absent route).
    pub redundant: usize,
}

impl ApplyStats {
    fn absorb(&mut self, other: ApplyStats) {
        self.announcements += other.announcements;
        self.withdrawals += other.withdrawals;
        self.changed += other.changed;
        self.redundant += other.redundant;
    }
}

/// A resident routing table: the collapsed `(prefix, peer)` view of a
/// pooled snapshot, mutable by BGP4MP update messages.
///
/// The table is a sorted map, so [`LiveRib::snapshot`] always emits
/// entries in one canonical order regardless of the update history that
/// produced the state — the property the replay-equals-recompute
/// contract leans on.
#[derive(Debug, Clone, Default)]
pub struct LiveRib {
    collector: Option<CollectorId>,
    timestamp: u64,
    table: BTreeMap<(Prefix, PeerId), PathAttributes>,
}

impl LiveRib {
    /// Collapse a pooled snapshot into a resident table. When the pool
    /// carries several entries for the same `(prefix, peer)` — the same
    /// feeder seen through two collectors — the last one wins, exactly as
    /// a replayed duplicate announcement would.
    pub fn from_snapshot(snapshot: &RibSnapshot) -> Self {
        let mut table = BTreeMap::new();
        for entry in &snapshot.entries {
            table.insert((entry.prefix, entry.peer), entry.attrs.clone());
        }
        LiveRib { collector: snapshot.collector.clone(), timestamp: snapshot.timestamp, table }
    }

    /// Number of resident routes.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no route is resident.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The timestamp of the last applied record (or of the base snapshot).
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Apply one decoded MRT record. BGP4MP UPDATE messages mutate the
    /// table (withdrawals first, then announcements, as RFC 4271 orders
    /// them inside one message); every other record type — including
    /// OPEN/KEEPALIVE wrapped in BGP4MP — is ignored. Returns the
    /// route-level deltas, in the order they were applied, and updates
    /// `stats`.
    pub fn apply_record(&mut self, record: &MrtRecord, stats: &mut ApplyStats) -> Vec<RibDelta> {
        let MrtRecordBody::Bgp4mp(message) = &record.body else {
            return Vec::new();
        };
        let Some(update) = &message.update else {
            return Vec::new();
        };
        self.timestamp = record.header.timestamp as u64;
        let peer = PeerId::new(message.peer_asn, message.peer_addr);
        let mut deltas = Vec::new();
        for prefix in &update.withdrawn {
            stats.withdrawals += 1;
            match self.table.remove(&(*prefix, peer)) {
                Some(old) => {
                    stats.changed += 1;
                    deltas.push(RibDelta { prefix: *prefix, peer, old: Some(old), new: None });
                }
                None => stats.redundant += 1,
            }
        }
        for prefix in &update.announced {
            stats.announcements += 1;
            let old = self.table.insert((*prefix, peer), update.attrs.clone());
            if old.as_ref() == Some(&update.attrs) {
                stats.redundant += 1;
                continue;
            }
            stats.changed += 1;
            deltas.push(RibDelta { prefix: *prefix, peer, old, new: Some(update.attrs.clone()) });
        }
        deltas
    }

    /// The current table as a canonical snapshot: entries sorted by
    /// `(prefix, peer)`, stamped with the latest applied timestamp.
    pub fn snapshot(&self) -> RibSnapshot {
        let mut snapshot = RibSnapshot {
            collector: self.collector.clone(),
            timestamp: self.timestamp,
            entries: Vec::with_capacity(self.table.len()),
        };
        for ((prefix, peer), attrs) in &self.table {
            let mut entry = RibEntry::new(*peer, *prefix, attrs.clone());
            entry.source = RouteSource::MrtTableDump;
            snapshot.push(entry);
        }
        snapshot
    }

    /// Iterate the resident routes in canonical order.
    pub fn routes(&self) -> impl Iterator<Item = (&Prefix, &PeerId, &PathAttributes)> {
        self.table.iter().map(|((prefix, peer), attrs)| (prefix, peer, attrs))
    }
}

/// A windowed update stream: each window holds the records between two
/// consecutive table snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStream {
    windows: Vec<Vec<MrtRecord>>,
}

impl UpdateStream {
    /// Wrap pre-grouped windows (e.g. from
    /// `routesim::Scenario::update_stream`).
    pub fn from_windows(windows: Vec<Vec<MrtRecord>>) -> Self {
        UpdateStream { windows }
    }

    /// Parse a raw MRT updates file zero-copy and group consecutive
    /// records that share a header timestamp into windows — the inverse
    /// of [`UpdateStream::to_bytes`].
    pub fn from_bytes(buf: Bytes) -> Result<Self, MrtError> {
        let mut windows: Vec<Vec<MrtRecord>> = Vec::new();
        let mut current_ts = None;
        for record in MrtBytesReader::new(buf).records() {
            let record = record?;
            if current_ts != Some(record.header.timestamp) {
                current_ts = Some(record.header.timestamp);
                windows.push(Vec::new());
            }
            windows.last_mut().expect("pushed above").push(record);
        }
        Ok(UpdateStream { windows })
    }

    /// Encode every record back to MRT wire bytes, windows concatenated
    /// in order.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        for record in self.windows.iter().flatten() {
            record.encode(&mut buf);
        }
        buf.freeze()
    }

    /// The windows, in replay order.
    pub fn windows(&self) -> &[Vec<MrtRecord>] {
        &self.windows
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when the stream holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total records across all windows.
    pub fn record_count(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }
}

fn is_bogus(attrs: &PathAttributes) -> bool {
    attrs.as_path.is_empty() || attrs.as_path.has_loop() || attrs.as_path.has_reserved_asn()
}

fn canonical(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// An incrementally maintained mirror of the extraction stage.
///
/// [`ExtractCache::materialize`] produces an [`ExtractedData`] equal — in
/// every report-visible respect — to running
/// [`crate::extract::extract`] over the corresponding
/// [`LiveRib::snapshot`], but applying one [`RibDelta`] costs work
/// proportional to the changed route's path length, not to the table.
#[derive(Debug, Clone, Default)]
pub struct ExtractCache {
    entries_v4: usize,
    entries_v6: usize,
    discarded: usize,
    paths_v4: BTreeMap<Vec<Asn>, usize>,
    paths_v6: BTreeMap<Vec<Asn>, usize>,
    links_v4: BTreeMap<(Asn, Asn), usize>,
    links_v6: BTreeMap<(Asn, Asn), usize>,
    v6_path_links: BTreeMap<(Asn, Asn), usize>,
}

impl ExtractCache {
    /// Seed the cache from a resident table.
    pub fn from_rib(rib: &LiveRib) -> Self {
        let mut cache = ExtractCache::default();
        for (prefix, _, attrs) in rib.routes() {
            cache.add(prefix.version(), attrs);
        }
        cache
    }

    /// Fold one route-level change into the counters.
    pub fn apply(&mut self, delta: &RibDelta) {
        let plane = delta.prefix.version();
        if let Some(old) = &delta.old {
            self.remove(plane, old);
        }
        if let Some(new) = &delta.new {
            self.add(plane, new);
        }
    }

    fn add(&mut self, plane: IpVersion, attrs: &PathAttributes) {
        if is_bogus(attrs) {
            self.discarded += 1;
            return;
        }
        match plane {
            IpVersion::V4 => self.entries_v4 += 1,
            IpVersion::V6 => self.entries_v6 += 1,
        }
        let flat: Vec<Asn> = attrs.as_path.deprepended().asns().collect();
        let paths = match plane {
            IpVersion::V4 => &mut self.paths_v4,
            IpVersion::V6 => &mut self.paths_v6,
        };
        let occurrences = paths.entry(flat.clone()).or_insert(0);
        *occurrences += 1;
        if *occurrences == 1 && plane == IpVersion::V6 {
            // A new distinct IPv6 path raises the visibility of every
            // link it traverses — over flattened hops, exactly as
            // `extract` counts them.
            for pair in flat.windows(2) {
                *self.v6_path_links.entry(canonical(pair[0], pair[1])).or_insert(0) += 1;
            }
        }
        let links = match plane {
            IpVersion::V4 => &mut self.links_v4,
            IpVersion::V6 => &mut self.links_v6,
        };
        for (a, b) in attrs.as_path.links() {
            *links.entry(canonical(a, b)).or_insert(0) += 1;
        }
    }

    fn remove(&mut self, plane: IpVersion, attrs: &PathAttributes) {
        if is_bogus(attrs) {
            self.discarded -= 1;
            return;
        }
        match plane {
            IpVersion::V4 => self.entries_v4 -= 1,
            IpVersion::V6 => self.entries_v6 -= 1,
        }
        let flat: Vec<Asn> = attrs.as_path.deprepended().asns().collect();
        let paths = match plane {
            IpVersion::V4 => &mut self.paths_v4,
            IpVersion::V6 => &mut self.paths_v6,
        };
        let occurrences = paths.get_mut(&flat).expect("removed path was added");
        *occurrences -= 1;
        if *occurrences == 0 {
            paths.remove(&flat);
            if plane == IpVersion::V6 {
                for pair in flat.windows(2) {
                    let key = canonical(pair[0], pair[1]);
                    let count = self.v6_path_links.get_mut(&key).expect("counted on add");
                    *count -= 1;
                    if *count == 0 {
                        self.v6_path_links.remove(&key);
                    }
                }
            }
        }
        let links = match plane {
            IpVersion::V4 => &mut self.links_v4,
            IpVersion::V6 => &mut self.links_v6,
        };
        for (a, b) in attrs.as_path.links() {
            let key = canonical(a, b);
            let count = links.get_mut(&key).expect("counted on add");
            *count -= 1;
            if *count == 0 {
                links.remove(&key);
            }
        }
    }

    /// Materialise the counters as [`ExtractedData`]. The graph inserts
    /// links in sorted order (not first-seen order, as a fresh extraction
    /// would), which permutes internal node ids but no report byte — every
    /// downstream consumer sorts or counts.
    pub fn materialize(&self) -> ExtractedData {
        let mut data = ExtractedData {
            entries_v4: self.entries_v4,
            entries_v6: self.entries_v6,
            discarded_entries: self.discarded,
            ..Default::default()
        };
        for &(a, b) in self.links_v4.keys() {
            data.graph.observe_link(a, b, IpVersion::V4);
        }
        for &(a, b) in self.links_v6.keys() {
            data.graph.observe_link(a, b, IpVersion::V6);
        }
        for (path, &occurrences) in &self.paths_v4 {
            data.paths_v4.push(ObservedPath { path: path.clone(), occurrences });
        }
        for (path, &occurrences) in &self.paths_v6 {
            data.paths_v6.push(ObservedPath { path: path.clone(), occurrences });
        }
        data.v6_link_path_count = self.v6_path_links.iter().map(|(&k, &v)| (k, v)).collect();
        data
    }
}

/// Counters over one window's valley-cache maintenance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Relationship-relevant edge changes observed between windows.
    pub corrections: usize,
    /// Corrections the delta engine proved label-neutral.
    pub unchanged: usize,
    /// Corrections resolved by in-place frontier repair.
    pub repaired: usize,
    /// Corrections that forced a full per-map rebuild.
    pub rebuilt: usize,
    /// Cache resets (node churn, vanished edges, or too-wide diffs).
    pub resets: usize,
    /// Distance maps served from the cache this window.
    pub maps_reused: usize,
    /// Distance maps computed fresh this window.
    pub maps_computed: usize,
}

impl RepairStats {
    fn absorb(&mut self, other: RepairStats) {
        self.corrections += other.corrections;
        self.unchanged += other.unchanged;
        self.repaired += other.repaired;
        self.rebuilt += other.rebuilt;
        self.resets += other.resets;
        self.maps_reused += other.maps_reused;
        self.maps_computed += other.maps_computed;
    }
}

/// Per-head valley-free [`DistanceMap`]s reused across windows, repaired
/// through the delta engine when the annotated graph changes compatibly.
#[derive(Debug, Default)]
pub struct ValleyCache {
    policy: RemovalPolicy,
    nodes: Vec<Asn>,
    edges: BTreeMap<(Asn, Asn), Relationship>,
    maps: BTreeMap<Asn, DistanceMap>,
    stats: RepairStats,
}

impl ValleyCache {
    /// An empty cache using `policy` for load-bearing removals inside a
    /// single-flip repair.
    pub fn new(policy: RemovalPolicy) -> Self {
        ValleyCache { policy, ..Default::default() }
    }

    /// Reconcile the cache with this window's annotated graph. Cached maps
    /// survive (repaired where needed) when the node set is unchanged and
    /// the edge diff is repairable through
    /// [`DistanceMap::apply_correction_with`]: any number of pure
    /// relationship *additions*, or exactly one flip. Vanished edges,
    /// node churn or multiple simultaneous flips reset the cache — the
    /// sequential-composition argument for the delta engine only covers
    /// monotone (addition-only) batches.
    pub fn prepare(&mut self, annotated: &AsGraph) {
        let plane = IpVersion::V6;
        let new_nodes: Vec<Asn> = annotated.asns().collect();
        let mut new_edges: BTreeMap<(Asn, Asn), Relationship> = BTreeMap::new();
        for edge in annotated.plane_edges(plane) {
            let (a, b) = canonical(edge.a, edge.b);
            if let Some(rel) = annotated.relationship(a, b, plane) {
                new_edges.insert((a, b), rel);
            }
        }

        if self.nodes != new_nodes {
            self.reset();
        } else if self.edges.keys().any(|key| !new_edges.contains_key(key)) {
            // An annotated edge vanished from the plane: not expressible
            // as an `EdgeCorrection`, so the maps cannot be repaired.
            self.reset();
        } else {
            let corrections: Vec<EdgeCorrection> = new_edges
                .iter()
                .filter(|(key, rel)| self.edges.get(*key) != Some(rel))
                .map(|(&(a, b), &new)| EdgeCorrection {
                    a,
                    b,
                    plane,
                    old: self.edges.get(&(a, b)).copied(),
                    new,
                })
                .collect();
            self.stats.corrections += corrections.len();
            let flips = corrections.iter().filter(|c| c.old.is_some()).count();
            if flips > 1 || (flips == 1 && corrections.len() > 1) {
                self.reset();
            } else {
                for correction in &corrections {
                    for map in self.maps.values_mut() {
                        match map.apply_correction_with(annotated, correction, self.policy) {
                            DeltaOutcome::Unchanged => self.stats.unchanged += 1,
                            DeltaOutcome::Incremental => self.stats.repaired += 1,
                            DeltaOutcome::FullRebuild => self.stats.rebuilt += 1,
                        }
                    }
                }
            }
        }

        self.nodes = new_nodes;
        self.edges = new_edges;
    }

    fn reset(&mut self) {
        if !self.maps.is_empty() {
            self.stats.resets += 1;
        }
        self.maps.clear();
    }

    /// Whether a valley-free path `head → origin` exists on `annotated`
    /// (which must be the graph last passed to [`ValleyCache::prepare`]).
    /// Serves from a cached (possibly repaired) map, computing and caching
    /// a fresh one on miss.
    pub fn reachable(&mut self, annotated: &AsGraph, head: Asn, origin: Asn) -> bool {
        let map = match self.maps.entry(head) {
            std::collections::btree_map::Entry::Occupied(slot) => {
                self.stats.maps_reused += 1;
                slot.into_mut()
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                self.stats.maps_computed += 1;
                slot.insert(DistanceMap::compute(annotated, head, IpVersion::V6))
            }
        };
        annotated.node(origin).map(|n| map.is_reachable(n.index())).unwrap_or(false)
    }

    /// Drain this window's repair counters.
    pub fn take_stats(&mut self) -> RepairStats {
        std::mem::take(&mut self.stats)
    }

    /// Number of cached distance maps.
    pub fn cached_maps(&self) -> usize {
        self.maps.len()
    }
}

/// The cache bundle an incremental [`TemporalSweep`] threads through
/// [`Pipeline::run_with_caches`].
#[derive(Debug)]
pub struct IngestCaches {
    /// Incremental extraction counters.
    pub extract: ExtractCache,
    /// Delta-repaired valley reachability maps.
    pub valley: ValleyCache,
}

impl IngestCaches {
    /// Seed the bundle from a resident table.
    pub fn from_rib(rib: &LiveRib, policy: RemovalPolicy) -> Self {
        IngestCaches { extract: ExtractCache::from_rib(rib), valley: ValleyCache::new(policy) }
    }
}

/// Run the valley stage, through the cache when one is supplied. Both
/// arms produce byte-identical reports — the cache's oracle is exact.
pub(crate) fn run_valley_stage(
    data: &ExtractedData,
    annotated: &AsGraph,
    cache: Option<&mut ValleyCache>,
) -> ValleyReport {
    match cache {
        Some(cache) => {
            cache.prepare(annotated);
            analyze_valleys_impl(data, annotated, IpVersion::V6, &mut |graph, head, origin| {
                cache.reachable(graph, head, origin)
            })
        }
        None => crate::valley::analyze_valleys(data, annotated, IpVersion::V6),
    }
}

/// One window's outcome: the report over the table state at the window's
/// end, plus the apply/repair churn that produced it.
#[derive(Debug)]
pub struct WindowOutcome {
    /// Timestamp of the table state this window's report measures.
    pub timestamp: u64,
    /// Update-application counters for the window.
    pub apply: ApplyStats,
    /// Valley-cache repair counters (all-zero in full-recompute mode).
    pub repair: RepairStats,
    /// The measurement report at the window's end.
    pub report: Report,
}

/// The windowed longitudinal driver: replay an [`UpdateStream`] over a
/// [`LiveRib`] and measure after every window.
#[derive(Debug, Clone)]
pub struct TemporalSweep {
    /// The measurement pipeline run after each window.
    pub pipeline: Pipeline,
    /// Repair the extraction/valley state across windows (`true`) or
    /// recompute everything from the snapshot each window (`false`).
    /// Execution-only: both modes render byte-identical reports.
    pub incremental: bool,
}

impl TemporalSweep {
    /// A sweep running `pipeline` after each window.
    pub fn new(pipeline: Pipeline, incremental: bool) -> Self {
        TemporalSweep { pipeline, incremental }
    }

    /// Replay `stream` over a fresh [`LiveRib`] seeded from `base`,
    /// producing one [`WindowOutcome`] per window.
    pub fn run(
        &self,
        base: &RibSnapshot,
        dictionary: &CommunityDictionary,
        truth: Option<&GroundTruth>,
        stream: &UpdateStream,
    ) -> Vec<WindowOutcome> {
        let mut live = LiveRib::from_snapshot(base);
        let policy = if self.pipeline.options.sweep.removal_repair {
            RemovalPolicy::Repair
        } else {
            RemovalPolicy::Rebuild
        };
        let mut caches = self.incremental.then(|| IngestCaches::from_rib(&live, policy));
        let mut outcomes = Vec::with_capacity(stream.len());
        for window in stream.windows() {
            let mut apply = ApplyStats::default();
            for record in window {
                let deltas = live.apply_record(record, &mut apply);
                if let Some(caches) = &mut caches {
                    for delta in &deltas {
                        caches.extract.apply(delta);
                    }
                }
            }
            let input = PipelineInput {
                snapshot: live.snapshot(),
                dictionary: dictionary.clone(),
                truth: truth.cloned(),
            };
            let report = match &mut caches {
                Some(caches) => self.pipeline.run_with_caches(input, caches).0,
                None => self.pipeline.run(input),
            };
            let repair = caches.as_mut().map(|c| c.valley.take_stats()).unwrap_or_default();
            outcomes.push(WindowOutcome { timestamp: live.timestamp(), apply, repair, report });
        }
        outcomes
    }
}

/// Fold per-window [`ApplyStats`]/[`RepairStats`] into stream totals.
pub fn totals(outcomes: &[WindowOutcome]) -> (ApplyStats, RepairStats) {
    let mut apply = ApplyStats::default();
    let mut repair = RepairStats::default();
    for outcome in outcomes {
        apply.absorb(outcome.apply);
        repair.absorb(outcome.repair);
    }
    (apply, repair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use routesim::{Scenario, SimConfig, UpdateStreamConfig};
    use topogen::TopologyConfig;

    fn scenario() -> Scenario {
        Scenario::build(&TopologyConfig::tiny(), &SimConfig::small())
    }

    fn stream_for(scenario: &Scenario, windows: usize, events: usize, seed: u64) -> UpdateStream {
        UpdateStream::from_windows(scenario.update_stream(&UpdateStreamConfig {
            windows,
            events_per_window: events,
            seed,
        }))
    }

    fn assert_extract_matches(cache: &ExtractCache, snapshot: &RibSnapshot) {
        let incremental = cache.materialize();
        let fresh = extract(snapshot);
        assert_eq!(incremental.entries_v4, fresh.entries_v4);
        assert_eq!(incremental.entries_v6, fresh.entries_v6);
        assert_eq!(incremental.discarded_entries, fresh.discarded_entries);
        assert_eq!(incremental.paths_v4, fresh.paths_v4);
        assert_eq!(incremental.paths_v6, fresh.paths_v6);
        assert_eq!(incremental.v6_link_path_count, fresh.v6_link_path_count);
        for plane in IpVersion::BOTH {
            assert_eq!(incremental.link_count(plane), fresh.link_count(plane));
            for edge in fresh.graph.plane_edges(plane) {
                assert!(
                    incremental.graph.has_link(edge.a, edge.b, plane),
                    "missing {}-{} on {plane}",
                    edge.a,
                    edge.b
                );
            }
        }
    }

    #[test]
    fn live_rib_applies_withdraw_and_reannounce() {
        let scenario = scenario();
        let base = scenario.pooled_snapshot(1);
        let mut live = LiveRib::from_snapshot(&base);
        let before = live.len();
        assert!(before > 0);

        let stream = stream_for(&scenario, 2, 16, 3);
        let mut stats = ApplyStats::default();
        let mut deltas = 0usize;
        for record in stream.windows().iter().flatten() {
            deltas += live.apply_record(record, &mut stats).len();
        }
        assert_eq!(stats.changed, deltas);
        assert!(stats.announcements + stats.withdrawals > 0);
        assert!(stats.changed > 0, "the stream flaps real routes");
        // The table never grows beyond the base universe: the synthesiser
        // only flaps existing keys.
        assert!(live.len() <= before);
        let snap = live.snapshot();
        assert_eq!(snap.len(), live.len());
        // Canonical order: sorted by (prefix, peer).
        let mut keys: Vec<_> = snap.entries.iter().map(|e| (e.prefix, e.peer)).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted);
        keys.dedup();
        assert_eq!(keys.len(), snap.len(), "one route per (prefix, peer)");
    }

    #[test]
    fn extract_cache_tracks_fresh_extraction() {
        let scenario = scenario();
        let base = scenario.pooled_snapshot(1);
        let mut live = LiveRib::from_snapshot(&base);
        let mut cache = ExtractCache::from_rib(&live);
        assert_extract_matches(&cache, &live.snapshot());

        let stream = stream_for(&scenario, 3, 24, 9);
        let mut stats = ApplyStats::default();
        for window in stream.windows() {
            for record in window {
                for delta in live.apply_record(record, &mut stats) {
                    cache.apply(&delta);
                }
            }
            assert_extract_matches(&cache, &live.snapshot());
        }
    }

    #[test]
    fn update_stream_roundtrips_through_bytes() {
        let scenario = scenario();
        let stream = stream_for(&scenario, 3, 8, 2);
        let parsed = UpdateStream::from_bytes(stream.to_bytes()).unwrap();
        // The synthesiser leaves `header.length` at 0 (encode computes it),
        // so compare re-encoded bytes, not structs.
        assert_eq!(parsed.to_bytes(), stream.to_bytes(), "byte-stable round trip");
        assert_eq!(parsed.record_count(), 24);
        assert_eq!(parsed.len(), 3);
        // The ET microsecond field survives the byte round trip.
        assert_eq!(parsed.windows()[1][3].micros, Some(3_000));
    }

    #[test]
    fn temporal_sweep_incremental_matches_full_recompute() {
        let scenario = scenario();
        let base = scenario.pooled_snapshot(1);
        let dictionary = scenario.registry.build_dictionary();
        let stream = stream_for(&scenario, 3, 24, 7);
        let pipeline = Pipeline::default();

        let full = TemporalSweep::new(pipeline.clone(), false).run(
            &base,
            &dictionary,
            Some(&scenario.truth),
            &stream,
        );
        let incremental = TemporalSweep::new(pipeline, true).run(
            &base,
            &dictionary,
            Some(&scenario.truth),
            &stream,
        );
        assert_eq!(full.len(), 3);
        for (f, i) in full.iter().zip(&incremental) {
            assert_eq!(f.timestamp, i.timestamp);
            assert_eq!(f.apply, i.apply, "apply churn is mode-independent");
            assert_eq!(
                f.report.to_json(),
                i.report.to_json(),
                "window report diverged at t={}",
                f.timestamp
            );
        }
        let (_, full_repair) = totals(&full);
        assert_eq!(full_repair, RepairStats::default(), "full mode never repairs");
        let (apply, repair) = totals(&incremental);
        assert!(apply.changed > 0);
        assert!(repair.maps_computed + repair.maps_reused > 0 || repair.corrections == 0);
    }

    #[test]
    fn valley_cache_repairs_pure_additions() {
        use bgp_types::Relationship;
        // A chain 1-2-3 annotated p2c/p2c; maps cached; then a new peering
        // 3-4 appears (pure addition) — the cached map must repair, not
        // reset, and agree with a fresh BFS.
        let mut g = AsGraph::new();
        g.annotate_both(Asn(1), Asn(2), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(2), Asn(3), Relationship::ProviderToCustomer);
        g.observe_link(Asn(3), Asn(4), IpVersion::V6);
        g.observe_link(Asn(1), Asn(2), IpVersion::V6);
        g.observe_link(Asn(2), Asn(3), IpVersion::V6);

        let mut cache = ValleyCache::new(RemovalPolicy::Rebuild);
        cache.prepare(&g);
        assert!(cache.reachable(&g, Asn(1), Asn(3)));
        assert!(!cache.reachable(&g, Asn(1), Asn(4)), "4 unreachable before the addition");
        assert_eq!(cache.cached_maps(), 1);

        g.annotate(Asn(3), Asn(4), IpVersion::V6, Relationship::ProviderToCustomer);
        cache.prepare(&g);
        let stats_mid = cache.stats;
        assert_eq!(stats_mid.resets, 0, "a pure addition repairs in place");
        assert_eq!(stats_mid.corrections, 1);
        assert!(cache.reachable(&g, Asn(1), Asn(4)), "repaired map sees the new edge");
        let fresh = DistanceMap::compute(&g, Asn(1), IpVersion::V6);
        let cached = cache.maps.get(&Asn(1)).unwrap();
        assert_eq!(cached.distances(), fresh.distances());
    }

    #[test]
    fn valley_cache_resets_on_vanished_edges_and_node_churn() {
        use bgp_types::Relationship;
        let mut g = AsGraph::new();
        g.annotate(Asn(1), Asn(2), IpVersion::V6, Relationship::PeerToPeer);
        g.observe_link(Asn(1), Asn(2), IpVersion::V6);
        let mut cache = ValleyCache::new(RemovalPolicy::Rebuild);
        cache.prepare(&g);
        assert!(cache.reachable(&g, Asn(1), Asn(2)));
        assert_eq!(cache.cached_maps(), 1);

        // Same node set, edge no longer annotated on the plane: rebuild a
        // graph where 1-2 exists but is unannotated.
        let mut g2 = AsGraph::new();
        g2.observe_link(Asn(1), Asn(2), IpVersion::V6);
        cache.prepare(&g2);
        assert_eq!(cache.stats.resets, 1, "vanished annotation resets the cache");
        assert_eq!(cache.cached_maps(), 0);

        assert!(!cache.reachable(&g2, Asn(1), Asn(2)));
        // Node churn resets too.
        let mut g3 = AsGraph::new();
        g3.observe_link(Asn(1), Asn(3), IpVersion::V6);
        g3.annotate(Asn(1), Asn(3), IpVersion::V6, Relationship::PeerToPeer);
        cache.prepare(&g3);
        assert_eq!(cache.stats.resets, 2);
    }
}
