//! Extraction of AS paths and AS links from collector RIB snapshots.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, RibEntry, RibSnapshot};

/// One distinct observed AS path on one plane, with how many RIB entries
/// carried it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedPath {
    /// The de-prepended AS path, collector peer first, origin last.
    pub path: Vec<Asn>,
    /// How many (peer, prefix) RIB entries used this exact path.
    pub occurrences: usize,
}

/// Everything extracted from the RIBs, per plane.
#[derive(Debug, Clone, Default)]
pub struct ExtractedData {
    /// Link-presence graph: every AS link observed on either plane
    /// (no relationship annotations yet).
    pub graph: AsGraph,
    /// Distinct IPv4 paths.
    pub paths_v4: Vec<ObservedPath>,
    /// Distinct IPv6 paths.
    pub paths_v6: Vec<ObservedPath>,
    /// Number of RIB entries inspected per plane (after sanitisation).
    pub entries_v4: usize,
    /// Number of RIB entries inspected on the IPv6 plane.
    pub entries_v6: usize,
    /// Number of RIB entries discarded as bogus (loops, reserved ASNs,
    /// empty paths), across both planes.
    pub discarded_entries: usize,
    /// How many distinct IPv6 paths traverse each link (canonical
    /// lower-ASN-first key); the paper's "visibility" of a link.
    pub v6_link_path_count: HashMap<(Asn, Asn), usize>,
}

impl ExtractedData {
    /// Distinct paths on a plane.
    pub fn paths(&self, plane: IpVersion) -> &[ObservedPath] {
        match plane {
            IpVersion::V4 => &self.paths_v4,
            IpVersion::V6 => &self.paths_v6,
        }
    }

    /// Number of distinct AS links observed on a plane.
    pub fn link_count(&self, plane: IpVersion) -> usize {
        self.graph.plane_edge_count(plane)
    }

    /// Number of distinct AS links observed on both planes.
    pub fn dual_stack_link_count(&self) -> usize {
        self.graph.dual_stack_edges().count()
    }

    /// The number of distinct IPv6 paths that traverse the given link.
    pub fn v6_link_visibility(&self, a: Asn, b: Asn) -> usize {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.v6_link_path_count.get(&key).copied().unwrap_or(0)
    }
}

/// Extract paths and links from a pooled snapshot.
///
/// Paths are de-prepended and deduplicated; entries whose AS path is bogus
/// (empty, contains a loop after de-prepending, or contains reserved ASNs)
/// are discarded, as the paper's data cleaning does. Links adjacent to
/// AS_SET segments are not extracted because the true adjacency is unknown.
pub fn extract(snapshot: &RibSnapshot) -> ExtractedData {
    let mut data = ExtractedData::default();
    let mut seen_paths: HashMap<(IpVersion, Vec<Asn>), usize> = HashMap::new();

    for entry in &snapshot.entries {
        if entry.has_bogus_path() {
            data.discarded_entries += 1;
            continue;
        }
        let plane = entry.plane();
        match plane {
            IpVersion::V4 => data.entries_v4 += 1,
            IpVersion::V6 => data.entries_v6 += 1,
        }
        record_entry(&mut data, &mut seen_paths, entry, plane);
    }

    // Materialise the deduplicated paths.
    let mut paths: Vec<((IpVersion, Vec<Asn>), usize)> = seen_paths.into_iter().collect();
    paths.sort_by(|a, b| a.0.cmp(&b.0));
    for ((plane, path), occurrences) in paths {
        let observed = ObservedPath { path, occurrences };
        match plane {
            IpVersion::V4 => data.paths_v4.push(observed),
            IpVersion::V6 => data.paths_v6.push(observed),
        }
    }

    // Per-link IPv6 path visibility over *distinct* paths.
    for observed in &data.paths_v6 {
        for pair in observed.path.windows(2) {
            let key = if pair[0] <= pair[1] { (pair[0], pair[1]) } else { (pair[1], pair[0]) };
            *data.v6_link_path_count.entry(key).or_insert(0) += 1;
        }
    }
    data
}

fn record_entry(
    data: &mut ExtractedData,
    seen_paths: &mut HashMap<(IpVersion, Vec<Asn>), usize>,
    entry: &RibEntry,
    plane: IpVersion,
) {
    let deprepended = entry.attrs.as_path.deprepended();
    // Links (pairs inside sequence segments only).
    for (a, b) in entry.attrs.as_path.links() {
        data.graph.observe_link(a, b, plane);
    }
    // Full flattened path for path-level statistics; paths containing sets
    // still count as paths (the paper counts them) but their set members
    // are flattened in stored order.
    let flat: Vec<Asn> = deprepended.asns().collect();
    *seen_paths.entry((plane, flat)).or_insert(0) += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{CollectorId, PathAttributes, PeerId, Prefix};
    use std::net::IpAddr;

    fn entry(peer_asn: u32, peer_addr: &str, prefix: &str, path: &str) -> RibEntry {
        RibEntry::new(
            PeerId::new(Asn(peer_asn), peer_addr.parse::<IpAddr>().unwrap()),
            prefix.parse::<Prefix>().unwrap(),
            PathAttributes::with_path(path.parse().unwrap()),
        )
    }

    fn snapshot(entries: Vec<RibEntry>) -> RibSnapshot {
        let mut s = RibSnapshot::new(CollectorId::new("t"), 1);
        for e in entries {
            s.push(e);
        }
        s
    }

    #[test]
    fn extracts_paths_and_links_per_plane() {
        let snap = snapshot(vec![
            entry(10, "2001:db8::1", "2001:db8:100::/48", "10 20 30"),
            entry(10, "2001:db8::1", "2001:db8:200::/48", "10 20 30"), // same path
            entry(10, "2001:db8::1", "2001:db8:300::/48", "10 40"),
            entry(10, "192.0.2.1", "198.51.100.0/24", "10 20 30"),
        ]);
        let data = extract(&snap);
        assert_eq!(data.paths_v6.len(), 2);
        assert_eq!(data.paths_v4.len(), 1);
        assert_eq!(data.entries_v6, 3);
        assert_eq!(data.entries_v4, 1);
        assert_eq!(data.discarded_entries, 0);
        assert_eq!(data.link_count(IpVersion::V6), 3); // 10-20, 20-30, 10-40
        assert_eq!(data.link_count(IpVersion::V4), 2);
        assert_eq!(data.dual_stack_link_count(), 2);
        // The duplicated path has occurrences 2.
        let p = data.paths_v6.iter().find(|p| p.path == vec![Asn(10), Asn(20), Asn(30)]).unwrap();
        assert_eq!(p.occurrences, 2);
        assert_eq!(data.paths(IpVersion::V6).len(), 2);
        assert_eq!(data.paths(IpVersion::V4).len(), 1);
    }

    #[test]
    fn bogus_paths_are_discarded() {
        let snap = snapshot(vec![
            entry(10, "192.0.2.1", "198.51.100.0/24", "10 20 10"), // loop
            entry(10, "192.0.2.1", "198.51.101.0/24", "10 64512 30"), // private ASN
            entry(10, "192.0.2.1", "198.51.102.0/24", "10 20"),
        ]);
        let data = extract(&snap);
        assert_eq!(data.discarded_entries, 2);
        assert_eq!(data.paths_v4.len(), 1);
        assert_eq!(data.link_count(IpVersion::V4), 1);
    }

    #[test]
    fn prepending_is_collapsed_and_sets_break_links() {
        let snap = snapshot(vec![entry(
            10,
            "2001:db8::1",
            "2001:db8:100::/48",
            "10 10 20 {30,31} 40 40 50",
        )]);
        let data = extract(&snap);
        assert_eq!(data.paths_v6.len(), 1);
        // Links: only within sequences: 10-20 and 40-50.
        assert_eq!(data.link_count(IpVersion::V6), 2);
        assert!(data.graph.has_link(Asn(10), Asn(20), IpVersion::V6));
        assert!(data.graph.has_link(Asn(40), Asn(50), IpVersion::V6));
        assert!(!data.graph.has_link(Asn(20), Asn(30), IpVersion::V6));
        // The stored path is de-prepended but keeps set members.
        assert_eq!(
            data.paths_v6[0].path,
            vec![Asn(10), Asn(20), Asn(30), Asn(31), Asn(40), Asn(50)]
        );
    }

    #[test]
    fn link_visibility_counts_distinct_v6_paths() {
        let snap = snapshot(vec![
            entry(10, "2001:db8::1", "2001:db8:100::/48", "10 20 30"),
            entry(11, "2001:db8::2", "2001:db8:100::/48", "11 20 30"),
            entry(10, "2001:db8::1", "2001:db8:200::/48", "10 20 40"),
        ]);
        let data = extract(&snap);
        assert_eq!(data.v6_link_visibility(Asn(20), Asn(30)), 2);
        assert_eq!(data.v6_link_visibility(Asn(30), Asn(20)), 2);
        assert_eq!(data.v6_link_visibility(Asn(10), Asn(20)), 2);
        assert_eq!(data.v6_link_visibility(Asn(20), Asn(40)), 1);
        assert_eq!(data.v6_link_visibility(Asn(99), Asn(100)), 0);
    }

    #[test]
    fn empty_snapshot_extracts_nothing() {
        let data = extract(&RibSnapshot::default());
        assert_eq!(data.paths_v4.len() + data.paths_v6.len(), 0);
        assert_eq!(data.graph.node_count(), 0);
        assert_eq!(data.dual_stack_link_count(), 0);
    }

    #[test]
    fn extraction_from_simulated_scenario_is_consistent_with_truth() {
        use routesim::{Scenario, SimConfig};
        use topogen::TopologyConfig;
        let scenario = Scenario::build(&TopologyConfig::tiny(), &SimConfig::small());
        let data = extract(&scenario.merged_snapshot());
        // Every observed link must exist in the ground-truth graph on the
        // same plane.
        for plane in IpVersion::BOTH {
            for edge in data.graph.plane_edges(plane) {
                assert!(
                    scenario.truth.graph.has_link(edge.a, edge.b, plane),
                    "observed {}-{} on {plane} not in ground truth",
                    edge.a,
                    edge.b
                );
            }
        }
        assert!(data.paths_v6.len() > 10);
        assert!(data.link_count(IpVersion::V4) >= data.dual_stack_link_count());
    }
}
