//! Valley-path detection and attribution (Section 3, observation 3).

use serde::{Deserialize, Serialize};

use asgraph::valley::{classify_path, valley_free_distances, PathValidity};
use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion};

use crate::extract::ExtractedData;

/// Why a valley path exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValleyAttribution {
    /// No valley-free path exists between the path's endpoints under the
    /// same relationship annotation: the valley is required for
    /// reachability (the paper's "relaxation of the valley-free rule").
    ReachabilityRelaxation,
    /// A valley-free alternative exists; the valley is a policy violation
    /// or a plain route leak.
    PolicyViolation,
}

/// The outcome of classifying one plane's observed paths.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValleyReport {
    /// Total distinct paths examined.
    pub total_paths: usize,
    /// Paths with at least two ASes whose every link is annotated.
    pub classifiable_paths: usize,
    /// Paths that satisfy the valley-free rule.
    pub valley_free_paths: usize,
    /// Paths that violate the valley-free rule.
    pub valley_paths: usize,
    /// Paths that could not be judged (some link unannotated).
    pub unknown_paths: usize,
    /// Valley paths attributed to reachability-driven relaxation.
    pub reachability_valleys: usize,
    /// Valley paths attributed to policy violations / leaks.
    pub violation_valleys: usize,
}

impl ValleyReport {
    /// Fraction of classifiable paths that are valleys (the paper's 13%).
    pub fn valley_fraction(&self) -> f64 {
        if self.classifiable_paths == 0 {
            0.0
        } else {
            self.valley_paths as f64 / self.classifiable_paths as f64
        }
    }

    /// Fraction of valley paths attributed to reachability (the paper's 16%).
    pub fn reachability_fraction(&self) -> f64 {
        if self.valley_paths == 0 {
            0.0
        } else {
            self.reachability_valleys as f64 / self.valley_paths as f64
        }
    }
}

/// Classify every observed path of `plane` against the relationship
/// annotation in `annotated`, and attribute each valley path to
/// reachability relaxation or policy violation.
///
/// Attribution uses the valley-free reachability between the path's first
/// AS and its origin: if no valley-free path exists between them, the
/// valley was necessary to reach the prefix at all.
pub fn analyze_valleys(
    data: &ExtractedData,
    annotated: &AsGraph,
    plane: IpVersion,
) -> ValleyReport {
    // Cache the valley-free distance maps per path head, so paths sharing a
    // feeder reuse one BFS.
    let mut reach_cache: std::collections::HashMap<Asn, Vec<Option<u32>>> =
        std::collections::HashMap::new();
    analyze_valleys_impl(data, annotated, plane, &mut |graph, head, origin| {
        let distances =
            reach_cache.entry(head).or_insert_with(|| valley_free_distances(graph, head, plane));
        graph.node(origin).and_then(|n| distances[n.index()]).is_some()
    })
}

/// [`analyze_valleys`] with an injected reachability oracle: `reachable`
/// answers "does a valley-free path from `head` to `origin` exist on the
/// annotated graph?". The default analysis passes a fresh-BFS closure; the
/// streaming ingest path ([`crate::ingest`]) passes one backed by
/// delta-repaired [`asgraph::DistanceMap`]s. Both oracles are exact, so
/// every caller produces the same report.
pub(crate) fn analyze_valleys_impl(
    data: &ExtractedData,
    annotated: &AsGraph,
    plane: IpVersion,
    reachable: &mut dyn FnMut(&AsGraph, Asn, Asn) -> bool,
) -> ValleyReport {
    let mut report = ValleyReport { total_paths: data.paths(plane).len(), ..Default::default() };

    for observed in data.paths(plane) {
        let path = &observed.path;
        if path.len() < 2 {
            continue;
        }
        match classify_path(annotated, path, plane) {
            PathValidity::Unknown { .. } => {
                report.unknown_paths += 1;
            }
            PathValidity::ValleyFree => {
                report.classifiable_paths += 1;
                report.valley_free_paths += 1;
            }
            PathValidity::Valley { .. } => {
                report.classifiable_paths += 1;
                report.valley_paths += 1;
                let head = path[0];
                let origin = *path.last().expect("non-empty");
                if reachable(annotated, head, origin) {
                    report.violation_valleys += 1;
                } else {
                    report.reachability_valleys += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use bgp_types::{
        CollectorId, PathAttributes, PeerId, Prefix, Relationship, RibEntry, RibSnapshot,
    };
    use std::net::IpAddr;

    fn v6_entry(prefix: &str, path: &str) -> RibEntry {
        RibEntry::new(
            PeerId::new(Asn(1), "2001:db8::1".parse::<IpAddr>().unwrap()),
            prefix.parse::<Prefix>().unwrap(),
            PathAttributes::with_path(path.parse().unwrap()),
        )
    }

    fn data_from(paths: &[&str]) -> ExtractedData {
        let mut snap = RibSnapshot::new(CollectorId::new("t"), 1);
        for (i, p) in paths.iter().enumerate() {
            snap.push(v6_entry(&format!("2001:db8:{:x}::/48", i + 1), p));
        }
        extract(&snap)
    }

    /// Annotation: 1 -c2p-> 2 -c2p-> 3; 3 -p2p- 4; 4 -p2c-> 5; plus a
    /// peer-only island 6 -p2p- 7 -p2p- 8.
    fn annotation() -> AsGraph {
        let mut g = AsGraph::new();
        g.annotate_both(Asn(2), Asn(1), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(3), Asn(2), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(3), Asn(4), Relationship::PeerToPeer);
        g.annotate_both(Asn(4), Asn(5), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(6), Asn(7), Relationship::PeerToPeer);
        g.annotate_both(Asn(7), Asn(8), Relationship::PeerToPeer);
        g
    }

    #[test]
    fn classifies_valley_free_valley_and_unknown() {
        let data = data_from(&[
            "1 2 3 4 5",   // up, up, peer, down: valley-free
            "5 4 3 2 1",   // up, peer, down, down: valley-free
            "2 1 9",       // link 1-9 unannotated: unknown
            "4 3 2 1",     // peer then down down — wait: 4->3 p2p, 3->2 p2c, 2->1 p2c: valley-free
            "2 3 4 5",     // up, peer, down: valley-free
            "5 4 3 2",     // up, peer, down: valley-free
            "1 2 3 4 5 4", // loop would be discarded at extraction; not included
        ]);
        let g = annotation();
        let report = analyze_valleys(&data, &g, IpVersion::V6);
        assert_eq!(report.unknown_paths, 1);
        assert_eq!(report.valley_paths, 0);
        assert!(report.valley_free_paths >= 5);
        assert_eq!(report.valley_fraction(), 0.0);
        assert_eq!(report.reachability_fraction(), 0.0);
    }

    #[test]
    fn valley_paths_are_detected_and_attributed() {
        let data = data_from(&[
            // 6 -> 7 -> 8: two consecutive peering links = a valley, and no
            // valley-free alternative exists (peer-only island) so it is a
            // reachability relaxation.
            "6 7 8",
            // 5 -> 4 -> 3 -> 2 -> 1 is valley-free; but 3 -> 4 after a
            // descent: path 2 3 4 ... wait use "1 2 3" (up,up) fine. Use a
            // genuine violation with an alternative: 4 -> 5 is p2c, then
            // 5 has no other links, so craft 3 -> 4 -> 5 (peer, down) fine.
            // Violation with alternative: path "2 1" reversed? Use
            // "4 5" then "5 4 3": up, peer — valley-free. Keep it simple:
            // a down-then-up valley between annotated links where an
            // alternative exists: 1 and 9 unannotated won't do. Use
            // "3 2 1" down-down (fine) and "2 3 4 5" up-peer-down (fine).
            // The genuinely violating-with-alternative case:
            // path "5 4 3 2 3" would loop. Instead: "2 1" is p2c (down)
            // then nothing. So add a dedicated annotated triangle below.
            "11 12 13",
        ]);
        let mut g = annotation();
        // Triangle: 12 is provider of both 11 and 13; 11 and 13 also have a
        // direct peering, so 11 can reach 13 valley-free (via the peering),
        // but the observed path 11 -> 12 -> 13 climbs then descends — that
        // is valley-free too. For a violation-with-alternative we need a
        // path that descends then climbs while an alternative exists:
        // observed path 12 -> 11 -> 13 (down to 11, then 11-13 peering after
        // a descent = valley), while 12 -> 13 direct p2c exists.
        g.annotate_both(Asn(12), Asn(11), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(12), Asn(13), Relationship::ProviderToCustomer);
        g.annotate_both(Asn(11), Asn(13), Relationship::PeerToPeer);
        let data2 = data_from(&["6 7 8", "12 11 13"]);
        let report = analyze_valleys(&data2, &g, IpVersion::V6);
        assert_eq!(report.valley_paths, 2);
        assert_eq!(report.reachability_valleys, 1, "6->8 has no valley-free alternative");
        assert_eq!(report.violation_valleys, 1, "12->13 has a direct valley-free path");
        assert!((report.valley_fraction() - 1.0).abs() < 1e-9);
        assert!((report.reachability_fraction() - 0.5).abs() < 1e-9);
        let _ = data; // silence unused in the simpler construction above
    }

    #[test]
    fn empty_data_produces_empty_report() {
        let report = analyze_valleys(&ExtractedData::default(), &AsGraph::new(), IpVersion::V6);
        assert_eq!(report.total_paths, 0);
        assert_eq!(report.valley_fraction(), 0.0);
        assert_eq!(report.reachability_fraction(), 0.0);
    }

    #[test]
    fn strict_simulation_yields_no_valleys_under_ground_truth() {
        use routesim::{Scenario, SimConfig};
        use topogen::TopologyConfig;
        let mut sim = SimConfig::small();
        sim.leak_probability = 0.0;
        sim.v6_reachability_relaxation = false;
        let scenario = Scenario::build(&TopologyConfig::tiny(), &sim);
        let data = extract(&scenario.merged_snapshot());
        for plane in IpVersion::BOTH {
            let report = analyze_valleys(&data, &scenario.truth.graph, plane);
            assert_eq!(report.valley_paths, 0, "unexpected valleys on {plane}");
            assert_eq!(report.unknown_paths, 0, "ground truth annotates every link");
            assert!(report.valley_free_paths > 0);
        }
    }

    #[test]
    fn relaxed_v6_simulation_produces_reachability_valleys() {
        use routesim::{Scenario, SimConfig};
        use topogen::TopologyConfig;
        let mut sim = SimConfig::small();
        sim.leak_probability = 0.0;
        sim.v6_reachability_relaxation = true;
        // A sparse v6 plane makes valley-free partitions likely.
        let mut topo = TopologyConfig::tiny();
        topo.stub_ipv6_adoption = 0.25;
        topo.v6_only_peering_degree = 1.5;
        let scenario = Scenario::build(&topo, &sim);
        let data = extract(&scenario.merged_snapshot());
        let report = analyze_valleys(&data, &scenario.truth.graph, IpVersion::V6);
        // The relaxation may or may not fire for a tiny topology; when it
        // does, every resulting valley must be attributed to reachability.
        assert_eq!(report.violation_valleys, 0);
        assert_eq!(report.valley_paths, report.reachability_valleys);
    }
}
