//! Error types shared by the vocabulary crate.

use std::fmt;

/// Error produced when parsing a textual representation of a BGP type
/// (ASN, prefix, community, AS path, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    kind: ParseErrorKind,
    input: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseErrorKind {
    /// The input was empty where a value was required.
    Empty,
    /// A numeric field could not be parsed or overflowed its range.
    InvalidNumber,
    /// The overall syntax did not match the expected grammar.
    InvalidSyntax(&'static str),
    /// A prefix length exceeded the maximum for the address family.
    PrefixLengthOutOfRange { len: u8, max: u8 },
    /// Host bits were set beyond the prefix length.
    HostBitsSet,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, input: impl Into<String>) -> Self {
        Self { kind, input: input.into() }
    }

    pub(crate) fn empty(input: impl Into<String>) -> Self {
        Self::new(ParseErrorKind::Empty, input)
    }

    pub(crate) fn number(input: impl Into<String>) -> Self {
        Self::new(ParseErrorKind::InvalidNumber, input)
    }

    pub(crate) fn syntax(expected: &'static str, input: impl Into<String>) -> Self {
        Self::new(ParseErrorKind::InvalidSyntax(expected), input)
    }

    /// The offending input, verbatim.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "empty input where a value was required"),
            ParseErrorKind::InvalidNumber => {
                write!(f, "invalid or out-of-range number in {:?}", self.input)
            }
            ParseErrorKind::InvalidSyntax(expected) => {
                write!(f, "expected {expected}, got {:?}", self.input)
            }
            ParseErrorKind::PrefixLengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} exceeds maximum {max} in {:?}", self.input)
            }
            ParseErrorKind::HostBitsSet => {
                write!(f, "host bits set beyond the prefix length in {:?}", self.input)
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Error produced by semantic validation of already-parsed values, e.g.
/// constructing a prefix with an out-of-range length or an AS path segment
/// longer than the wire format allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A prefix length exceeded the maximum for its address family.
    PrefixLength {
        /// Requested length.
        len: u8,
        /// Maximum permitted for the address family.
        max: u8,
    },
    /// An AS path segment exceeded 255 entries (the wire-format limit).
    SegmentTooLong(usize),
    /// An AS path had more segments than the implementation supports.
    TooManySegments(usize),
    /// A reserved or otherwise unusable ASN was used where a routable ASN
    /// was required.
    ReservedAsn(u32),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::PrefixLength { len, max } => {
                write!(f, "prefix length {len} exceeds maximum {max}")
            }
            TypeError::SegmentTooLong(n) => {
                write!(f, "AS path segment has {n} entries, the wire limit is 255")
            }
            TypeError::TooManySegments(n) => {
                write!(f, "AS path has {n} segments, which is unsupported")
            }
            TypeError::ReservedAsn(asn) => {
                write!(f, "ASN {asn} is reserved and cannot be used here")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_mentions_input() {
        let e = ParseError::syntax("a:b community", "garbage");
        let msg = e.to_string();
        assert!(msg.contains("a:b community"));
        assert!(msg.contains("garbage"));
        assert_eq!(e.input(), "garbage");
    }

    #[test]
    fn type_error_display() {
        assert!(TypeError::PrefixLength { len: 33, max: 32 }.to_string().contains("33"));
        assert!(TypeError::SegmentTooLong(300).to_string().contains("300"));
        assert!(TypeError::TooManySegments(9).to_string().contains('9'));
        assert!(TypeError::ReservedAsn(0).to_string().contains('0'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ParseError>();
        assert_err::<TypeError>();
    }
}
