//! Routing Information Base entries as observed at a route collector.
//!
//! A [`RibSnapshot`] is the in-memory equivalent of one MRT TABLE_DUMP_V2
//! file: the routes that every peer of one collector had installed at the
//! snapshot instant. The measurement pipeline in `hybrid-tor` consumes
//! these snapshots regardless of whether they were decoded from MRT files
//! or produced directly by the `routesim` simulator.

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::attrs::PathAttributes;
use crate::prefix::{IpVersion, Prefix};

/// Identifies a route collector (e.g. "route-views2", "rrc00").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CollectorId(pub String);

impl CollectorId {
    /// Construct from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        CollectorId(name.into())
    }

    /// The collector name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CollectorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for CollectorId {
    fn from(s: &str) -> Self {
        CollectorId(s.to_string())
    }
}

/// Identifies one BGP peer (feeder) of a collector: the AS that gave us its
/// view of the routing table, and the address it peers from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId {
    /// The feeder's ASN.
    pub asn: Asn,
    /// The feeder's peering address (determines which plane it feeds).
    pub addr: IpAddr,
}

impl PeerId {
    /// Construct a peer identity.
    pub fn new(asn: Asn, addr: IpAddr) -> Self {
        PeerId { asn, addr }
    }

    /// The plane implied by the peering address family. Real collectors
    /// receive IPv6 routes over IPv6 sessions almost exclusively, and the
    /// simulator follows the same convention.
    pub fn plane(&self) -> IpVersion {
        match self.addr {
            IpAddr::V4(_) => IpVersion::V4,
            IpAddr::V6(_) => IpVersion::V6,
        }
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}@{}", self.asn, self.addr)
    }
}

/// Where a RIB entry came from, for provenance in reports.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum RouteSource {
    /// Decoded from an MRT TABLE_DUMP_V2 file.
    #[default]
    MrtTableDump,
    /// Decoded from MRT BGP4MP update messages.
    MrtUpdates,
    /// Produced directly by the route propagation simulator.
    Simulated,
}

impl fmt::Display for RouteSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteSource::MrtTableDump => write!(f, "mrt-table-dump"),
            RouteSource::MrtUpdates => write!(f, "mrt-updates"),
            RouteSource::Simulated => write!(f, "simulated"),
        }
    }
}

/// One route: a prefix as seen from one collector peer, with its full
/// attribute set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// The peer that exported this route to the collector.
    pub peer: PeerId,
    /// The announced prefix.
    pub prefix: Prefix,
    /// The BGP path attributes.
    pub attrs: PathAttributes,
    /// Provenance.
    pub source: RouteSource,
}

impl RibEntry {
    /// Construct an entry.
    pub fn new(peer: PeerId, prefix: Prefix, attrs: PathAttributes) -> Self {
        RibEntry { peer, prefix, attrs, source: RouteSource::default() }
    }

    /// The plane of the announced prefix (not of the peering session).
    pub fn plane(&self) -> IpVersion {
        self.prefix.version()
    }

    /// The origin AS of the route, if determinable.
    pub fn origin_asn(&self) -> Option<Asn> {
        self.attrs.as_path.origin()
    }

    /// True if the AS path is unusable for topology measurement: empty,
    /// loops, or contains reserved ASNs. (AS_SET paths are usable but the
    /// link extraction skips the set hops.)
    pub fn has_bogus_path(&self) -> bool {
        self.attrs.as_path.is_empty()
            || self.attrs.as_path.has_loop()
            || self.attrs.as_path.has_reserved_asn()
    }
}

impl fmt::Display for RibEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} path [{}]", self.peer, self.prefix, self.attrs.as_path)?;
        if let Some(lp) = self.attrs.local_pref {
            write!(f, " lp {lp}")?;
        }
        if !self.attrs.communities.is_empty() {
            write!(f, " comm [{}]", self.attrs.communities)?;
        }
        Ok(())
    }
}

/// All routes observed at one collector at one snapshot instant.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RibSnapshot {
    /// Which collector this snapshot belongs to.
    pub collector: Option<CollectorId>,
    /// Snapshot timestamp, seconds since the UNIX epoch.
    pub timestamp: u64,
    /// The routes.
    pub entries: Vec<RibEntry>,
}

impl RibSnapshot {
    /// An empty snapshot for the given collector.
    pub fn new(collector: CollectorId, timestamp: u64) -> Self {
        RibSnapshot { collector: Some(collector), timestamp, entries: Vec::new() }
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no routes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add a route.
    pub fn push(&mut self, entry: RibEntry) {
        self.entries.push(entry);
    }

    /// Iterate routes of one plane only.
    pub fn plane_entries(&self, plane: IpVersion) -> impl Iterator<Item = &RibEntry> {
        self.entries.iter().filter(move |e| e.plane() == plane)
    }

    /// The distinct peers that contributed at least one route.
    pub fn peers(&self) -> Vec<PeerId> {
        let mut peers: Vec<PeerId> = self.entries.iter().map(|e| e.peer).collect();
        peers.sort();
        peers.dedup();
        peers
    }

    /// Merge another snapshot's routes into this one (used to pool multiple
    /// collectors, as the paper pools RouteViews and RIS).
    pub fn merge(&mut self, other: RibSnapshot) {
        self.entries.extend(other.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::Community;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn v6_peer(asn: u32) -> PeerId {
        PeerId::new(Asn(asn), IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, asn as u16)))
    }

    fn v4_peer(asn: u32) -> PeerId {
        PeerId::new(Asn(asn), IpAddr::V4(Ipv4Addr::new(192, 0, 2, asn as u8)))
    }

    fn entry(peer: PeerId, prefix: &str, path: &str) -> RibEntry {
        RibEntry::new(
            peer,
            prefix.parse().unwrap(),
            PathAttributes::with_path(path.parse().unwrap()),
        )
    }

    #[test]
    fn collector_and_peer_identity() {
        let c = CollectorId::new("route-views2");
        assert_eq!(c.name(), "route-views2");
        assert_eq!(c.to_string(), "route-views2");
        assert_eq!(CollectorId::from("rrc00"), CollectorId::new("rrc00"));

        let p = v6_peer(6939);
        assert_eq!(p.plane(), IpVersion::V6);
        assert_eq!(v4_peer(3356).plane(), IpVersion::V4);
        assert!(p.to_string().starts_with("AS6939@"));
    }

    #[test]
    fn rib_entry_accessors() {
        let e = entry(v6_peer(6939), "2001:db8::/32", "6939 2914 3333");
        assert_eq!(e.plane(), IpVersion::V6);
        assert_eq!(e.origin_asn(), Some(Asn(3333)));
        assert!(!e.has_bogus_path());
        assert_eq!(e.source, RouteSource::MrtTableDump);
        let shown = e.to_string();
        assert!(shown.contains("2001:db8::/32"));
        assert!(shown.contains("6939 2914 3333"));
    }

    #[test]
    fn bogus_path_detection() {
        let empty =
            RibEntry::new(v4_peer(1), "10.0.0.0/8".parse().unwrap(), PathAttributes::originated());
        assert!(empty.has_bogus_path());
        let looped = entry(v4_peer(1), "10.0.0.0/8", "1 2 1");
        assert!(looped.has_bogus_path());
        let private = entry(v4_peer(1), "10.0.0.0/8", "1 64512 2");
        assert!(private.has_bogus_path());
        let fine = entry(v4_peer(1), "10.0.0.0/8", "1 2 3");
        assert!(!fine.has_bogus_path());
    }

    #[test]
    fn display_includes_local_pref_and_communities() {
        let mut e = entry(v4_peer(3356), "10.0.0.0/8", "3356 112");
        e.attrs.local_pref = Some(300);
        e.attrs.communities.insert(Community::new(3356, 123));
        let s = e.to_string();
        assert!(s.contains("lp 300"));
        assert!(s.contains("3356:123"));
    }

    #[test]
    fn snapshot_filtering_and_merge() {
        let mut snap = RibSnapshot::new(CollectorId::new("sim0"), 1_280_000_000);
        assert!(snap.is_empty());
        snap.push(entry(v6_peer(6939), "2001:db8::/32", "6939 3333"));
        snap.push(entry(v4_peer(6939), "10.0.0.0/8", "6939 3333"));
        snap.push(entry(v6_peer(174), "2001:db8:1::/48", "174 3333"));
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.plane_entries(IpVersion::V6).count(), 2);
        assert_eq!(snap.plane_entries(IpVersion::V4).count(), 1);
        assert_eq!(snap.peers().len(), 3);

        let mut other = RibSnapshot::new(CollectorId::new("sim1"), 1_280_000_000);
        other.push(entry(v4_peer(3356), "10.0.0.0/8", "3356 3333"));
        snap.merge(other);
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.peers().len(), 4);
    }

    #[test]
    fn route_source_display() {
        assert_eq!(RouteSource::MrtTableDump.to_string(), "mrt-table-dump");
        assert_eq!(RouteSource::MrtUpdates.to_string(), "mrt-updates");
        assert_eq!(RouteSource::Simulated.to_string(), "simulated");
        assert_eq!(RouteSource::default(), RouteSource::MrtTableDump);
    }

    #[test]
    fn serde_roundtrip() {
        let e = entry(v6_peer(6939), "2001:db8::/32", "6939 2914 3333");
        let json = serde_json::to_string(&e).unwrap();
        let back: RibEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
