//! AS business relationships: the Type-of-Relationship (ToR) vocabulary.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;
use crate::prefix::IpVersion;

/// The business relationship of a *directed* AS link `a → b`, read as
/// "a is ... of/with b".
///
/// * `ProviderToCustomer` (p2c): `a` sells transit to `b`.
/// * `CustomerToProvider` (c2p): `a` buys transit from `b`.
/// * `PeerToPeer` (p2p): settlement-free peering.
/// * `SiblingToSibling` (s2s): both ASes belong to the same organisation
///   and exchange all routes.
///
/// `reverse()` gives the relationship as seen from `b`'s side; p2p and s2s
/// are symmetric, p2c/c2p are each other's reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// Provider-to-customer (the left AS is the provider).
    ProviderToCustomer,
    /// Customer-to-provider (the left AS is the customer).
    CustomerToProvider,
    /// Settlement-free peering.
    PeerToPeer,
    /// Sibling ASes under common administration.
    SiblingToSibling,
}

impl Relationship {
    /// Short conventional label: `p2c`, `c2p`, `p2p`, `s2s`.
    pub const fn label(self) -> &'static str {
        match self {
            Relationship::ProviderToCustomer => "p2c",
            Relationship::CustomerToProvider => "c2p",
            Relationship::PeerToPeer => "p2p",
            Relationship::SiblingToSibling => "s2s",
        }
    }

    /// The same link seen from the other endpoint.
    pub const fn reverse(self) -> Relationship {
        match self {
            Relationship::ProviderToCustomer => Relationship::CustomerToProvider,
            Relationship::CustomerToProvider => Relationship::ProviderToCustomer,
            Relationship::PeerToPeer => Relationship::PeerToPeer,
            Relationship::SiblingToSibling => Relationship::SiblingToSibling,
        }
    }

    /// True for p2c or c2p.
    pub const fn is_transit(self) -> bool {
        matches!(self, Relationship::ProviderToCustomer | Relationship::CustomerToProvider)
    }

    /// True for p2p.
    pub const fn is_peering(self) -> bool {
        matches!(self, Relationship::PeerToPeer)
    }

    /// True for s2s.
    pub const fn is_sibling(self) -> bool {
        matches!(self, Relationship::SiblingToSibling)
    }

    /// True for symmetric relationships (p2p, s2s), whose reverse equals
    /// themselves.
    pub const fn is_symmetric(self) -> bool {
        matches!(self, Relationship::PeerToPeer | Relationship::SiblingToSibling)
    }

    /// All four relationship kinds, in a fixed order.
    pub const ALL: [Relationship; 4] = [
        Relationship::ProviderToCustomer,
        Relationship::CustomerToProvider,
        Relationship::PeerToPeer,
        Relationship::SiblingToSibling,
    ];

    /// The conventional LocPrf preference rank used by the simulator's
    /// default policy: customer routes are most preferred, then peers and
    /// siblings, then providers (RFC-less but near-universal practice; the
    /// paper calls this ordering out explicitly). Higher is more preferred.
    pub const fn default_preference_rank(self) -> u8 {
        match self {
            // Routes *learned from* a customer (i.e. over our p2c link).
            Relationship::ProviderToCustomer => 3,
            Relationship::SiblingToSibling => 2,
            Relationship::PeerToPeer => 2,
            Relationship::CustomerToProvider => 1,
        }
    }
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Relationship {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "p2c" | "provider-to-customer" | "provider" => Ok(Relationship::ProviderToCustomer),
            "c2p" | "customer-to-provider" | "customer" => Ok(Relationship::CustomerToProvider),
            "p2p" | "peer-to-peer" | "peer" | "peering" => Ok(Relationship::PeerToPeer),
            "s2s" | "sibling-to-sibling" | "sibling" => Ok(Relationship::SiblingToSibling),
            other => Err(ParseError::syntax("p2c|c2p|p2p|s2s", other.to_string())),
        }
    }
}

/// The pair of per-plane relationships of a dual-stack AS link, used to
/// classify hybrid links. Both entries are oriented the same way
/// (`a → b` for the same fixed `a`, `b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationshipPair {
    /// Relationship on the IPv4 plane.
    pub v4: Relationship,
    /// Relationship on the IPv6 plane.
    pub v6: Relationship,
}

impl RelationshipPair {
    /// Construct from both planes.
    pub const fn new(v4: Relationship, v6: Relationship) -> Self {
        RelationshipPair { v4, v6 }
    }

    /// The relationship on the requested plane.
    pub const fn get(&self, version: IpVersion) -> Relationship {
        match version {
            IpVersion::V4 => self.v4,
            IpVersion::V6 => self.v6,
        }
    }

    /// True when the two planes disagree — the paper's *hybrid* condition.
    pub fn is_hybrid(&self) -> bool {
        self.v4 != self.v6
    }

    /// The pair as seen from the other endpoint of the link.
    pub const fn reverse(&self) -> RelationshipPair {
        RelationshipPair { v4: self.v4.reverse(), v6: self.v6.reverse() }
    }
}

impl fmt::Display for RelationshipPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v4:{} v6:{}", self.v4, self.v6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display() {
        assert_eq!(Relationship::ProviderToCustomer.to_string(), "p2c");
        assert_eq!(Relationship::CustomerToProvider.to_string(), "c2p");
        assert_eq!(Relationship::PeerToPeer.to_string(), "p2p");
        assert_eq!(Relationship::SiblingToSibling.to_string(), "s2s");
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!("p2c".parse::<Relationship>().unwrap(), Relationship::ProviderToCustomer);
        assert_eq!("Provider".parse::<Relationship>().unwrap(), Relationship::ProviderToCustomer);
        assert_eq!("customer".parse::<Relationship>().unwrap(), Relationship::CustomerToProvider);
        assert_eq!("PEERING".parse::<Relationship>().unwrap(), Relationship::PeerToPeer);
        assert_eq!("sibling".parse::<Relationship>().unwrap(), Relationship::SiblingToSibling);
        assert!("friend".parse::<Relationship>().is_err());
    }

    #[test]
    fn reverse_is_an_involution() {
        for r in Relationship::ALL {
            assert_eq!(r.reverse().reverse(), r);
        }
        assert_eq!(Relationship::ProviderToCustomer.reverse(), Relationship::CustomerToProvider);
        assert_eq!(Relationship::PeerToPeer.reverse(), Relationship::PeerToPeer);
    }

    #[test]
    fn classification_predicates() {
        assert!(Relationship::ProviderToCustomer.is_transit());
        assert!(Relationship::CustomerToProvider.is_transit());
        assert!(!Relationship::PeerToPeer.is_transit());
        assert!(Relationship::PeerToPeer.is_peering());
        assert!(Relationship::SiblingToSibling.is_sibling());
        assert!(Relationship::PeerToPeer.is_symmetric());
        assert!(Relationship::SiblingToSibling.is_symmetric());
        assert!(!Relationship::ProviderToCustomer.is_symmetric());
    }

    #[test]
    fn symmetric_relationships_reverse_to_themselves() {
        for r in Relationship::ALL {
            assert_eq!(r.is_symmetric(), r.reverse() == r);
        }
    }

    #[test]
    fn preference_ranks_follow_the_usual_ordering() {
        // customer > peer >= sibling > provider
        assert!(
            Relationship::ProviderToCustomer.default_preference_rank()
                > Relationship::PeerToPeer.default_preference_rank()
        );
        assert!(
            Relationship::PeerToPeer.default_preference_rank()
                > Relationship::CustomerToProvider.default_preference_rank()
        );
    }

    #[test]
    fn relationship_pair_hybrid_detection() {
        let same = RelationshipPair::new(Relationship::PeerToPeer, Relationship::PeerToPeer);
        assert!(!same.is_hybrid());
        let hybrid =
            RelationshipPair::new(Relationship::PeerToPeer, Relationship::ProviderToCustomer);
        assert!(hybrid.is_hybrid());
        assert_eq!(hybrid.get(IpVersion::V4), Relationship::PeerToPeer);
        assert_eq!(hybrid.get(IpVersion::V6), Relationship::ProviderToCustomer);
        assert_eq!(
            hybrid.reverse(),
            RelationshipPair::new(Relationship::PeerToPeer, Relationship::CustomerToProvider)
        );
        assert_eq!(hybrid.to_string(), "v4:p2p v6:p2c");
    }

    #[test]
    fn serde_roundtrip() {
        let pair =
            RelationshipPair::new(Relationship::PeerToPeer, Relationship::CustomerToProvider);
        let json = serde_json::to_string(&pair).unwrap();
        let back: RelationshipPair = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pair);
    }
}
