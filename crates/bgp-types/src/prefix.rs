//! IPv4 and IPv6 network prefixes and the [`IpVersion`] plane selector.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::{ParseError, ParseErrorKind, TypeError};

/// The IP plane a route, link or relationship belongs to.
///
/// The whole point of the paper is that the *same* AS link may have
/// different business relationships on the two planes, so nearly every
/// API in the workspace is parameterised by this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IpVersion {
    /// The IPv4 plane.
    V4,
    /// The IPv6 plane.
    V6,
}

impl IpVersion {
    /// Both planes, in a fixed order (V4 first). Handy for iteration.
    pub const BOTH: [IpVersion; 2] = [IpVersion::V4, IpVersion::V6];

    /// The other plane.
    pub const fn other(self) -> IpVersion {
        match self {
            IpVersion::V4 => IpVersion::V6,
            IpVersion::V6 => IpVersion::V4,
        }
    }

    /// The AFI number used in BGP/MRT wire formats (1 = IPv4, 2 = IPv6).
    pub const fn afi(self) -> u16 {
        match self {
            IpVersion::V4 => 1,
            IpVersion::V6 => 2,
        }
    }

    /// Build from an AFI number.
    pub const fn from_afi(afi: u16) -> Option<IpVersion> {
        match afi {
            1 => Some(IpVersion::V4),
            2 => Some(IpVersion::V6),
            _ => None,
        }
    }

    /// Maximum prefix length on this plane (32 or 128).
    pub const fn max_prefix_len(self) -> u8 {
        match self {
            IpVersion::V4 => 32,
            IpVersion::V6 => 128,
        }
    }
}

impl fmt::Display for IpVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpVersion::V4 => write!(f, "IPv4"),
            IpVersion::V6 => write!(f, "IPv6"),
        }
    }
}

/// An IPv4 network prefix in CIDR form, stored canonically (host bits zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Net {
    /// Construct a prefix, validating the length and that no host bits are
    /// set beyond it.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, TypeError> {
        if len > 32 {
            return Err(TypeError::PrefixLength { len, max: 32 });
        }
        let p = Self::new_truncated(addr, len);
        if p.addr != addr {
            // The caller passed host bits; surface it as a length error is
            // misleading, so we keep a dedicated conversion below via parse.
            // For the programmatic constructor we are strict.
            return Err(TypeError::PrefixLength { len, max: 32 });
        }
        Ok(p)
    }

    /// Construct a prefix, silently zeroing any host bits.
    pub fn new_truncated(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        let raw = u32::from(addr);
        let masked = if len == 0 { 0 } else { raw & (u32::MAX << (32 - len)) };
        Ipv4Net { addr: Ipv4Addr::from(masked), len }
    }

    /// Network address.
    pub const fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length in bits.
    // `len` is the mask length, not a container size: no `is_empty` pair.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True only for 0.0.0.0/0.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain (or equal) `other`?
    pub fn contains(&self, other: &Ipv4Net) -> bool {
        if other.len < self.len {
            return false;
        }
        Self::new_truncated(other.addr, self.len).addr == self.addr
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv4Net {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (a, l) =
            s.split_once('/').ok_or_else(|| ParseError::syntax("a.b.c.d/len prefix", s))?;
        let addr: Ipv4Addr = a.parse().map_err(|_| ParseError::syntax("IPv4 address", s))?;
        let len: u8 = l.parse().map_err(|_| ParseError::number(s))?;
        if len > 32 {
            return Err(ParseError::new(
                ParseErrorKind::PrefixLengthOutOfRange { len, max: 32 },
                s,
            ));
        }
        let canonical = Ipv4Net::new_truncated(addr, len);
        if canonical.addr != addr {
            return Err(ParseError::new(ParseErrorKind::HostBitsSet, s));
        }
        Ok(canonical)
    }
}

/// An IPv6 network prefix in CIDR form, stored canonically (host bits zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv6Net {
    addr: Ipv6Addr,
    len: u8,
}

impl Ipv6Net {
    /// Construct a prefix, validating the length and that no host bits are
    /// set beyond it.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Self, TypeError> {
        if len > 128 {
            return Err(TypeError::PrefixLength { len, max: 128 });
        }
        let p = Self::new_truncated(addr, len);
        if p.addr != addr {
            return Err(TypeError::PrefixLength { len, max: 128 });
        }
        Ok(p)
    }

    /// Construct a prefix, silently zeroing any host bits.
    pub fn new_truncated(addr: Ipv6Addr, len: u8) -> Self {
        let len = len.min(128);
        let raw = u128::from(addr);
        let masked = if len == 0 { 0 } else { raw & (u128::MAX << (128 - len)) };
        Ipv6Net { addr: Ipv6Addr::from(masked), len }
    }

    /// Network address.
    pub const fn addr(&self) -> Ipv6Addr {
        self.addr
    }

    /// Prefix length in bits.
    // `len` is the mask length, not a container size: no `is_empty` pair.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True only for ::/0.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain (or equal) `other`?
    pub fn contains(&self, other: &Ipv6Net) -> bool {
        if other.len < self.len {
            return false;
        }
        Self::new_truncated(other.addr, self.len).addr == self.addr
    }
}

impl fmt::Display for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv6Net {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (a, l) = s.split_once('/').ok_or_else(|| ParseError::syntax("ipv6/len prefix", s))?;
        let addr: Ipv6Addr = a.parse().map_err(|_| ParseError::syntax("IPv6 address", s))?;
        let len: u8 = l.parse().map_err(|_| ParseError::number(s))?;
        if len > 128 {
            return Err(ParseError::new(
                ParseErrorKind::PrefixLengthOutOfRange { len, max: 128 },
                s,
            ));
        }
        let canonical = Ipv6Net::new_truncated(addr, len);
        if canonical.addr != addr {
            return Err(ParseError::new(ParseErrorKind::HostBitsSet, s));
        }
        Ok(canonical)
    }
}

/// Either an IPv4 or an IPv6 prefix — the NLRI of a RIB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Prefix {
    /// An IPv4 prefix.
    V4(Ipv4Net),
    /// An IPv6 prefix.
    V6(Ipv6Net),
}

impl Prefix {
    /// The plane this prefix lives on.
    pub const fn version(&self) -> IpVersion {
        match self {
            Prefix::V4(_) => IpVersion::V4,
            Prefix::V6(_) => IpVersion::V6,
        }
    }

    /// Prefix length in bits.
    // `len` is the mask length, not a container size: no `is_empty` pair.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }

    /// True for 0.0.0.0/0 or ::/0.
    pub fn is_default(&self) -> bool {
        self.len() == 0
    }

    /// Containment test; prefixes of different planes never contain each
    /// other.
    pub fn contains(&self, other: &Prefix) -> bool {
        match (self, other) {
            (Prefix::V4(a), Prefix::V4(b)) => a.contains(b),
            (Prefix::V6(a), Prefix::V6(b)) => a.contains(b),
            _ => false,
        }
    }

    /// The inner IPv4 prefix if this is a V4 prefix.
    pub fn as_v4(&self) -> Option<Ipv4Net> {
        match self {
            Prefix::V4(p) => Some(*p),
            Prefix::V6(_) => None,
        }
    }

    /// The inner IPv6 prefix if this is a V6 prefix.
    pub fn as_v6(&self) -> Option<Ipv6Net> {
        match self {
            Prefix::V6(p) => Some(*p),
            Prefix::V4(_) => None,
        }
    }
}

impl From<Ipv4Net> for Prefix {
    fn from(p: Ipv4Net) -> Self {
        Prefix::V4(p)
    }
}

impl From<Ipv6Net> for Prefix {
    fn from(p: Ipv6Net) -> Self {
        Prefix::V6(p)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => write!(f, "{p}"),
            Prefix::V6(p) => write!(f, "{p}"),
        }
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            Ok(Prefix::V6(s.parse()?))
        } else {
            Ok(Prefix::V4(s.parse()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_version_helpers() {
        assert_eq!(IpVersion::V4.other(), IpVersion::V6);
        assert_eq!(IpVersion::V6.other(), IpVersion::V4);
        assert_eq!(IpVersion::V4.afi(), 1);
        assert_eq!(IpVersion::V6.afi(), 2);
        assert_eq!(IpVersion::from_afi(1), Some(IpVersion::V4));
        assert_eq!(IpVersion::from_afi(2), Some(IpVersion::V6));
        assert_eq!(IpVersion::from_afi(25), None);
        assert_eq!(IpVersion::V4.max_prefix_len(), 32);
        assert_eq!(IpVersion::V6.max_prefix_len(), 128);
        assert_eq!(IpVersion::BOTH, [IpVersion::V4, IpVersion::V6]);
        assert_eq!(IpVersion::V4.to_string(), "IPv4");
        assert_eq!(IpVersion::V6.to_string(), "IPv6");
    }

    #[test]
    fn ipv4_parse_and_display() {
        let p: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.addr(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(p.len(), 8);
        assert_eq!(p.to_string(), "10.0.0.0/8");
        let d: Ipv4Net = "0.0.0.0/0".parse().unwrap();
        assert!(d.is_default());
    }

    #[test]
    fn ipv4_parse_rejects_bad_input() {
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.1/8".parse::<Ipv4Net>().is_err()); // host bits
        assert!("300.0.0.0/8".parse::<Ipv4Net>().is_err());
        assert!("abc/8".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn ipv4_truncation_and_strict_constructor() {
        let t = Ipv4Net::new_truncated(Ipv4Addr::new(10, 1, 2, 3), 8);
        assert_eq!(t.addr(), Ipv4Addr::new(10, 0, 0, 0));
        assert!(Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 8).is_err());
        assert!(Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 8).is_ok());
        assert!(Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 40).is_err());
    }

    #[test]
    fn ipv4_containment() {
        let big: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        let small: Ipv4Net = "10.5.0.0/16".parse().unwrap();
        let other: Ipv4Net = "11.0.0.0/8".parse().unwrap();
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
        assert!(!big.contains(&other));
        let default: Ipv4Net = "0.0.0.0/0".parse().unwrap();
        assert!(default.contains(&big));
    }

    #[test]
    fn ipv6_parse_and_display() {
        let p: Ipv6Net = "2001:db8::/32".parse().unwrap();
        assert_eq!(p.len(), 32);
        assert_eq!(p.to_string(), "2001:db8::/32");
        let d: Ipv6Net = "::/0".parse().unwrap();
        assert!(d.is_default());
    }

    #[test]
    fn ipv6_parse_rejects_bad_input() {
        assert!("2001:db8::".parse::<Ipv6Net>().is_err());
        assert!("2001:db8::/129".parse::<Ipv6Net>().is_err());
        assert!("2001:db8::1/32".parse::<Ipv6Net>().is_err()); // host bits
        assert!("zzzz::/32".parse::<Ipv6Net>().is_err());
    }

    #[test]
    fn ipv6_containment_and_truncation() {
        let big: Ipv6Net = "2001:db8::/32".parse().unwrap();
        let small: Ipv6Net = "2001:db8:1234::/48".parse().unwrap();
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        let t = Ipv6Net::new_truncated("2001:db8::1".parse().unwrap(), 32);
        assert_eq!(t, big);
        assert!(Ipv6Net::new("2001:db8::1".parse().unwrap(), 32).is_err());
    }

    #[test]
    fn prefix_enum_dispatch() {
        let v4: Prefix = "192.0.2.0/24".parse().unwrap();
        let v6: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(v4.version(), IpVersion::V4);
        assert_eq!(v6.version(), IpVersion::V6);
        assert_eq!(v4.len(), 24);
        assert_eq!(v6.len(), 32);
        assert!(v4.as_v4().is_some());
        assert!(v4.as_v6().is_none());
        assert!(v6.as_v6().is_some());
        assert!(v6.as_v4().is_none());
        assert!(!v4.contains(&v6));
        assert!(!v6.contains(&v4));
        assert_eq!(v4.to_string(), "192.0.2.0/24");
        assert!(!v4.is_default());
    }

    #[test]
    fn prefix_from_inner_types() {
        let inner: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        let p: Prefix = inner.into();
        assert_eq!(p.version(), IpVersion::V4);
        let inner6: Ipv6Net = "2001:db8::/32".parse().unwrap();
        let p6: Prefix = inner6.into();
        assert_eq!(p6.version(), IpVersion::V6);
    }

    #[test]
    fn prefix_ordering_is_total() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "2001:db8::/32".parse().unwrap();
        // V4 sorts before V6 by enum discriminant; just assert totality.
        assert!(a < b || b < a);
    }

    #[test]
    fn serde_roundtrip() {
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Prefix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
