//! BGP Communities (RFC 1997) and Large Communities (RFC 8092).
//!
//! The Communities attribute is the primary signal the paper mines: an AS
//! tags routes it receives with `observer:value` communities whose meaning
//! ("received from customer", "received at LINX", "prepend twice towards
//! AS x", ...) is documented in the IRR. This module only models the
//! *values*; their interpretation lives in the `irr` crate.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::ParseError;

/// A classic 32-bit BGP community, conventionally written `asn:value`.
///
/// ```
/// use bgp_types::{Asn, Community};
/// let c: Community = "6939:2000".parse().unwrap();
/// assert_eq!(c.asn(), Asn(6939));
/// assert_eq!(c.value(), 2000);
/// assert_eq!(c.to_string(), "6939:2000");
/// assert_eq!(Community::from_u32(c.as_u32()), c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Community {
    asn: u16,
    value: u16,
}

impl Community {
    /// Well-known community NO_EXPORT (RFC 1997).
    pub const NO_EXPORT: Community = Community { asn: 0xFFFF, value: 0xFF01 };
    /// Well-known community NO_ADVERTISE (RFC 1997).
    pub const NO_ADVERTISE: Community = Community { asn: 0xFFFF, value: 0xFF02 };
    /// Well-known community NO_EXPORT_SUBCONFED (RFC 1997).
    pub const NO_EXPORT_SUBCONFED: Community = Community { asn: 0xFFFF, value: 0xFF03 };
    /// Well-known community BLACKHOLE (RFC 7999).
    pub const BLACKHOLE: Community = Community { asn: 0xFFFF, value: 0x029A };

    /// Construct from the high (ASN) and low (value) 16-bit halves.
    pub const fn new(asn: u16, value: u16) -> Self {
        Community { asn, value }
    }

    /// The high 16 bits, conventionally the ASN that defines the meaning.
    pub const fn asn(&self) -> Asn {
        Asn(self.asn as u32)
    }

    /// The raw high 16 bits.
    pub const fn asn_raw(&self) -> u16 {
        self.asn
    }

    /// The low 16 bits, the operator-defined value.
    pub const fn value(&self) -> u16 {
        self.value
    }

    /// The packed 32-bit wire representation (`asn << 16 | value`).
    pub const fn as_u32(&self) -> u32 {
        ((self.asn as u32) << 16) | self.value as u32
    }

    /// Unpack from the 32-bit wire representation.
    pub const fn from_u32(raw: u32) -> Self {
        Community { asn: (raw >> 16) as u16, value: (raw & 0xFFFF) as u16 }
    }

    /// True for the RFC 1997 / RFC 7999 well-known communities
    /// (high half 0xFFFF).
    pub const fn is_well_known(&self) -> bool {
        self.asn == 0xFFFF
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn, self.value)
    }
}

impl FromStr for Community {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (a, v) =
            s.split_once(':').ok_or_else(|| ParseError::syntax("asn:value community", s))?;
        let asn: u16 = a.parse().map_err(|_| ParseError::number(s))?;
        let value: u16 = v.parse().map_err(|_| ParseError::number(s))?;
        Ok(Community { asn, value })
    }
}

/// A 96-bit Large Community (RFC 8092), written `global:local1:local2`.
///
/// Large communities are carried through the simulator and the MRT codec
/// for completeness but the paper's 2010-era dataset predates them, so the
/// inference pipeline treats them as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LargeCommunity {
    /// Global administrator, conventionally a 4-byte ASN.
    pub global: u32,
    /// First operator-defined word.
    pub local1: u32,
    /// Second operator-defined word.
    pub local2: u32,
}

impl LargeCommunity {
    /// Construct from the three 32-bit words.
    pub const fn new(global: u32, local1: u32, local2: u32) -> Self {
        LargeCommunity { global, local1, local2 }
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global, self.local1, self.local2)
    }
}

impl FromStr for LargeCommunity {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let mut it = s.split(':');
        let (a, b, c) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(a), Some(b), Some(c), None) => (a, b, c),
            _ => return Err(ParseError::syntax("g:l1:l2 large community", s)),
        };
        let global: u32 = a.parse().map_err(|_| ParseError::number(s))?;
        let local1: u32 = b.parse().map_err(|_| ParseError::number(s))?;
        let local2: u32 = c.parse().map_err(|_| ParseError::number(s))?;
        Ok(LargeCommunity { global, local1, local2 })
    }
}

/// An ordered, deduplicated set of classic communities attached to a route.
///
/// BGP treats the Communities attribute as an unordered set; we store it in
/// a `BTreeSet` so equality and iteration are canonical, which matters when
/// comparing routes and when hashing RIB entries in tests.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CommunitySet(BTreeSet<Community>);

impl CommunitySet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a community; returns true if newly added.
    pub fn insert(&mut self, c: Community) -> bool {
        self.0.insert(c)
    }

    /// Remove a community; returns true if it was present.
    pub fn remove(&mut self, c: Community) -> bool {
        self.0.remove(&c)
    }

    /// Membership test.
    pub fn contains(&self, c: Community) -> bool {
        self.0.contains(&c)
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in canonical (numeric) order.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.0.iter().copied()
    }

    /// Communities whose high half equals `asn` (i.e. defined by that AS).
    pub fn defined_by(&self, asn: Asn) -> impl Iterator<Item = Community> + '_ {
        self.0.iter().copied().filter(move |c| c.asn() == asn)
    }

    /// Union in place.
    pub fn extend_from(&mut self, other: &CommunitySet) {
        self.0.extend(other.0.iter().copied());
    }
}

impl FromIterator<Community> for CommunitySet {
    fn from_iter<T: IntoIterator<Item = Community>>(iter: T) -> Self {
        CommunitySet(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a CommunitySet {
    type Item = Community;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Community>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

impl fmt::Display for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_parse_display_roundtrip() {
        let c: Community = "3356:2010".parse().unwrap();
        assert_eq!(c, Community::new(3356, 2010));
        assert_eq!(c.to_string(), "3356:2010");
        assert_eq!(c.asn(), Asn(3356));
        assert_eq!(c.asn_raw(), 3356);
        assert_eq!(c.value(), 2010);
    }

    #[test]
    fn community_u32_packing() {
        let c = Community::new(0x1234, 0x5678);
        assert_eq!(c.as_u32(), 0x1234_5678);
        assert_eq!(Community::from_u32(0x1234_5678), c);
        // Exhaustive-ish corner check.
        for raw in [0u32, 1, 0xFFFF, 0x1_0000, u32::MAX] {
            assert_eq!(Community::from_u32(raw).as_u32(), raw);
        }
    }

    #[test]
    fn community_parse_rejects_garbage() {
        assert!("".parse::<Community>().is_err());
        assert!("3356".parse::<Community>().is_err());
        assert!("3356:".parse::<Community>().is_err());
        assert!(":1".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
        assert!("1:70000".parse::<Community>().is_err());
        assert!("a:b".parse::<Community>().is_err());
    }

    #[test]
    fn well_known_communities() {
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(Community::NO_ADVERTISE.is_well_known());
        assert!(Community::NO_EXPORT_SUBCONFED.is_well_known());
        assert!(Community::BLACKHOLE.is_well_known());
        assert!(!Community::new(3356, 100).is_well_known());
        assert_eq!(Community::NO_EXPORT.as_u32(), 0xFFFF_FF01);
        assert_eq!(Community::BLACKHOLE.as_u32(), 0xFFFF_029A);
    }

    #[test]
    fn large_community_parse_display() {
        let c: LargeCommunity = "206924:1:65000".parse().unwrap();
        assert_eq!(c, LargeCommunity::new(206924, 1, 65000));
        assert_eq!(c.to_string(), "206924:1:65000");
        assert!("1:2".parse::<LargeCommunity>().is_err());
        assert!("1:2:3:4".parse::<LargeCommunity>().is_err());
        assert!("x:2:3".parse::<LargeCommunity>().is_err());
    }

    #[test]
    fn community_set_operations() {
        let mut s = CommunitySet::new();
        assert!(s.is_empty());
        assert!(s.insert(Community::new(3356, 2)));
        assert!(!s.insert(Community::new(3356, 2)));
        assert!(s.insert(Community::new(3356, 1)));
        assert!(s.insert(Community::new(174, 10)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(Community::new(174, 10)));
        let by_3356: Vec<_> = s.defined_by(Asn(3356)).collect();
        assert_eq!(by_3356, vec![Community::new(3356, 1), Community::new(3356, 2)]);
        assert!(s.remove(Community::new(174, 10)));
        assert!(!s.remove(Community::new(174, 10)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn community_set_display_is_sorted() {
        let s: CommunitySet = [Community::new(20, 1), Community::new(10, 5)].into_iter().collect();
        assert_eq!(s.to_string(), "10:5 20:1");
    }

    #[test]
    fn community_set_extend_and_iterate() {
        let mut a: CommunitySet = [Community::new(1, 1)].into_iter().collect();
        let b: CommunitySet = [Community::new(2, 2), Community::new(1, 1)].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        let collected: Vec<_> = (&a).into_iter().collect();
        assert_eq!(collected, vec![Community::new(1, 1), Community::new(2, 2)]);
    }

    #[test]
    fn community_ordering_by_asn_then_value() {
        assert!(Community::new(1, 9) < Community::new(2, 0));
        assert!(Community::new(1, 1) < Community::new(1, 2));
    }

    #[test]
    fn serde_roundtrip() {
        let s: CommunitySet =
            [Community::new(3356, 2010), Community::new(6939, 1)].into_iter().collect();
        let json = serde_json::to_string(&s).unwrap();
        let back: CommunitySet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
