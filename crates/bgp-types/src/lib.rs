//! # bgp-types
//!
//! Primitive vocabulary shared by every other crate in the workspace:
//! autonomous-system numbers, IPv4/IPv6 prefixes, BGP communities, AS
//! paths, BGP path attributes, business relationships and RIB entries.
//!
//! The types are deliberately small, `Copy` where possible, and carry no
//! behaviour beyond parsing, formatting and validation, so that the
//! measurement pipeline (`hybrid-tor`), the simulator (`routesim`) and the
//! MRT codec (`mrt`) all speak exactly the same language.
//!
//! ## Quick example
//!
//! ```
//! use bgp_types::{Asn, Community, AsPath, Relationship, IpVersion};
//!
//! let path: AsPath = "3356 1299 6939 112".parse().unwrap();
//! assert_eq!(path.origin(), Some(Asn(112)));
//! assert_eq!(path.len(), 4);
//!
//! let c: Community = "3356:2010".parse().unwrap();
//! assert_eq!(c.asn(), Asn(3356));
//! assert_eq!(c.value(), 2010);
//!
//! assert_eq!(Relationship::ProviderToCustomer.reverse(),
//!            Relationship::CustomerToProvider);
//! assert_eq!(IpVersion::V6.to_string(), "IPv6");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod asn;
pub mod aspath;
pub mod attrs;
pub mod community;
pub mod error;
pub mod prefix;
pub mod relationship;
pub mod rib;

pub use asn::{Asn, AsnSet};
pub use aspath::{AsPath, AsPathSegment};
pub use attrs::{Origin, PathAttributes};
pub use community::{Community, CommunitySet, LargeCommunity};
pub use error::{ParseError, TypeError};
pub use prefix::{IpVersion, Ipv4Net, Ipv6Net, Prefix};
pub use relationship::{Relationship, RelationshipPair};
pub use rib::{CollectorId, PeerId, RibEntry, RibSnapshot, RouteSource};
