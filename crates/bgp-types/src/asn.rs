//! Autonomous System Numbers.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// A 4-byte Autonomous System Number (RFC 6793).
///
/// The newtype is `Copy`, ordered, hashable and serializes as a bare
/// integer, so it can be used directly as a map key and in compact
/// on-disk representations.
///
/// ```
/// use bgp_types::Asn;
/// let a: Asn = "64512".parse().unwrap();
/// assert_eq!(a, Asn(64512));
/// assert!(a.is_private());
/// assert_eq!(Asn(3356).to_string(), "3356");
/// // "asdot" notation for 4-byte ASNs is accepted on input.
/// assert_eq!("1.10".parse::<Asn>().unwrap(), Asn(65546));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved ASN 0 (RFC 7607) — must never appear in an AS path.
    pub const RESERVED_ZERO: Asn = Asn(0);
    /// AS_TRANS (RFC 6793), used by 2-byte-only speakers for 4-byte ASNs.
    pub const AS_TRANS: Asn = Asn(23456);

    /// Construct from a raw u32.
    #[inline]
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// The raw numeric value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// True for the 16-bit private range 64512-65534 and the 32-bit
    /// private range 4200000000-4294967294 (RFC 6996).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// True for ASNs reserved for documentation (RFC 5398):
    /// 64496-64511 and 65536-65551.
    pub const fn is_documentation(self) -> bool {
        (self.0 >= 64496 && self.0 <= 64511) || (self.0 >= 65536 && self.0 <= 65551)
    }

    /// True if the ASN is reserved and should never be originated or
    /// appear in a public AS path: 0, AS_TRANS, 65535, 4294967295,
    /// the private ranges and the documentation ranges.
    pub const fn is_reserved(self) -> bool {
        self.0 == 0
            || self.0 == 23456
            || self.0 == 65535
            || self.0 == u32::MAX
            || self.is_private()
            || self.is_documentation()
    }

    /// True if the ASN is a plain, publicly routable ASN.
    pub const fn is_public(self) -> bool {
        !self.is_reserved()
    }

    /// True if the ASN fits in 16 bits (a "2-byte ASN").
    pub const fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// Render in "asdot" notation (RFC 5396): 4-byte ASNs are shown as
    /// `high.low`, 2-byte ASNs as plain integers.
    pub fn to_asdot(self) -> String {
        if self.is_16bit() {
            self.0.to_string()
        } else {
            format!("{}.{}", self.0 >> 16, self.0 & 0xFFFF)
        }
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<u16> for Asn {
    fn from(v: u16) -> Self {
        Asn(v as u32)
    }
}

impl From<Asn> for u32 {
    fn from(a: Asn) -> Self {
        a.0
    }
}

impl FromStr for Asn {
    type Err = ParseError;

    /// Accepts "asplain" (`3356`), "asdot" (`1.10`) and an optional
    /// `AS`/`as` prefix (`AS3356`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseError::empty(s));
        }
        let s = s.strip_prefix("AS").or_else(|| s.strip_prefix("as")).unwrap_or(s);
        if let Some((high, low)) = s.split_once('.') {
            let high: u32 = high.parse().map_err(|_| ParseError::number(s))?;
            let low: u32 = low.parse().map_err(|_| ParseError::number(s))?;
            if high > u16::MAX as u32 || low > u16::MAX as u32 {
                return Err(ParseError::number(s));
            }
            Ok(Asn((high << 16) | low))
        } else {
            let v: u32 = s.parse().map_err(|_| ParseError::number(s))?;
            Ok(Asn(v))
        }
    }
}

/// An ordered, deduplicated set of ASNs.
///
/// Used for AS_SET path segments, collector feeder lists and customer
/// cones. Backed by a `BTreeSet` so iteration order is deterministic,
/// which keeps every simulator run and report reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AsnSet(BTreeSet<Asn>);

impl AsnSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an ASN; returns true if it was not already present.
    pub fn insert(&mut self, asn: Asn) -> bool {
        self.0.insert(asn)
    }

    /// Remove an ASN; returns true if it was present.
    pub fn remove(&mut self, asn: Asn) -> bool {
        self.0.remove(&asn)
    }

    /// Membership test.
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate members in ascending numeric order.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.0.iter().copied()
    }

    /// Union with another set, in place.
    pub fn extend_from(&mut self, other: &AsnSet) {
        self.0.extend(other.0.iter().copied());
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<Asn> {
        self.0.iter().next().copied()
    }
}

impl FromIterator<Asn> for AsnSet {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsnSet(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a AsnSet {
    type Item = Asn;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Asn>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

impl fmt::Display for AsnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, asn) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{asn}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_asplain() {
        assert_eq!("3356".parse::<Asn>().unwrap(), Asn(3356));
        assert_eq!("AS6939".parse::<Asn>().unwrap(), Asn(6939));
        assert_eq!("as174".parse::<Asn>().unwrap(), Asn(174));
        assert_eq!(" 42 ".parse::<Asn>().unwrap(), Asn(42));
    }

    #[test]
    fn parse_asdot() {
        assert_eq!("1.10".parse::<Asn>().unwrap(), Asn(65546));
        assert_eq!("0.3356".parse::<Asn>().unwrap(), Asn(3356));
        assert_eq!("65535.65535".parse::<Asn>().unwrap(), Asn(u32::MAX));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("  ".parse::<Asn>().is_err());
        assert!("foo".parse::<Asn>().is_err());
        assert!("1.2.3".parse::<Asn>().is_err());
        assert!("70000.1".parse::<Asn>().is_err());
        assert!("1.70000".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
    }

    #[test]
    fn asdot_roundtrip() {
        assert_eq!(Asn(3356).to_asdot(), "3356");
        assert_eq!(Asn(65546).to_asdot(), "1.10");
        let parsed: Asn = Asn(65546).to_asdot().parse().unwrap();
        assert_eq!(parsed, Asn(65546));
    }

    #[test]
    fn private_and_reserved_classification() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(65535).is_reserved());
        assert!(Asn(4_200_000_000).is_private());
        assert!(Asn::RESERVED_ZERO.is_reserved());
        assert!(Asn::AS_TRANS.is_reserved());
        assert!(Asn(64496).is_documentation());
        assert!(Asn(65536).is_documentation());
        assert!(Asn(3356).is_public());
        assert!(!Asn(3356).is_reserved());
    }

    #[test]
    fn is_16bit() {
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
    }

    #[test]
    fn ordering_and_hash_follow_value() {
        assert!(Asn(1) < Asn(2));
        let mut set = std::collections::HashSet::new();
        set.insert(Asn(7));
        assert!(set.contains(&Asn(7)));
    }

    #[test]
    fn asn_set_basic_operations() {
        let mut s = AsnSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Asn(10)));
        assert!(!s.insert(Asn(10)));
        assert!(s.insert(Asn(2)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Asn(10)));
        assert_eq!(s.min(), Some(Asn(2)));
        let order: Vec<Asn> = s.iter().collect();
        assert_eq!(order, vec![Asn(2), Asn(10)]);
        assert!(s.remove(Asn(2)));
        assert!(!s.remove(Asn(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn asn_set_display_and_collect() {
        let s: AsnSet = [Asn(3), Asn(1), Asn(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{1,2,3}");
        let mut other = AsnSet::new();
        other.insert(Asn(9));
        let mut s = s;
        s.extend_from(&other);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn serde_transparent_roundtrip() {
        let a = Asn(3356);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "3356");
        let back: Asn = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);

        let s: AsnSet = [Asn(1), Asn(5)].into_iter().collect();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "[1,5]");
        let back: AsnSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
