//! BGP path attributes carried by a route.

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::aspath::AsPath;
use crate::community::{CommunitySet, LargeCommunity};

/// The ORIGIN attribute (RFC 4271): how the route entered BGP.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Origin {
    /// Learned from an IGP (value 0).
    #[default]
    Igp,
    /// Learned from EGP (value 1, historical).
    Egp,
    /// Origin unknown / redistributed (value 2).
    Incomplete,
}

impl Origin {
    /// The wire-format code (0, 1, 2).
    pub const fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Build from the wire-format code.
    pub const fn from_code(code: u8) -> Option<Origin> {
        match code {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "IGP"),
            Origin::Egp => write!(f, "EGP"),
            Origin::Incomplete => write!(f, "INCOMPLETE"),
        }
    }
}

/// The set of BGP path attributes a RIB entry carries.
///
/// Only the attributes the paper's methodology needs are modelled as
/// structured fields (AS_PATH, LOCAL_PREF, COMMUNITIES, MED, ORIGIN,
/// NEXT_HOP); everything else a real table dump may contain is preserved
/// as opaque `(type_code, bytes)` pairs by the `mrt` crate.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathAttributes {
    /// ORIGIN.
    pub origin: Origin,
    /// AS_PATH.
    pub as_path: AsPath,
    /// NEXT_HOP (v4) or the MP_REACH next hop (v6). Optional because
    /// synthetic RIBs may omit it.
    pub next_hop: Option<IpAddr>,
    /// MULTI_EXIT_DISC, if present.
    pub med: Option<u32>,
    /// LOCAL_PREF, if present. Collector peers that feed their full table
    /// over iBGP expose it; eBGP feeders usually do not.
    pub local_pref: Option<u32>,
    /// Classic 32-bit communities.
    pub communities: CommunitySet,
    /// RFC 8092 large communities (carried but not interpreted).
    pub large_communities: Vec<LargeCommunity>,
    /// True when the route carried ATOMIC_AGGREGATE.
    pub atomic_aggregate: bool,
}

impl PathAttributes {
    /// Attributes for a freshly originated route: empty path, IGP origin,
    /// no communities.
    pub fn originated() -> Self {
        PathAttributes::default()
    }

    /// Convenience constructor used heavily by tests and the simulator.
    pub fn with_path(as_path: AsPath) -> Self {
        PathAttributes { as_path, ..Default::default() }
    }

    /// Builder-style: set LOCAL_PREF.
    pub fn local_pref(mut self, lp: u32) -> Self {
        self.local_pref = Some(lp);
        self
    }

    /// Builder-style: add a community.
    pub fn community(mut self, c: crate::community::Community) -> Self {
        self.communities.insert(c);
        self
    }

    /// Builder-style: set MED.
    pub fn med(mut self, med: u32) -> Self {
        self.med = Some(med);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::Community;
    use crate::Asn;

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
        assert_eq!(Origin::Igp.to_string(), "IGP");
        assert_eq!(Origin::Incomplete.to_string(), "INCOMPLETE");
        assert_eq!(Origin::default(), Origin::Igp);
    }

    #[test]
    fn builder_style_attributes() {
        let attrs = PathAttributes::with_path("3356 112".parse().unwrap())
            .local_pref(200)
            .med(10)
            .community(Community::new(3356, 2010))
            .community(Community::new(3356, 666));
        assert_eq!(attrs.local_pref, Some(200));
        assert_eq!(attrs.med, Some(10));
        assert_eq!(attrs.communities.len(), 2);
        assert_eq!(attrs.as_path.origin(), Some(Asn(112)));
        assert!(!attrs.atomic_aggregate);
        assert!(attrs.next_hop.is_none());
    }

    #[test]
    fn originated_is_empty() {
        let attrs = PathAttributes::originated();
        assert!(attrs.as_path.is_empty());
        assert!(attrs.communities.is_empty());
        assert_eq!(attrs.local_pref, None);
        assert_eq!(attrs, PathAttributes::default());
    }

    #[test]
    fn serde_roundtrip() {
        let attrs = PathAttributes::with_path("1 2 3".parse().unwrap())
            .local_pref(120)
            .community(Community::new(1, 2));
        let json = serde_json::to_string(&attrs).unwrap();
        let back: PathAttributes = serde_json::from_str(&json).unwrap();
        assert_eq!(back, attrs);
    }
}
