//! AS paths: ordered sequences of ASNs with optional AS_SET segments.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::{ParseError, TypeError};

/// One segment of an AS path, as defined by the BGP wire format.
///
/// Almost every path is a single `Sequence`; `Set` segments appear when
/// routes are aggregated and are treated by the measurement pipeline as
/// "unknown hop" markers (links adjacent to a set are not extracted).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsPathSegment {
    /// An ordered sequence of ASNs (AS_SEQUENCE).
    Sequence(Vec<Asn>),
    /// An unordered set of ASNs produced by aggregation (AS_SET).
    Set(Vec<Asn>),
}

impl AsPathSegment {
    /// Number of ASNs in the segment.
    pub fn len(&self) -> usize {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v.len(),
        }
    }

    /// True when the segment holds no ASNs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ASNs in the segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }

    /// True for an AS_SET segment.
    pub fn is_set(&self) -> bool {
        matches!(self, AsPathSegment::Set(_))
    }
}

/// An AS path: the AS_PATH attribute of a BGP route.
///
/// The first ASN is the neighbor of the observation point (the collector's
/// peer) and the last ASN is the origin of the prefix.
///
/// ```
/// use bgp_types::{AsPath, Asn};
/// let p: AsPath = "6939 2914 3333".parse().unwrap();
/// assert_eq!(p.origin(), Some(Asn(3333)));
/// assert_eq!(p.first(), Some(Asn(6939)));
/// assert_eq!(p.links().collect::<Vec<_>>(),
///            vec![(Asn(6939), Asn(2914)), (Asn(2914), Asn(3333))]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// Maximum ASNs per wire segment.
    pub const MAX_SEGMENT_LEN: usize = 255;
    /// A generous cap on segments per path; real paths have 1 or 2.
    pub const MAX_SEGMENTS: usize = 64;

    /// An empty path (only valid for iBGP-originated routes).
    pub fn empty() -> Self {
        AsPath { segments: Vec::new() }
    }

    /// Build a pure-sequence path from a list of ASNs.
    pub fn from_sequence(asns: impl Into<Vec<Asn>>) -> Self {
        let asns = asns.into();
        if asns.is_empty() {
            return Self::empty();
        }
        AsPath { segments: vec![AsPathSegment::Sequence(asns)] }
    }

    /// Build a path from explicit segments, validating wire-format limits.
    pub fn from_segments(segments: Vec<AsPathSegment>) -> Result<Self, TypeError> {
        if segments.len() > Self::MAX_SEGMENTS {
            return Err(TypeError::TooManySegments(segments.len()));
        }
        for seg in &segments {
            if seg.len() > Self::MAX_SEGMENT_LEN {
                return Err(TypeError::SegmentTooLong(seg.len()));
            }
        }
        Ok(AsPath { segments })
    }

    /// The raw segments.
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.segments
    }

    /// Total number of ASN slots across all segments (the "hop count" used
    /// for path-length comparison treats an AS_SET as one hop, see
    /// [`AsPath::routing_length`]).
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True when the path has no ASNs at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// BGP path-selection length: each AS_SEQUENCE ASN counts 1, each
    /// AS_SET counts 1 regardless of size (RFC 4271 §9.1.2.2).
    pub fn routing_length(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                AsPathSegment::Sequence(v) => v.len(),
                AsPathSegment::Set(_) => 1,
            })
            .sum()
    }

    /// The origin AS (last ASN of the last segment), if the path is not
    /// empty and does not end in an AS_SET.
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last()? {
            AsPathSegment::Sequence(v) => v.last().copied(),
            AsPathSegment::Set(_) => None,
        }
    }

    /// The first AS (the collector peer's ASN for collector-observed paths).
    pub fn first(&self) -> Option<Asn> {
        match self.segments.first()? {
            AsPathSegment::Sequence(v) => v.first().copied(),
            AsPathSegment::Set(v) => v.first().copied(),
        }
    }

    /// All ASNs in order of appearance (sets flattened in stored order).
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// True if the path contains the given ASN anywhere.
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().any(|a| a == asn)
    }

    /// Remove consecutive duplicate ASNs caused by path prepending,
    /// returning a new path. Only applies within sequence segments.
    pub fn deprepended(&self) -> AsPath {
        let segments = self
            .segments
            .iter()
            .map(|seg| match seg {
                AsPathSegment::Sequence(v) => {
                    let mut out: Vec<Asn> = Vec::with_capacity(v.len());
                    for &a in v {
                        if out.last() != Some(&a) {
                            out.push(a);
                        }
                    }
                    AsPathSegment::Sequence(out)
                }
                AsPathSegment::Set(v) => AsPathSegment::Set(v.clone()),
            })
            .collect();
        AsPath { segments }
    }

    /// True if any ASN appears twice in *non-adjacent* positions after
    /// de-prepending — a routing loop artifact that the measurement
    /// pipeline discards.
    pub fn has_loop(&self) -> bool {
        let flat: Vec<Asn> = self.deprepended().asns().collect();
        let mut seen = std::collections::HashSet::with_capacity(flat.len());
        for a in flat {
            if !seen.insert(a) {
                return true;
            }
        }
        false
    }

    /// True if the path contains any reserved/private/documentation ASN.
    pub fn has_reserved_asn(&self) -> bool {
        self.asns().any(|a| a.is_reserved())
    }

    /// True if any segment is an AS_SET.
    pub fn has_set(&self) -> bool {
        self.segments.iter().any(|s| s.is_set())
    }

    /// Adjacent pairs of ASNs from the de-prepended pure-sequence portion
    /// of the path. Pairs adjacent to an AS_SET are *not* produced, because
    /// the true adjacency is unknown after aggregation. Pairs are oriented
    /// observation-side first: `(closer to collector, closer to origin)`.
    pub fn links(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        let dep = self.deprepended();
        let mut pairs = Vec::new();
        for seg in dep.segments {
            if let AsPathSegment::Sequence(v) = seg {
                for w in v.windows(2) {
                    pairs.push((w[0], w[1]));
                }
            }
        }
        pairs.into_iter()
    }

    /// Prepend an ASN at the front (what an AS does when exporting a route
    /// to a neighbor). Creates a sequence segment if needed.
    pub fn prepend(&mut self, asn: Asn) {
        match self.segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) if v.len() < Self::MAX_SEGMENT_LEN => {
                v.insert(0, asn);
            }
            _ => {
                self.segments.insert(0, AsPathSegment::Sequence(vec![asn]));
            }
        }
    }

    /// A copy of this path with `asn` prepended.
    pub fn prepended(&self, asn: Asn) -> AsPath {
        let mut p = self.clone();
        p.prepend(asn);
        p
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsPathSegment::Sequence(v) => {
                    for (i, a) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                AsPathSegment::Set(v) => {
                    write!(f, "{{")?;
                    for (i, a) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = ParseError;

    /// Parses the textual form used by `show ip bgp` / route collectors:
    /// whitespace-separated ASNs, with AS_SETs in `{a,b,c}` braces.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(AsPath::empty());
        }
        let mut segments: Vec<AsPathSegment> = Vec::new();
        let mut current_seq: Vec<Asn> = Vec::new();
        for token in s.split_whitespace() {
            if token.starts_with('{') {
                if !current_seq.is_empty() {
                    segments.push(AsPathSegment::Sequence(std::mem::take(&mut current_seq)));
                }
                let inner = token
                    .strip_prefix('{')
                    .and_then(|t| t.strip_suffix('}'))
                    .ok_or_else(|| ParseError::syntax("{a,b} AS_SET", token.to_string()))?;
                let mut set = Vec::new();
                for part in inner.split(',').filter(|p| !p.is_empty()) {
                    set.push(part.parse::<Asn>()?);
                }
                if set.is_empty() {
                    return Err(ParseError::syntax("non-empty AS_SET", token.to_string()));
                }
                segments.push(AsPathSegment::Set(set));
            } else {
                current_seq.push(token.parse::<Asn>()?);
            }
        }
        if !current_seq.is_empty() {
            segments.push(AsPathSegment::Sequence(current_seq));
        }
        Ok(AsPath { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(asns: &[u32]) -> AsPath {
        AsPath::from_sequence(asns.iter().map(|&a| Asn(a)).collect::<Vec<_>>())
    }

    #[test]
    fn parse_and_display_sequence() {
        let p: AsPath = "3356 1299 6939 112".parse().unwrap();
        assert_eq!(p, seq(&[3356, 1299, 6939, 112]));
        assert_eq!(p.to_string(), "3356 1299 6939 112");
        assert_eq!(p.len(), 4);
        assert_eq!(p.routing_length(), 4);
        assert_eq!(p.origin(), Some(Asn(112)));
        assert_eq!(p.first(), Some(Asn(3356)));
    }

    #[test]
    fn parse_and_display_with_set() {
        let p: AsPath = "3356 1299 {4,5,6}".parse().unwrap();
        assert_eq!(p.segments().len(), 2);
        assert!(p.has_set());
        assert_eq!(p.to_string(), "3356 1299 {4,5,6}");
        assert_eq!(p.origin(), None, "a path ending in an AS_SET has no single origin");
        assert_eq!(p.routing_length(), 3);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn parse_empty_and_garbage() {
        assert!("".parse::<AsPath>().unwrap().is_empty());
        assert!("   ".parse::<AsPath>().unwrap().is_empty());
        assert!("1 2 x".parse::<AsPath>().is_err());
        assert!("{}".parse::<AsPath>().is_err());
        assert!("{1,2".parse::<AsPath>().is_err());
    }

    #[test]
    fn links_skip_sets_and_prepending() {
        let p: AsPath = "10 10 20 {30,40} 50 60".parse().unwrap();
        let links: Vec<_> = p.links().collect();
        assert_eq!(links, vec![(Asn(10), Asn(20)), (Asn(50), Asn(60))]);
    }

    #[test]
    fn deprepended_collapses_adjacent_duplicates() {
        let p: AsPath = "10 10 10 20 20 30".parse().unwrap();
        assert_eq!(p.deprepended(), seq(&[10, 20, 30]));
        // Non-adjacent duplicates are preserved (that's a loop, not prepending).
        let p2: AsPath = "10 20 10".parse().unwrap();
        assert_eq!(p2.deprepended(), seq(&[10, 20, 10]));
    }

    #[test]
    fn loop_detection() {
        assert!(!seq(&[1, 2, 3]).has_loop());
        assert!(!"1 1 2 3 3".parse::<AsPath>().unwrap().has_loop());
        assert!("1 2 1".parse::<AsPath>().unwrap().has_loop());
        assert!("1 2 3 2 4".parse::<AsPath>().unwrap().has_loop());
    }

    #[test]
    fn reserved_asn_detection() {
        assert!(!seq(&[3356, 1299]).has_reserved_asn());
        assert!(seq(&[3356, 64512]).has_reserved_asn());
        assert!(seq(&[3356, 0]).has_reserved_asn());
        assert!(seq(&[3356, 23456]).has_reserved_asn());
    }

    #[test]
    fn prepend_builds_path_front_to_back() {
        let mut p = AsPath::empty();
        p.prepend(Asn(112)); // origin announces
        p.prepend(Asn(6939)); // provider exports
        p.prepend(Asn(3356));
        assert_eq!(p, seq(&[3356, 6939, 112]));
        let q = p.prepended(Asn(174));
        assert_eq!(q.first(), Some(Asn(174)));
        assert_eq!(p.len(), 3, "prepended() must not mutate the original");
    }

    #[test]
    fn prepend_respects_segment_limit() {
        let mut p = AsPath::from_sequence(vec![Asn(1); AsPath::MAX_SEGMENT_LEN]);
        p.prepend(Asn(2));
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.len(), AsPath::MAX_SEGMENT_LEN + 1);
    }

    #[test]
    fn from_segments_validates_limits() {
        let too_long = vec![AsPathSegment::Sequence(vec![Asn(1); 256])];
        assert!(matches!(AsPath::from_segments(too_long), Err(TypeError::SegmentTooLong(256))));
        let too_many = vec![AsPathSegment::Sequence(vec![Asn(1)]); 65];
        assert!(matches!(AsPath::from_segments(too_many), Err(TypeError::TooManySegments(65))));
        let fine =
            vec![AsPathSegment::Sequence(vec![Asn(1), Asn(2)]), AsPathSegment::Set(vec![Asn(3)])];
        assert!(AsPath::from_segments(fine).is_ok());
    }

    #[test]
    fn contains_and_asns_iteration() {
        let p: AsPath = "1 2 {3,4} 5".parse().unwrap();
        assert!(p.contains(Asn(3)));
        assert!(p.contains(Asn(5)));
        assert!(!p.contains(Asn(9)));
        assert_eq!(p.asns().count(), 5);
    }

    #[test]
    fn empty_path_accessors() {
        let p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.origin(), None);
        assert_eq!(p.first(), None);
        assert_eq!(p.links().count(), 0);
        assert_eq!(p.to_string(), "");
        assert_eq!(AsPath::from_sequence(Vec::<Asn>::new()), p);
    }

    #[test]
    fn serde_roundtrip() {
        let p: AsPath = "3356 1299 {4,5}".parse().unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: AsPath = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
