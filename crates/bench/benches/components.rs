//! Component-level performance benchmarks (P1 in DESIGN.md): the MRT
//! codec, the topology generator, the route propagation, and the
//! valley-free graph traversals. These are throughput benchmarks for the
//! substrates rather than reproductions of paper artifacts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use asgraph::customer_tree::tree_union_metrics;
use asgraph::valley::valley_free_distances;
use bgp_types::{Asn, IpVersion};
use hybrid_tor::impact::{correction_sweep_with, ImpactOptions, SweepOptions};
use hybrid_tor::pipeline::{Pipeline, PipelineInput};
use routesim::propagate::{propagate_origin, propagate_origins, PropagationOptions};
use routesim::Scenario;

fn components(c: &mut Criterion) {
    let scale = bench::bench_scale();
    let scenario = bench::build_scenario(&scale);
    let snapshot = scenario.merged_snapshot();

    // MRT encode/decode throughput over the whole collector view.
    let mut encoded = Vec::new();
    mrt::write_snapshot(&mut encoded, &snapshot).unwrap();
    let mut group = c.benchmark_group("mrt_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_snapshot", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(encoded.len());
            mrt::write_snapshot(&mut out, black_box(&snapshot)).unwrap();
            black_box(out.len())
        })
    });
    group.bench_function("decode_snapshot", |b| {
        b.iter(|| black_box(mrt::read_snapshot(black_box(&encoded[..])).unwrap().len()))
    });
    group.finish();

    // Topology generation.
    c.bench_function("topogen_small", |b| {
        b.iter(|| black_box(topogen::generate(&scale.topology).graph.edge_count()))
    });

    // Route propagation for a single origin.
    let origin = scenario.truth.graph.asns().next().unwrap();
    c.bench_function("propagate_one_origin_v4", |b| {
        b.iter(|| {
            black_box(
                propagate_origin(
                    &scenario.truth.graph,
                    origin,
                    IpVersion::V4,
                    &PropagationOptions::default(),
                )
                .routed_count(),
            )
        })
    });

    // Sharded propagation of every origin at several worker counts —
    // `propagate/threads=1` is the sequential baseline the parallel rows
    // are compared against (the outputs are byte-identical by contract).
    let graph = &scenario.truth.graph;
    let mut origins: Vec<Asn> =
        graph.asns().filter(|a| graph.degree(*a, IpVersion::V4) > 0).collect();
    origins.sort();
    let mut group = c.benchmark_group("propagate");
    group.throughput(Throughput::Elements(origins.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("threads={threads}"), |b| {
            b.iter(|| {
                black_box(
                    propagate_origins(
                        graph,
                        black_box(&origins),
                        IpVersion::V4,
                        &PropagationOptions::default(),
                        threads,
                    )
                    .len(),
                )
            })
        });
    }
    // The second parallelism level: the within-origin frontier expansion,
    // measured where it matters — the highest-degree origins of a
    // paper-scale graph, whose per-origin latency caps the wall-clock of
    // full-topology runs (bench-scale levels sit below the sequential
    // cutoff, so they would measure nothing). Per-origin sharding is
    // pinned to one worker so the rows isolate the frontier layer;
    // `frontier=1` is the sequential baseline and outcomes are
    // byte-identical at every row.
    let paper_truth = topogen::generate(&bench::paper_scale().topology);
    let paper_graph = &paper_truth.graph;
    let mut heavy: Vec<Asn> = paper_graph.asns().collect();
    heavy.sort_by_key(|a| std::cmp::Reverse(paper_graph.degree(*a, IpVersion::V4)));
    heavy.truncate(4);
    heavy.sort();
    group.throughput(Throughput::Elements(heavy.len() as u64));
    for frontier in [1usize, 2, 4] {
        let options = PropagationOptions::default().with_frontier(frontier);
        group.bench_function(&format!("frontier={frontier}"), |b| {
            b.iter(|| {
                black_box(
                    propagate_origins(paper_graph, black_box(&heavy), IpVersion::V4, &options, 1)
                        .len(),
                )
            })
        });
    }
    group.finish();

    // The full measurement pipeline (input pooling + all stages) at the
    // same worker counts.
    let mut group = c.benchmark_group("pipeline");
    for threads in [1usize, 2, 4] {
        let pipeline = Pipeline::with_concurrency(threads);
        group.bench_function(&format!("threads={threads}"), |b| {
            b.iter(|| {
                let input = PipelineInput::from_scenario_with(&scenario, &pipeline.options);
                black_box(pipeline.run(input).dataset.ipv6_links)
            })
        });
    }
    group.finish();

    // The Figure 2 correction sweep at several worker counts — the curve
    // is byte-identical at every row (and whatever the memo/incremental
    // settings); the rows only measure the execution layer.
    // `sweep/threads=*` runs the production default (memo + delta
    // engine), `sweep/incremental` vs `sweep/full-recompute` isolates
    // what the delta tier saves on the dirty sources (same memo, same
    // single worker, only the repair strategy differs), and
    // `sweep/uncached` is the fully recomputing path the pre-sharding
    // implementation ran.
    let (misinferred, hybrid_findings) = bench::sweep_inputs(&scenario);
    let impact_options = ImpactOptions { top_k: 10, source_cap: Some(100) };
    let mut group = c.benchmark_group("sweep");
    for threads in [1usize, 2, 4] {
        let sweep = SweepOptions::with_concurrency(threads);
        group.bench_function(&format!("threads={threads}"), |b| {
            b.iter(|| {
                black_box(
                    correction_sweep_with(
                        black_box(&misinferred),
                        &hybrid_findings,
                        &impact_options,
                        &sweep,
                    )
                    .steps
                    .len(),
                )
            })
        });
    }
    for (name, incremental) in [("incremental", true), ("full-recompute", false)] {
        let sweep = SweepOptions::with_concurrency(1).with_incremental(incremental);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    correction_sweep_with(
                        black_box(&misinferred),
                        &hybrid_findings,
                        &impact_options,
                        &sweep,
                    )
                    .steps
                    .len(),
                )
            })
        });
    }
    group.bench_function("uncached", |b| {
        b.iter(|| {
            black_box(
                correction_sweep_with(
                    black_box(&misinferred),
                    &hybrid_findings,
                    &impact_options,
                    &SweepOptions::sequential(),
                )
                .steps
                .len(),
            )
        })
    });
    group.finish();

    // Sweep-point scenario construction: a full from-config rebuild (what
    // the experiment bins did before the reuse layer) against
    // `Scenario::rebuild_with` patching the same sweep point out of a
    // built base. Outputs are byte-identical; only the work differs.
    let mut group = c.benchmark_group("scenario");
    group.bench_function("rebuild", |b| {
        b.iter(|| {
            let mut sim = scale.sim.clone();
            sim.documentation_probability = 0.5;
            black_box(Scenario::build(&scale.topology, &sim).total_rib_entries())
        })
    });
    group.bench_function("reuse", |b| {
        b.iter(|| {
            black_box(
                scenario
                    .rebuild_with(|sim| sim.documentation_probability = 0.5)
                    .total_rib_entries(),
            )
        })
    });
    group.finish();

    // Valley-free single-source traversal and the tree-union metric.
    c.bench_function("valley_free_distances", |b| {
        b.iter(|| {
            black_box(valley_free_distances(&scenario.truth.graph, origin, IpVersion::V4).len())
        })
    });
    c.bench_function("tree_union_metrics_capped", |b| {
        b.iter(|| {
            black_box(tree_union_metrics(&scenario.truth.graph, IpVersion::V6, Some(50)).diameter)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = components
}
criterion_main!(benches);
