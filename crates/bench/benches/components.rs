//! Component-level performance benchmarks (P1 in DESIGN.md): the MRT
//! codec, the topology generator, the route propagation, and the
//! valley-free graph traversals. These are throughput benchmarks for the
//! substrates rather than reproductions of paper artifacts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use asgraph::customer_tree::tree_union_metrics;
use asgraph::valley::valley_free_distances;
use asgraph::AsGraph;
use bgp_types::{Asn, IpVersion, Relationship, RelationshipPair};
use hybrid_tor::hybrid::HybridFinding;
use hybrid_tor::impact::{
    correction_sweep_in, correction_sweep_with, ImpactOptions, SweepCache, SweepOptions,
};
use hybrid_tor::pipeline::{Pipeline, PipelineInput};
use routesim::propagate::{propagate_origin, propagate_origins, PropagationOptions};
use routesim::{OriginScheduling, Scenario};
use topogen::HybridClass;

use bench::record_gauge;

fn components(c: &mut Criterion) {
    let scale = bench::bench_scale();
    let scenario = bench::build_scenario(&scale);
    let snapshot = scenario.merged_snapshot();

    // MRT encode/decode throughput over the whole collector view.
    let mut encoded = Vec::new();
    mrt::write_snapshot(&mut encoded, &snapshot).unwrap();
    let mut group = c.benchmark_group("mrt_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_snapshot", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(encoded.len());
            mrt::write_snapshot(&mut out, black_box(&snapshot)).unwrap();
            black_box(out.len())
        })
    });
    group.bench_function("decode_snapshot", |b| {
        b.iter(|| black_box(mrt::read_snapshot(black_box(&encoded[..])).unwrap().len()))
    });
    group.finish();

    // Topology generation.
    c.bench_function("topogen_small", |b| {
        b.iter(|| black_box(topogen::generate(&scale.topology).graph.edge_count()))
    });

    // Route propagation for a single origin.
    let origin = scenario.truth.graph.asns().next().unwrap();
    c.bench_function("propagate_one_origin_v4", |b| {
        b.iter(|| {
            black_box(
                propagate_origin(
                    &scenario.truth.graph,
                    origin,
                    IpVersion::V4,
                    &PropagationOptions::default(),
                )
                .routed_count(),
            )
        })
    });

    // Sharded propagation of every origin at several worker counts —
    // `propagate/threads=1` is the sequential baseline the parallel rows
    // are compared against (the outputs are byte-identical by contract).
    let graph = &scenario.truth.graph;
    let mut origins: Vec<Asn> =
        graph.asns().filter(|a| graph.degree(*a, IpVersion::V4) > 0).collect();
    origins.sort();
    let mut group = c.benchmark_group("propagate");
    group.throughput(Throughput::Elements(origins.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("threads={threads}"), |b| {
            b.iter(|| {
                black_box(
                    propagate_origins(
                        graph,
                        black_box(&origins),
                        IpVersion::V4,
                        &PropagationOptions::default(),
                        threads,
                    )
                    .len(),
                )
            })
        });
    }
    // The origin-to-worker schedule at a fixed worker count: degree-aware
    // LPT binning against the static striping baseline. Outputs are
    // byte-identical under both schedules — the rows only measure how
    // evenly the per-origin work lands on the workers.
    for (name, scheduling) in
        [("lpt=degree", OriginScheduling::Degree), ("lpt=static", OriginScheduling::Static)]
    {
        let options = PropagationOptions::default().with_scheduling(scheduling);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    propagate_origins(graph, black_box(&origins), IpVersion::V4, &options, 4).len(),
                )
            })
        });
    }
    // The second parallelism level: the within-origin frontier expansion,
    // measured where it matters — the highest-degree origins of a
    // paper-scale graph, whose per-origin latency caps the wall-clock of
    // full-topology runs (bench-scale levels sit below the sequential
    // cutoff, so they would measure nothing). Per-origin sharding is
    // pinned to one worker so the rows isolate the frontier layer;
    // `frontier=1` is the sequential baseline and outcomes are
    // byte-identical at every row.
    let paper_truth = topogen::generate(&bench::paper_scale().topology);
    let paper_graph = &paper_truth.graph;
    let mut heavy: Vec<Asn> = paper_graph.asns().collect();
    heavy.sort_by_key(|a| std::cmp::Reverse(paper_graph.degree(*a, IpVersion::V4)));
    heavy.truncate(4);
    heavy.sort();
    group.throughput(Throughput::Elements(heavy.len() as u64));
    for frontier in [1usize, 2, 4] {
        let options = PropagationOptions::default().with_frontier(frontier);
        group.bench_function(&format!("frontier={frontier}"), |b| {
            b.iter(|| {
                black_box(
                    propagate_origins(paper_graph, black_box(&heavy), IpVersion::V4, &options, 1)
                        .len(),
                )
            })
        });
    }
    // Internet-scale rows: the frozen CSR backend propagating a sampled
    // origin set over the CAIDA-shaped 10k/50k-AS graphs the `--scale`
    // experiment knob runs at. Origins are strided exactly as
    // `SimConfig::origin_sample` strides them, so the rows time what the
    // experiment bins actually execute; the worker budget is the whole
    // host (0 = all cores). The `memory/graph_bytes/*` gauges next to
    // them pin the frozen graph's heap footprint at each scale.
    for (name, scale) in
        [("scale=10k", bench::internet_10k_scale()), ("scale=50k", bench::internet_50k_scale())]
    {
        let mut scale_graph = topogen::generate(&scale.topology).graph;
        scale_graph.freeze();
        let breakdown = scale_graph.memory_breakdown();
        let bytes = scale_graph.memory_footprint();
        println!(
            "memory/graph_bytes/{name}: {bytes} bytes frozen ({} nodes, {} edges; map {} + csr {})",
            scale_graph.node_count(),
            scale_graph.edge_count(),
            breakdown.map_bytes,
            breakdown.csr_bytes,
        );
        record_gauge(&format!("memory/graph_bytes/{name}"), bytes as u128);
        record_gauge(&format!("memory/graph_map_bytes/{name}"), breakdown.map_bytes as u128);
        record_gauge(&format!("memory/graph_csr_bytes/{name}"), breakdown.csr_bytes as u128);
        let mut scale_origins: Vec<Asn> =
            scale_graph.asns().filter(|a| scale_graph.degree(*a, IpVersion::V4) > 0).collect();
        scale_origins.sort();
        let scale_origins: Vec<Asn> =
            scale_origins.into_iter().step_by(scale.sim.origin_sample.max(1)).collect();
        group.throughput(Throughput::Elements(scale_origins.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    propagate_origins(
                        &scale_graph,
                        black_box(&scale_origins),
                        IpVersion::V4,
                        &PropagationOptions::default(),
                        0,
                    )
                    .len(),
                )
            })
        });
    }
    group.finish();

    // The full measurement pipeline (input pooling + all stages) at the
    // same worker counts.
    let mut group = c.benchmark_group("pipeline");
    for threads in [1usize, 2, 4] {
        let pipeline = Pipeline::with_concurrency(threads);
        group.bench_function(&format!("threads={threads}"), |b| {
            b.iter(|| {
                let input = PipelineInput::from_scenario_with(&scenario, &pipeline.options);
                black_box(pipeline.run(input).dataset.ipv6_links)
            })
        });
    }
    group.finish();

    // The Figure 2 correction sweep at several worker counts — the curve
    // is byte-identical at every row (and whatever the memo/incremental
    // settings); the rows only measure the execution layer.
    // `sweep/threads=*` runs the production default (memo + delta
    // engine), `sweep/incremental` vs `sweep/full-recompute` isolates
    // what the delta tier saves on the dirty sources (same memo, same
    // single worker, only the repair strategy differs), and
    // `sweep/uncached` is the fully recomputing path the pre-sharding
    // implementation ran.
    let (misinferred, hybrid_findings) = bench::sweep_inputs(&scenario);
    let impact_options = ImpactOptions { top_k: 10, source_cap: Some(100) };
    let mut group = c.benchmark_group("sweep");
    for threads in [1usize, 2, 4] {
        let sweep = SweepOptions::with_concurrency(threads);
        group.bench_function(&format!("threads={threads}"), |b| {
            b.iter(|| {
                black_box(
                    correction_sweep_with(
                        black_box(&misinferred),
                        &hybrid_findings,
                        &impact_options,
                        &sweep,
                    )
                    .steps
                    .len(),
                )
            })
        });
    }
    for (name, incremental) in [("incremental", true), ("full-recompute", false)] {
        let sweep = SweepOptions::with_concurrency(1).with_incremental(incremental);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    correction_sweep_with(
                        black_box(&misinferred),
                        &hybrid_findings,
                        &impact_options,
                        &sweep,
                    )
                    .steps
                    .len(),
                )
            })
        });
    }
    group.bench_function("uncached", |b| {
        b.iter(|| {
            black_box(
                correction_sweep_with(
                    black_box(&misinferred),
                    &hybrid_findings,
                    &impact_options,
                    &SweepOptions::sequential(),
                )
                .steps
                .len(),
            )
        })
    });
    // Removal-heavy fixture: independent "detour" gadgets (4 reachable at
    // distance 2 below 2 and at 3 behind the 3 → 5 detour) whose
    // corrections each strip a load-bearing transition, forcing the
    // default policy into per-source full rebuilds. `removal-repair`
    // absorbs those in place; `removal-rebuild` is the fallback baseline.
    let mut removal_graph = AsGraph::new();
    let mut removal_findings = Vec::new();
    for k in 0..16u32 {
        let base = 10 * k;
        for (p, c) in [(1, 2), (2, 4), (1, 3), (3, 5), (5, 4)] {
            removal_graph.annotate_both(
                Asn(base + p),
                Asn(base + c),
                Relationship::ProviderToCustomer,
            );
        }
        removal_findings.push(HybridFinding {
            a: Asn(base + 2),
            b: Asn(base + 4),
            relationships: RelationshipPair::new(
                Relationship::ProviderToCustomer,
                Relationship::CustomerToProvider,
            ),
            class: HybridClass::TransitV4PeeringV6,
            v6_path_visibility: 3,
        });
    }
    let removal_options = ImpactOptions { top_k: removal_findings.len(), source_cap: None };
    // Outside the timed region: prove the repair tier actually absorbs
    // rebuild fallbacks on this fixture and leaves the curve untouched.
    let mut fallback_cache = SweepCache::new();
    let fallback_curve = correction_sweep_in(
        &removal_graph,
        &removal_findings,
        &removal_options,
        &SweepOptions::with_concurrency(1),
        &mut fallback_cache,
    );
    let mut repair_cache = SweepCache::new();
    let repair_curve = correction_sweep_in(
        &removal_graph,
        &removal_findings,
        &removal_options,
        &SweepOptions::with_concurrency(1).with_removal_repair(true),
        &mut repair_cache,
    );
    assert!(
        repair_cache.full_rebuilds() < fallback_cache.full_rebuilds(),
        "removal repair must reduce full rebuilds ({} vs {})",
        repair_cache.full_rebuilds(),
        fallback_cache.full_rebuilds(),
    );
    assert_eq!(repair_curve.steps, fallback_curve.steps, "removal repair moved the curve");
    for (name, removal_repair) in [("removal-repair", true), ("removal-rebuild", false)] {
        let sweep = SweepOptions::with_concurrency(1).with_removal_repair(removal_repair);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    correction_sweep_with(
                        black_box(&removal_graph),
                        &removal_findings,
                        &removal_options,
                        &sweep,
                    )
                    .steps
                    .len(),
                )
            })
        });
    }
    // The sweep at internet scale: the same correction sweep over the
    // misinferred graph of a 10k-AS `--scale 10k` scenario (origin
    // sampling and the frozen CSR backend exactly as the experiment
    // bins run it), whole-host worker budget.
    let scale10k = bench::internet_10k_scale();
    let scenario10k = bench::build_scenario(&scale10k);
    let (misinferred10k, hybrids10k) = bench::sweep_inputs(&scenario10k);
    group.bench_function("scale=10k", |b| {
        b.iter(|| {
            black_box(
                correction_sweep_with(
                    black_box(&misinferred10k),
                    &hybrids10k,
                    &impact_options,
                    &SweepOptions::with_concurrency(0),
                )
                .steps
                .len(),
            )
        })
    });
    group.finish();

    // Sweep-point scenario construction: a full from-config rebuild (what
    // the experiment bins did before the reuse layer) against
    // `Scenario::rebuild_with` patching the same sweep point out of a
    // built base. Outputs are byte-identical; only the work differs.
    let mut group = c.benchmark_group("scenario");
    group.bench_function("rebuild", |b| {
        b.iter(|| {
            let mut sim = scale.sim.clone();
            sim.documentation_probability = 0.5;
            black_box(Scenario::build(&scale.topology, &sim).total_rib_entries())
        })
    });
    group.bench_function("reuse", |b| {
        b.iter(|| {
            black_box(
                scenario
                    .rebuild_with(|sim| sim.documentation_probability = 0.5)
                    .total_rib_entries(),
            )
        })
    });
    // Alternating sweep points through the pool: with the options-keyed
    // propagation LRU both points stay resident, so revisits stop
    // rebuilding propagation. Outside the timed region, prove the LRU
    // actually gets hit under the alternation this row measures.
    {
        let mut pool = bench::scenario_pool(&scale);
        for leak in [0.1, 0.2, 0.1, 0.2] {
            let _ = pool.scenario_with(|sim| sim.leak_probability = leak);
        }
        assert!(
            pool.propagation_reuses() > 0,
            "alternating sweep points must hit the propagation LRU"
        );
    }
    group.bench_function("lru", |b| {
        let mut pool = bench::scenario_pool(&scale);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let leak = if flip { 0.1 } else { 0.2 };
            black_box(pool.scenario_with(|sim| sim.leak_probability = leak).total_rib_entries())
        })
    });
    group.finish();

    // Valley-free single-source traversal and the tree-union metric.
    c.bench_function("valley_free_distances", |b| {
        b.iter(|| {
            black_box(valley_free_distances(&scenario.truth.graph, origin, IpVersion::V4).len())
        })
    });
    c.bench_function("tree_union_metrics_capped", |b| {
        b.iter(|| {
            black_box(tree_union_metrics(&scenario.truth.graph, IpVersion::V6, Some(50)).diameter)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = components
}
criterion_main!(benches);
