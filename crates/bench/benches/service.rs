//! Resident-service benchmarks: in-process query latency against one
//! [`ResidentState`] snapshot, plus a TCP end-to-end loadgen run whose
//! throughput and p50/p99 land in the BENCH snapshot as gauges.
//!
//! The in-process rows time `hybridd::answer` — exactly the function the
//! daemon fans batches over — so they isolate query cost from transport
//! cost; the gauge rows measure the whole loop (framing, batching,
//! loopback TCP) the way a client experiences it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use bench::record_gauge;
use hybrid_tor::service::ResidentState;
use hybridd::{answer, loadgen, LoadgenConfig, Request, Server, ServerConfig};

fn service(c: &mut Criterion) {
    let scale = bench::bench_scale();
    let scenario = bench::build_scenario(&scale);
    let state = ResidentState::build(&scenario, &bench::ExecKnobs::from_env().pipeline());

    // Per-component snapshot footprint: the CSR-backed graph against the
    // two arenas the resident mode adds. Gauges, not timings.
    let memory = state.memory();
    println!(
        "memory/service: graph map {} + graph csr {} + rib arena {} + label arena {} bytes",
        memory.graph_map_bytes,
        memory.graph_csr_bytes,
        memory.rib_arena_bytes,
        memory.label_arena_bytes,
    );
    record_gauge("memory/rib_arena_bytes/scale=bench", u128::from(memory.rib_arena_bytes));
    record_gauge("memory/label_arena_bytes/scale=bench", u128::from(memory.label_arena_bytes));

    // Deterministic request batches drawn from the snapshot itself.
    let mix = hybridd::query_mix(state.universe(), state.hybrid_pairs(), 42, 512);
    let relationships: Vec<Request> =
        mix.iter().copied().filter(|r| matches!(r, Request::Relationship { .. })).collect();
    let trees: Vec<Request> =
        mix.iter().copied().filter(|r| matches!(r, Request::CustomerTree { .. })).collect();
    let what_ifs: Vec<Request> =
        mix.iter().copied().filter(|r| matches!(r, Request::WhatIf { .. })).collect();

    let mut group = c.benchmark_group("service");
    group.throughput(Throughput::Elements(relationships.len() as u64));
    group.bench_function("relationship_batch", |b| {
        b.iter(|| {
            for request in &relationships {
                black_box(answer(&state, black_box(request)));
            }
        })
    });
    group.throughput(Throughput::Elements(trees.len() as u64));
    group.bench_function("customer_tree", |b| {
        b.iter(|| {
            for request in &trees {
                black_box(answer(&state, black_box(request)));
            }
        })
    });
    if !what_ifs.is_empty() {
        group.throughput(Throughput::Elements(what_ifs.len() as u64));
        group.bench_function("what_if", |b| {
            b.iter(|| {
                for request in &what_ifs {
                    black_box(answer(&state, black_box(request)));
                }
            })
        });
    } else {
        println!("service/what_if: skipped (no hybrid pairs at bench scale)");
    }
    group.finish();

    // End-to-end over loopback TCP: a real daemon, real framing, real
    // batching, measured by the loadgen the CI smoke test also runs.
    let knobs = bench::ExecKnobs::from_env();
    let rebuild: hybridd::Rebuild =
        Arc::new(move || ResidentState::build(&scenario, &bench::ExecKnobs::from_env().pipeline()));
    let server = Server::bind(
        "127.0.0.1:0",
        state,
        rebuild,
        ServerConfig {
            workers: knobs.threads(),
            batch: knobs.batch,
            epoch_check_ms: knobs.epoch_check_ms,
        },
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr().expect("ephemeral port resolved");
    std::thread::spawn(move || server.run());
    let report = loadgen::run(
        &LoadgenConfig {
            addr: addr.to_string(),
            requests: 2000,
            clients: 4,
            seed: 42,
            wait: Duration::from_secs(10),
        },
        None,
    )
    .expect("loadgen run against the in-process daemon");
    println!(
        "service/loadgen: {} requests, {:.0} qps, p50 {} ns, p99 {} ns",
        report.requests, report.throughput_qps, report.p50_ns, report.p99_ns,
    );
    record_gauge("service/throughput_qps", report.throughput_qps as u128);
    record_gauge("service/latency_p50_ns", u128::from(report.p50_ns));
    record_gauge("service/latency_p99_ns", u128::from(report.p99_ns));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = service
}
criterion_main!(benches);
