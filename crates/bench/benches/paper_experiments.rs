//! Criterion benchmarks that regenerate (and time) every experiment of the
//! paper at a reduced scale, one benchmark per table/figure:
//!
//! * `e1_dataset_pipeline`   — Section 3 ¶1: extraction + inference + coverage
//! * `e2_hybrid_detection`   — Section 3 obs. 1: the hybrid census
//! * `e3_hybrid_visibility`  — Section 3 obs. 2: path visibility of hybrids
//! * `e4_valley_classification` — Section 3 obs. 3: valley paths and attribution
//! * `f1_customer_tree_example` — Figure 1: the 5-AS customer-tree example
//! * `f2_customer_tree_sweep`   — Figure 2: the correction sweep
//! * `a1_baseline_gao`      — ablation: the plane-blind Gao baseline
//!
//! The measured quantity is wall-clock time of the analysis itself; the
//! headline *numbers* of each experiment are printed by the corresponding
//! `exp_*` binary (see DESIGN.md §4 and EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use asgraph::AsGraph;
use bgp_types::IpVersion;
use hybrid_tor::baselines::{gao_inference, BaselineInput};
use hybrid_tor::communities::CommunityInference;
use hybrid_tor::extract::{extract, ExtractedData};
use hybrid_tor::hybrid::detect_hybrids;
use hybrid_tor::impact::{correction_sweep, ImpactOptions};
use hybrid_tor::locpref::LocPrfRosetta;
use hybrid_tor::valley::analyze_valleys;
use irr::CommunityDictionary;
use routesim::Scenario;

struct Prepared {
    scenario: Scenario,
    dictionary: CommunityDictionary,
    data: ExtractedData,
    inference: CommunityInference,
    annotated: AsGraph,
}

fn prepare() -> Prepared {
    let scale = bench::bench_scale();
    let scenario = bench::build_scenario(&scale);
    let dictionary = scenario.registry.build_dictionary();
    let snapshot = scenario.merged_snapshot();
    let data = extract(&snapshot);
    let mut inference = CommunityInference::from_snapshot(&snapshot, &dictionary);
    let mut rosetta = LocPrfRosetta::learn(&snapshot, &dictionary, &inference);
    rosetta.apply(&snapshot, &dictionary, &mut inference);
    let mut annotated = data.graph.clone();
    inference.annotate_graph(&mut annotated);
    Prepared { scenario, dictionary, data, inference, annotated }
}

fn paper_experiments(c: &mut Criterion) {
    let prepared = prepare();
    let snapshot = prepared.scenario.merged_snapshot();

    c.bench_function("e1_dataset_pipeline", |b| {
        b.iter(|| {
            let data = extract(black_box(&snapshot));
            let mut inference = CommunityInference::from_snapshot(&snapshot, &prepared.dictionary);
            let mut rosetta = LocPrfRosetta::learn(&snapshot, &prepared.dictionary, &inference);
            rosetta.apply(&snapshot, &prepared.dictionary, &mut inference);
            black_box((
                data.link_count(IpVersion::V6),
                inference.inferred_link_count(IpVersion::V6),
            ))
        })
    });

    c.bench_function("e2_hybrid_detection", |b| {
        b.iter(|| black_box(detect_hybrids(&prepared.data, &prepared.inference).findings.len()))
    });

    c.bench_function("e3_hybrid_visibility", |b| {
        b.iter(|| {
            let report = detect_hybrids(&prepared.data, &prepared.inference);
            black_box(report.path_visibility_fraction())
        })
    });

    c.bench_function("e4_valley_classification", |b| {
        b.iter(|| {
            black_box(
                analyze_valleys(&prepared.data, &prepared.annotated, IpVersion::V6).valley_paths,
            )
        })
    });

    c.bench_function("f1_customer_tree_example", |b| {
        b.iter(|| black_box(bench::figure1_customer_trees()))
    });

    c.bench_function("f2_customer_tree_sweep", |b| {
        let hybrids = detect_hybrids(&prepared.data, &prepared.inference).findings;
        let baseline = gao_inference(&prepared.data, BaselineInput::BothPlanes);
        let misinferred = hybrid_tor::impact::plane_blind_annotation(
            &prepared.data.graph,
            &prepared.inference,
            &baseline,
        );
        let options = ImpactOptions { top_k: 10, source_cap: Some(100) };
        b.iter(|| black_box(correction_sweep(&misinferred, &hybrids, &options).steps.len()))
    });

    c.bench_function("a1_baseline_gao", |b| {
        b.iter(|| black_box(gao_inference(&prepared.data, BaselineInput::BothPlanes).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = paper_experiments
}
criterion_main!(benches);
