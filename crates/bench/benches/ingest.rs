//! Streaming-ingest benchmarks: replay the same deterministic update
//! stream with delta-repaired caches (`ingest/replay_delta`) and with a
//! full per-window recompute (`ingest/replay_full`).
//!
//! Both rows produce byte-identical per-window reports (the determinism
//! suite and exp_g2 pin that), so the pair is a pure execution-cost
//! comparison: the delta row folds each route change into the extraction
//! counters and repairs the cached valley distance maps in place, where
//! the full row rescans the resident table and re-runs every BFS each
//! window.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hybrid_tor::ingest::{TemporalSweep, UpdateStream};
use routesim::UpdateStreamConfig;

fn ingest(c: &mut Criterion) {
    let scale = bench::bench_scale();
    let scenario = bench::build_scenario(&scale);
    let pipeline = bench::ExecKnobs::from_env().pipeline();
    let base = scenario.pooled_snapshot(pipeline.options.workers());
    let dictionary = scenario.registry.build_dictionary();
    let stream = UpdateStream::from_windows(scenario.update_stream(&UpdateStreamConfig::default()));
    println!(
        "ingest: {} windows, {} records over a {}-route base table",
        stream.len(),
        stream.record_count(),
        base.len(),
    );

    let mut group = c.benchmark_group("ingest");
    group.bench_function("replay_delta", |b| {
        let sweep = TemporalSweep::new(pipeline.clone(), true);
        b.iter(|| black_box(sweep.run(&base, &dictionary, Some(&scenario.truth), &stream)))
    });
    group.bench_function("replay_full", |b| {
        let sweep = TemporalSweep::new(pipeline.clone(), false);
        b.iter(|| black_box(sweep.run(&base, &dictionary, Some(&scenario.truth), &stream)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ingest
}
criterion_main!(benches);
